//! Plan activation: which [`FaultPlan`] do injection hooks consult?
//!
//! Two scopes compose:
//!
//! * **Thread-local** ([`with_plan`] / [`PlanGuard`]): the plan is active
//!   only on the current thread, so concurrently running tests never see
//!   each other's faults. `minimpi`'s chaos worlds install the world's
//!   plan in every rank thread the same way.
//! * **Process-global** ([`install_global`]): for dedicated processes
//!   like `das_pipeline --fault-plan=…`, where every thread should see
//!   the plan.
//!
//! [`current`] checks the thread-local slot first, then the global one.
//! With neither set, hooks cost one TLS read and one relaxed atomic
//! load.

use crate::FaultPlan;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

thread_local! {
    static LOCAL: RefCell<Option<Arc<FaultPlan>>> = const { RefCell::new(None) };
}

/// Fast path: skip the global mutex entirely while nothing was ever
/// installed (the common case for library users and most tests).
static GLOBAL_SET: AtomicBool = AtomicBool::new(false);

fn global_slot() -> &'static Mutex<Option<Arc<FaultPlan>>> {
    static GLOBAL: Mutex<Option<Arc<FaultPlan>>> = Mutex::new(None);
    &GLOBAL
}

/// Install `plan` process-wide (until [`clear_global`]). Thread-local
/// plans installed via [`with_plan`] still take precedence on their
/// threads.
pub fn install_global(plan: Arc<FaultPlan>) {
    *global_slot().lock().unwrap_or_else(|p| p.into_inner()) = Some(plan);
    GLOBAL_SET.store(true, Ordering::Release);
}

/// Remove the process-wide plan.
pub fn clear_global() {
    *global_slot().lock().unwrap_or_else(|p| p.into_inner()) = None;
    GLOBAL_SET.store(false, Ordering::Release);
}

/// The plan injection hooks consult right now on this thread:
/// thread-local first, then global, else `None`.
pub fn current() -> Option<Arc<FaultPlan>> {
    let local = LOCAL.with(|slot| slot.borrow().clone());
    if local.is_some() {
        return local;
    }
    if !GLOBAL_SET.load(Ordering::Acquire) {
        return None;
    }
    global_slot()
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .clone()
}

/// Does `site` fire for `key` under the currently active plan (if any)?
/// The hook form used by instrumented crates.
pub fn fires(site: &str, key: u64) -> bool {
    current().is_some_and(|p| p.fires(site, key))
}

/// [`FaultPlan::value_below`] against the currently active plan;
/// 0 when no plan is active or the plan does not configure `site`.
pub fn value_below(site: &str, key: u64, n: u64) -> u64 {
    current().map_or(0, |p| {
        if p.rate_ppm(site) == 0 {
            0
        } else {
            p.value_below(site, key, n)
        }
    })
}

/// RAII guard restoring the thread-local slot on drop; see [`with_plan`]
/// for the closure form. Holding a guard across a scope makes the plan
/// active for everything that scope calls on this thread.
pub struct PlanGuard {
    previous: Option<Arc<FaultPlan>>,
}

impl PlanGuard {
    /// Activate `plan` on this thread until the guard drops.
    pub fn install(plan: Arc<FaultPlan>) -> PlanGuard {
        let previous = LOCAL.with(|slot| slot.borrow_mut().replace(plan));
        PlanGuard { previous }
    }
}

impl Drop for PlanGuard {
    fn drop(&mut self) {
        LOCAL.with(|slot| *slot.borrow_mut() = self.previous.take());
    }
}

/// Run `f` with `plan` active on this thread (nesting restores the
/// outer plan afterwards).
pub fn with_plan<R>(plan: Arc<FaultPlan>, f: impl FnOnce() -> R) -> R {
    let _guard = PlanGuard::install(plan);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site;

    #[test]
    fn no_plan_means_no_fires() {
        assert!(!fires(site::DASF_READ_ERR, 1));
        assert_eq!(value_below(site::DASF_READ_ERR, 1, 10), 0);
    }

    #[test]
    fn with_plan_scopes_to_thread_and_restores() {
        let plan = Arc::new(FaultPlan::new(1).with(site::PAR_READ_FILE, 1.0));
        assert!(!fires(site::PAR_READ_FILE, 0));
        with_plan(Arc::clone(&plan), || {
            assert!(fires(site::PAR_READ_FILE, 0));
            // Other threads are unaffected.
            std::thread::scope(|s| {
                s.spawn(|| assert!(!fires(site::PAR_READ_FILE, 0)));
            });
            // Nested plans shadow and restore.
            let inner = Arc::new(FaultPlan::new(1));
            with_plan(inner, || assert!(!fires(site::PAR_READ_FILE, 0)));
            assert!(fires(site::PAR_READ_FILE, 0));
        });
        assert!(!fires(site::PAR_READ_FILE, 0));
    }

    #[test]
    fn thread_local_overrides_global() {
        // Serialize against other tests touching the global slot: this
        // test owns it for its duration.
        let global = Arc::new(FaultPlan::new(2).with(site::DASF_OPEN_ERR, 1.0));
        install_global(Arc::clone(&global));
        assert!(fires(site::DASF_OPEN_ERR, 7));
        let local = Arc::new(FaultPlan::new(2));
        with_plan(local, || assert!(!fires(site::DASF_OPEN_ERR, 7)));
        clear_global();
        assert!(!fires(site::DASF_OPEN_ERR, 7));
    }
}
