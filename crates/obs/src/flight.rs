//! Panic/fatal-error flight recorder: a postmortem dump for daemons.
//!
//! [`install`] registers a process-wide panic hook (chained in front of
//! the existing one, so default backtraces still print). When any
//! thread panics — or when a daemon calls [`dump`] explicitly on a
//! fatal shutdown path — the recorder writes one JSON document
//! containing:
//!
//! - the **reason** (panic payload + source location, or the caller's
//!   message),
//! - a final **metrics snapshot** of the configured registry,
//! - the last-K **log records** ([`crate::log::Logger::tail`]),
//! - the **trace-ring tail** (most recent K timeline events from the
//!   registry's tracer, if one is installed).
//!
//! The file lands via the workspace's crash-consistency discipline —
//! write to a `.tmp` sibling, `fsync`, atomic rename, `fsync` the
//! parent directory — so a half-written flight record is never
//! observed. A killed daemon therefore never leaves *zero* telemetry
//! behind: the record is either absent or complete.

use crate::json::JsonWriter;
use crate::Registry;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

/// Default number of trace events and log records in the tails.
pub const DEFAULT_TAIL: usize = 64;

/// What [`install`] needs to produce a dump later.
pub struct FlightConfig {
    /// Destination of the flight record.
    pub path: PathBuf,
    /// Registry snapshotted into the record (its tracer, if any,
    /// supplies the trace tail).
    pub registry: Arc<Registry>,
    /// Component name stamped into the record (`dassd`, `das_ingest`).
    pub component: String,
    /// Most-recent trace events to keep (0 = all collected).
    pub trace_tail: usize,
    /// Most-recent log records to keep (0 = all retained).
    pub log_tail: usize,
}

impl FlightConfig {
    pub fn new(path: impl Into<PathBuf>, registry: Arc<Registry>, component: &str) -> FlightConfig {
        FlightConfig {
            path: path.into(),
            registry,
            component: component.to_string(),
            trace_tail: DEFAULT_TAIL,
            log_tail: DEFAULT_TAIL,
        }
    }
}

static CONFIG: OnceLock<FlightConfig> = OnceLock::new();

/// Install the recorder and its panic hook. Returns false (and leaves
/// the existing recorder in place) if one was already installed —
/// first installer wins, so tests and embedded uses cannot hijack a
/// daemon's postmortem path.
pub fn install(config: FlightConfig) -> bool {
    if CONFIG.set(config).is_err() {
        return false;
    }
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let payload = info
            .payload()
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| info.payload().downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        let location = info
            .location()
            .map(|l| format!("{}:{}:{}", l.file(), l.line(), l.column()))
            .unwrap_or_else(|| "unknown".to_string());
        let reason = format!("panic at {location}: {payload}");
        // A panic inside the dump itself must not recurse or abort the
        // process before the original hook gets to report.
        let _ = std::panic::catch_unwind(|| {
            let _ = dump(&reason);
        });
        prev(info);
    }));
    true
}

/// Has [`install`] run?
pub fn installed() -> bool {
    CONFIG.get().is_some()
}

/// The configured destination, if installed.
pub fn path() -> Option<&'static Path> {
    CONFIG.get().map(|c| c.path.as_path())
}

/// Write the flight record now. Used by the panic hook, and directly
/// by daemons on fatal-error/SIGTERM shutdown paths. Only the first
/// concurrent dump wins; later calls (e.g. two threads panicking at
/// once) return without touching the file.
pub fn dump(reason: &str) -> io::Result<PathBuf> {
    let config = CONFIG
        .get()
        .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "flight recorder not installed"))?;
    static DUMPING: AtomicBool = AtomicBool::new(false);
    if DUMPING.swap(true, Ordering::SeqCst) {
        return Err(io::Error::new(
            io::ErrorKind::WouldBlock,
            "flight dump already in progress",
        ));
    }
    let result = write_record(config, reason);
    DUMPING.store(false, Ordering::SeqCst);
    result
}

fn write_record(config: &FlightConfig, reason: &str) -> io::Result<PathBuf> {
    let mut w = JsonWriter::with_capacity(4096);
    w.begin_object();
    w.key("component").string(&config.component);
    w.key("reason").string(reason);
    w.key("log.tail_capacity")
        .uint(crate::log::TAIL_CAPACITY as u64);

    w.key("metrics");
    w.raw(&config.registry.snapshot().to_json());

    w.key("log_tail");
    w.begin_array();
    let records = crate::log::logger().tail();
    let skip = if config.log_tail > 0 {
        records.len().saturating_sub(config.log_tail)
    } else {
        0
    };
    for record in &records[skip..] {
        w.raw(&record.to_json());
    }
    w.end_array();

    w.key("trace_tail");
    w.begin_array();
    if let Some(tracer) = config.registry.tracer() {
        let trace = tracer.collect();
        let skip = if config.trace_tail > 0 {
            trace.events.len().saturating_sub(config.trace_tail)
        } else {
            0
        };
        for event in &trace.events[skip..] {
            w.begin_object();
            w.key("ts_ns").uint(event.ts_ns);
            w.key("rank").uint(u64::from(event.rank));
            w.key("tid").uint(u64::from(event.tid));
            w.key("ph").string(event.phase.code());
            w.key("name").string(&event.name);
            w.key("value").uint(event.value);
            w.end_object();
        }
    }
    w.end_array();
    w.end_object();

    write_atomic(&config.path, w.finish().as_bytes())?;
    Ok(config.path.clone())
}

/// tmp + fsync + rename + parent-dir fsync: the record is either fully
/// present or absent, never torn. (Duplicated from the ingest journal
/// rather than shared — `obs` sits below `core` in the crate graph.)
fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = match path.file_name() {
        Some(name) => {
            let mut n = name.to_os_string();
            n.push(".tmp");
            path.with_file_name(n)
        }
        None => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "flight path has no file name",
            ))
        }
    };
    {
        let mut f = std::fs::File::create(&tmp)?;
        io::Write::write_all(&mut f, bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            if let Ok(dir) = std::fs::File::open(parent) {
                let _ = dir.sync_all();
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{self, JsonValue};

    // The panic hook and CONFIG are process-global, so everything that
    // exercises install()/dump() lives in this one test: test binaries
    // share the process.
    #[test]
    fn install_dump_and_panic_produce_parseable_records() {
        let dir = std::env::temp_dir().join(format!("obs-flight-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("flight.json");
        let registry = Arc::new(Registry::new());
        registry.counter("work.done").add(42);
        let tracer = Arc::new(crate::trace::Tracer::new());
        tracer.instant("boot");
        registry.install_tracer(Arc::clone(&tracer));

        assert!(!installed());
        assert!(dump("early").is_err(), "dump before install must fail");
        assert!(install(FlightConfig::new(
            &path,
            Arc::clone(&registry),
            "test"
        )));
        assert!(installed());
        assert_eq!(self::path(), Some(path.as_path()));
        assert!(
            !install(FlightConfig::new(
                dir.join("other.json"),
                Arc::clone(&registry),
                "hijack"
            )),
            "second install must lose"
        );

        // Explicit dump.
        let written = dump("fatal: unit test").unwrap();
        assert_eq!(written, path);
        let doc = json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let JsonValue::Object(obj) = &doc else {
            panic!()
        };
        assert_eq!(obj["component"], JsonValue::String("test".into()));
        assert_eq!(obj["reason"], JsonValue::String("fatal: unit test".into()));
        let JsonValue::Object(metrics) = &obj["metrics"] else {
            panic!()
        };
        assert!(metrics.contains_key("counters"));
        let JsonValue::Array(trace_tail) = &obj["trace_tail"] else {
            panic!()
        };
        assert!(!trace_tail.is_empty(), "instant event expected in tail");

        // Panic on a thread: the hook rewrites the record.
        registry.counter("work.done").add(1);
        let _ = std::thread::Builder::new()
            .name("flight-panicker".into())
            .spawn(|| panic!("injected flight-recorder test panic"))
            .unwrap()
            .join();
        let text = std::fs::read_to_string(&path).unwrap();
        let doc = json::parse(&text).unwrap();
        let JsonValue::Object(obj) = &doc else {
            panic!()
        };
        let JsonValue::String(reason) = &obj["reason"] else {
            panic!()
        };
        assert!(
            reason.contains("injected flight-recorder test panic"),
            "reason: {reason}"
        );
        assert!(reason.contains("panic at "), "location missing: {reason}");
        assert!(!dir.join("flight.json.tmp").exists(), "tmp must not linger");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
