//! Event-level tracing: bounded per-thread ring buffers exported as
//! Chrome trace-event JSON.
//!
//! Metrics (the rest of `obs`) tell you *how much*; traces tell you
//! *when* and *where*. A [`Tracer`] hands every recording thread its own
//! fixed-capacity SPSC ring buffer, so the hot path is: one monotonic
//! clock read, one relaxed length load, one slot write, one release
//! store. No locks, no allocation beyond the event's name, no
//! cross-thread traffic. When a buffer fills, new events are **dropped
//! and counted** (`trace.dropped`) — memory stays bounded and the loss
//! is explicit, never silent truncation.
//!
//! Events carry nanosecond timestamps plus a rank id (set per thread via
//! [`set_rank`], propagated by `minimpi` worlds) and a tracer-assigned
//! thread id. [`Trace::to_chrome_json`] renders the Chrome trace-event
//! format — load the file in [Perfetto](https://ui.perfetto.dev) or
//! `chrome://tracing` and every rank appears as a process row with its
//! threads beneath it. Timestamps are emitted as integer microseconds
//! (`ts`) with the exact nanosecond value preserved in `args.ns`, so the
//! export round-trips through [`Trace::from_chrome_json`] losslessly.
//!
//! A tracer is installed on a [`crate::Registry`] via
//! [`crate::Registry::install_tracer`]; [`crate::span_in`] looks the tracer up
//! through the registry's parent chain, so every already-instrumented
//! span site lands on the timeline with no further changes.
//!
//! # Memory bound
//!
//! Each recording thread owns one buffer of [`DEFAULT_CAPACITY`] events
//! (or the capacity given to [`Tracer::with_capacity`]). An event slot
//! is ~80 bytes, so the default is ~1.3 MiB per thread — sized so a
//! full pipeline run over a bench corpus fits with room to spare (the
//! acceptance suite asserts zero drops at default capacity).

use crate::json::{self, JsonValue, JsonWriter, ParseError};
use crate::snapshot::format_ns;
use std::cell::{Cell, RefCell, UnsafeCell};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Default per-thread ring capacity, in events.
pub const DEFAULT_CAPACITY: usize = 1 << 14;

/// What an event marks: a span boundary, a point-in-time marker, or a
/// counter sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Span opened (`ph: "B"`).
    Begin,
    /// Span closed (`ph: "E"`).
    End,
    /// Point event (`ph: "i"`).
    Instant,
    /// Counter sample (`ph: "C"`); the value rides in [`TraceEvent::value`].
    Counter,
}

impl Phase {
    /// Chrome trace-event `ph` code.
    pub fn code(self) -> &'static str {
        match self {
            Phase::Begin => "B",
            Phase::End => "E",
            Phase::Instant => "i",
            Phase::Counter => "C",
        }
    }

    fn from_code(code: &str) -> Option<Phase> {
        match code {
            "B" => Some(Phase::Begin),
            "E" => Some(Phase::End),
            "i" => Some(Phase::Instant),
            "C" => Some(Phase::Counter),
            _ => None,
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the tracer's epoch.
    pub ts_ns: u64,
    /// Rank id (Chrome `pid`): the thread-local value set by [`set_rank`]
    /// at record time; 0 outside any comm world.
    pub rank: u32,
    /// Tracer-assigned thread id (Chrome `tid`), unique per recording
    /// thread within one tracer.
    pub tid: u32,
    pub phase: Phase,
    pub name: String,
    /// Counter sample value; 0 for other phases.
    pub value: u64,
}

thread_local! {
    /// Rank tag applied to events recorded on this thread.
    static RANK: Cell<u32> = const { Cell::new(0) };
    /// Per-thread buffer cache, keyed by tracer id. The cache is what
    /// makes each buffer single-writer: only the thread that created a
    /// buffer ever finds it here.
    static BUFS: RefCell<Vec<(u64, Arc<ThreadBuf>)>> = const { RefCell::new(Vec::new()) };
}

/// Tag this thread's future events with `rank`. `minimpi::run` and its
/// variants call this on every rank thread; code spawning workers on behalf of a
/// rank (e.g. `arrayudf` thread pools) should forward the current value.
pub fn set_rank(rank: u32) {
    RANK.with(|r| r.set(rank));
}

/// The rank tag this thread's events carry (0 unless [`set_rank`] ran).
pub fn current_rank() -> u32 {
    RANK.with(|r| r.get())
}

/// Fixed-capacity append-only event buffer, written by exactly one
/// thread and read by any.
struct ThreadBuf {
    tid: u32,
    /// Published event count. The writer stores with `Release` after the
    /// slot write; readers load with `Acquire` and only touch slots
    /// below it, so a slot is never read while being written.
    len: AtomicUsize,
    dropped: AtomicU64,
    slots: Box<[UnsafeCell<Option<TraceEvent>>]>,
}

// SAFETY: the only writer is the owning thread (buffers are reached
// through the thread-local cache), writes go to the slot at `len` before
// `len` is published with Release ordering, and readers only dereference
// slots strictly below an Acquire-loaded `len`. Slots are never
// overwritten or removed.
unsafe impl Sync for ThreadBuf {}
unsafe impl Send for ThreadBuf {}

impl ThreadBuf {
    fn new(tid: u32, capacity: usize) -> ThreadBuf {
        let mut slots = Vec::with_capacity(capacity);
        slots.resize_with(capacity, || UnsafeCell::new(None));
        ThreadBuf {
            tid,
            len: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
            slots: slots.into_boxed_slice(),
        }
    }

    /// Append `ev`; returns false (and counts a drop) when full.
    /// Must only be called from the owning thread.
    fn push(&self, ev: TraceEvent) -> bool {
        let len = self.len.load(Ordering::Relaxed);
        if len == self.slots.len() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        // SAFETY: `len` is below capacity and slots at or above `len`
        // are invisible to readers until the Release store below.
        unsafe {
            *self.slots[len].get() = Some(ev);
        }
        self.len.store(len + 1, Ordering::Release);
        true
    }

    /// Copy the published prefix into `out`, in record order.
    fn read_into(&self, out: &mut Vec<TraceEvent>) {
        let len = self.len.load(Ordering::Acquire);
        for slot in &self.slots[..len] {
            // SAFETY: slots below an Acquire-loaded `len` are fully
            // written and never mutated again.
            if let Some(ev) = unsafe { (*slot.get()).clone() } {
                out.push(ev);
            }
        }
    }
}

fn next_tracer_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// Event recorder. Cheap to share (`Arc`); each recording thread lazily
/// gets its own ring buffer on first use.
pub struct Tracer {
    id: u64,
    epoch: Instant,
    capacity: usize,
    bufs: Mutex<Vec<Arc<ThreadBuf>>>,
    next_tid: AtomicU32,
    /// Mirror of per-buffer drop counts into a metrics counter, bound
    /// at [`Registry::install_tracer`] time.
    dropped_counter: OnceLock<crate::Counter>,
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::new()
    }
}

impl Tracer {
    /// Tracer with [`DEFAULT_CAPACITY`] events per thread.
    pub fn new() -> Tracer {
        Tracer::with_capacity(DEFAULT_CAPACITY)
    }

    /// Tracer with an explicit per-thread ring capacity (min 1).
    pub fn with_capacity(capacity: usize) -> Tracer {
        Tracer {
            id: next_tracer_id(),
            epoch: Instant::now(),
            capacity: capacity.max(1),
            bufs: Mutex::new(Vec::new()),
            next_tid: AtomicU32::new(1),
            dropped_counter: OnceLock::new(),
        }
    }

    pub(crate) fn bind_dropped_counter(&self, counter: crate::Counter) {
        let _ = self.dropped_counter.set(counter);
    }

    /// Open a span named `name` on this thread's timeline.
    pub fn begin(&self, name: &str) {
        self.record(Phase::Begin, name, 0);
    }

    /// Close the most recent [`Tracer::begin`] with the same name.
    pub fn end(&self, name: &str) {
        self.record(Phase::End, name, 0);
    }

    /// Point-in-time marker.
    pub fn instant(&self, name: &str) {
        self.record(Phase::Instant, name, 0);
    }

    /// Counter sample: the value of series `name` as of now.
    pub fn sample(&self, name: &str, value: u64) {
        self.record(Phase::Counter, name, value);
    }

    fn record(&self, phase: Phase, name: &str, value: u64) {
        let ts_ns = u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let buf = self.thread_buf();
        let ev = TraceEvent {
            ts_ns,
            rank: current_rank(),
            tid: buf.tid,
            phase,
            name: name.to_string(),
            value,
        };
        if !buf.push(ev) {
            if let Some(c) = self.dropped_counter.get() {
                c.inc();
            }
        }
    }

    fn thread_buf(&self) -> Arc<ThreadBuf> {
        BUFS.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some((_, buf)) = cache.iter().find(|(id, _)| *id == self.id) {
                return Arc::clone(buf);
            }
            let tid = self.next_tid.fetch_add(1, Ordering::Relaxed);
            let buf = Arc::new(ThreadBuf::new(tid, self.capacity));
            self.lock_bufs().push(Arc::clone(&buf));
            cache.push((self.id, Arc::clone(&buf)));
            buf
        })
    }

    fn lock_bufs(&self) -> std::sync::MutexGuard<'_, Vec<Arc<ThreadBuf>>> {
        match self.bufs.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Total events dropped across all threads so far.
    pub fn dropped(&self) -> u64 {
        self.lock_bufs()
            .iter()
            .map(|b| b.dropped.load(Ordering::Relaxed))
            .sum()
    }

    /// Snapshot every thread's published events into a [`Trace`].
    /// Events are grouped per thread in record order (buffers in
    /// thread-registration order); recording may continue afterwards.
    pub fn collect(&self) -> Trace {
        let bufs: Vec<Arc<ThreadBuf>> = self.lock_bufs().iter().map(Arc::clone).collect();
        let mut events = Vec::new();
        let mut dropped = 0;
        for buf in &bufs {
            buf.read_into(&mut events);
            dropped += buf.dropped.load(Ordering::Relaxed);
        }
        Trace { events, dropped }
    }
}

/// Install a tracer on the global registry (idempotent: the first call
/// wins and later calls return the installed tracer). Spans recorded
/// through [`crate::span`] — and through any registry parented to the
/// global one, i.e. every `minimpi` world — emit timeline events from
/// then on.
pub fn enable_global(capacity: usize) -> Arc<Tracer> {
    let reg = crate::registry::global();
    if let Some(t) = reg.tracer() {
        return t;
    }
    reg.install_tracer(Arc::new(Tracer::with_capacity(capacity)));
    reg.tracer().expect("tracer just installed")
}

/// Timeline-only span guard from [`scope`]/[`scope_in`]: emits Begin on
/// creation and End on drop, with **no** histogram recording — for hot
/// paths that already keep their own metrics and only need to appear on
/// the trace.
pub struct Scope {
    tracer: Arc<Tracer>,
    name: String,
}

impl Drop for Scope {
    fn drop(&mut self) {
        self.tracer.end(&self.name);
    }
}

/// Open a timeline-only span on the global registry's tracer. Returns
/// `None` — at the cost of one `OnceLock` load — when tracing is off,
/// so instrumented hot paths stay effectively free by default.
pub fn scope(name: &str) -> Option<Scope> {
    scope_in(crate::registry::global(), name)
}

/// [`scope`] against a specific registry (tracer found via its parent
/// chain).
pub fn scope_in(registry: &crate::Registry, name: &str) -> Option<Scope> {
    let tracer = registry.tracer()?;
    tracer.begin(name);
    Some(Scope {
        tracer,
        name: name.to_string(),
    })
}

/// A collected set of events plus the exact number lost to full rings.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    /// Per-thread record order, threads concatenated.
    pub events: Vec<TraceEvent>,
    /// Events that did not fit a ring buffer. Zero means the timeline
    /// is complete.
    pub dropped: u64,
}

impl Trace {
    /// Render as Chrome trace-event JSON (object form), loadable in
    /// Perfetto / `chrome://tracing`. `ts` is integer microseconds; the
    /// exact nanosecond stamp is in `args.ns`, so
    /// [`Trace::from_chrome_json`] reproduces `self` bit-exactly.
    pub fn to_chrome_json(&self) -> String {
        let mut w = JsonWriter::with_capacity(self.events.len() * 96 + 96);
        w.begin_object();
        w.key("traceEvents");
        w.begin_array();
        for ev in &self.events {
            w.begin_object();
            w.key("name").string(&ev.name);
            w.key("ph").string(ev.phase.code());
            w.key("ts").uint(ev.ts_ns / 1_000);
            w.key("pid").uint(u64::from(ev.rank));
            w.key("tid").uint(u64::from(ev.tid));
            if ev.phase == Phase::Instant {
                w.key("s").string("t");
            }
            w.key("args");
            w.begin_object();
            w.key("ns").uint(ev.ts_ns);
            if ev.phase == Phase::Counter {
                w.key("value").uint(ev.value);
            }
            w.end_object();
            w.end_object();
        }
        w.end_array();
        w.key("displayTimeUnit").string("ns");
        w.key("otherData");
        w.begin_object();
        w.key("dropped").uint(self.dropped);
        w.end_object();
        w.end_object();
        w.finish()
    }

    /// Parse a document produced by [`Trace::to_chrome_json`] (or any
    /// Chrome trace whose numbers are unsigned integers).
    pub fn from_chrome_json(text: &str) -> Result<Trace, ParseError> {
        let root = json::parse(text)?;
        let JsonValue::Object(root) = root else {
            return Err(ParseError::new("trace: expected top-level object"));
        };
        let Some(JsonValue::Array(raw_events)) = root.get("traceEvents") else {
            return Err(ParseError::new("trace: missing `traceEvents` array"));
        };
        let mut events = Vec::with_capacity(raw_events.len());
        for raw in raw_events {
            let JsonValue::Object(obj) = raw else {
                return Err(ParseError::new("trace: event must be an object"));
            };
            let str_field = |key: &str| -> Result<&str, ParseError> {
                match obj.get(key) {
                    Some(JsonValue::String(s)) => Ok(s),
                    _ => Err(ParseError::missing("trace event", key)),
                }
            };
            let num_field = |key: &str| -> Result<u64, ParseError> {
                match obj.get(key) {
                    Some(JsonValue::Number(n)) => Ok(*n),
                    _ => Err(ParseError::missing("trace event", key)),
                }
            };
            let phase = Phase::from_code(str_field("ph")?)
                .ok_or_else(|| ParseError::new("trace: unknown `ph` code"))?;
            let args = match obj.get("args") {
                Some(JsonValue::Object(a)) => Some(a),
                _ => None,
            };
            let arg_num = |key: &str| -> Option<u64> {
                match args.and_then(|a| a.get(key)) {
                    Some(JsonValue::Number(n)) => Some(*n),
                    _ => None,
                }
            };
            let ts_ns = arg_num("ns").unwrap_or(num_field("ts")?.saturating_mul(1_000));
            events.push(TraceEvent {
                ts_ns,
                rank: num_field("pid")? as u32,
                tid: num_field("tid")? as u32,
                phase,
                name: str_field("name")?.to_string(),
                value: arg_num("value").unwrap_or(0),
            });
        }
        let dropped = match root.get("otherData") {
            Some(JsonValue::Object(o)) => match o.get("dropped") {
                Some(JsonValue::Number(n)) => *n,
                _ => 0,
            },
            _ => 0,
        };
        Ok(Trace { events, dropped })
    }

    /// Aggregate the timeline: top spans, per-thread utilization, and a
    /// critical-path estimate.
    pub fn summary(&self) -> TraceSummary {
        let wall_ns = {
            let min = self.events.iter().map(|e| e.ts_ns).min().unwrap_or(0);
            let max = self.events.iter().map(|e| e.ts_ns).max().unwrap_or(0);
            max - min
        };

        // Group per (rank, tid); relative order within a group is record
        // order because `events` concatenates per-thread buffers.
        let mut groups: BTreeMap<(u32, u32), Vec<&TraceEvent>> = BTreeMap::new();
        for ev in &self.events {
            groups.entry((ev.rank, ev.tid)).or_default().push(ev);
        }

        let mut spans: BTreeMap<String, SpanStat> = BTreeMap::new();
        let mut threads = Vec::new();
        let mut best_root: Option<SpanNode> = None;

        for ((rank, tid), evs) in &groups {
            let roots = pair_spans(evs);
            let busy_ns = roots.iter().map(|n| n.duration()).sum();
            threads.push(ThreadStat {
                rank: *rank,
                tid: *tid,
                events: evs.len() as u64,
                busy_ns,
            });
            for root in roots {
                aggregate_spans(&root, &mut spans);
                if best_root
                    .as_ref()
                    .is_none_or(|b| root.duration() > b.duration())
                {
                    best_root = Some(root);
                }
            }
        }

        // Critical-path estimate: walk the longest top-level span down
        // through its longest child at each level.
        let mut critical_path = Vec::new();
        let mut node = best_root.as_ref();
        while let Some(n) = node {
            critical_path.push((n.name.clone(), n.duration()));
            node = n.children.iter().max_by_key(|c| c.duration());
        }

        let mut spans: Vec<SpanStat> = spans.into_values().collect();
        spans.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(&b.name)));

        TraceSummary {
            events: self.events.len() as u64,
            dropped: self.dropped,
            wall_ns,
            spans,
            threads,
            critical_path,
        }
    }
}

/// A reconstructed span occurrence (Begin..End) with nested children.
struct SpanNode {
    name: String,
    start_ns: u64,
    end_ns: u64,
    children: Vec<SpanNode>,
}

impl SpanNode {
    fn duration(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// Pair Begin/End events of one thread (record order) into a span
/// forest. Unclosed spans are closed at the thread's last timestamp.
fn pair_spans(events: &[&TraceEvent]) -> Vec<SpanNode> {
    let last_ts = events.last().map_or(0, |e| e.ts_ns);
    let mut stack: Vec<SpanNode> = Vec::new();
    let mut roots = Vec::new();
    for ev in events {
        match ev.phase {
            Phase::Begin => stack.push(SpanNode {
                name: ev.name.clone(),
                start_ns: ev.ts_ns,
                end_ns: ev.ts_ns,
                children: Vec::new(),
            }),
            Phase::End => {
                if let Some(mut node) = stack.pop() {
                    node.end_ns = ev.ts_ns;
                    match stack.last_mut() {
                        Some(parent) => parent.children.push(node),
                        None => roots.push(node),
                    }
                }
            }
            Phase::Instant | Phase::Counter => {}
        }
    }
    while let Some(mut node) = stack.pop() {
        node.end_ns = last_ts;
        match stack.last_mut() {
            Some(parent) => parent.children.push(node),
            None => roots.push(node),
        }
    }
    roots
}

fn aggregate_spans(node: &SpanNode, into: &mut BTreeMap<String, SpanStat>) {
    let stat = into.entry(node.name.clone()).or_insert_with(|| SpanStat {
        name: node.name.clone(),
        count: 0,
        total_ns: 0,
        max_ns: 0,
    });
    stat.count += 1;
    stat.total_ns += node.duration();
    stat.max_ns = stat.max_ns.max(node.duration());
    for child in &node.children {
        aggregate_spans(child, into);
    }
}

/// Aggregate of every occurrence of one span name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanStat {
    pub name: String,
    pub count: u64,
    pub total_ns: u64,
    pub max_ns: u64,
}

/// Per-(rank, thread) activity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadStat {
    pub rank: u32,
    pub tid: u32,
    pub events: u64,
    /// Time covered by this thread's top-level spans.
    pub busy_ns: u64,
}

/// Output of [`Trace::summary`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSummary {
    pub events: u64,
    pub dropped: u64,
    /// First event to last event, across all threads.
    pub wall_ns: u64,
    /// Sorted by total time, descending.
    pub spans: Vec<SpanStat>,
    /// Sorted by (rank, tid).
    pub threads: Vec<ThreadStat>,
    /// Longest top-level span followed through its longest child at
    /// each nesting level: `(name, duration_ns)` outermost first.
    pub critical_path: Vec<(String, u64)>,
}

impl TraceSummary {
    /// Human-readable report (the `das_trace` output).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace: {} event(s), {} dropped, wall {}",
            self.events,
            self.dropped,
            format_ns(self.wall_ns as f64)
        );
        if !self.spans.is_empty() {
            out.push_str("top spans (by total time):\n");
            let width = self.spans.iter().map(|s| s.name.len()).max().unwrap_or(0);
            for s in self.spans.iter().take(20) {
                let _ = writeln!(
                    out,
                    "  {:<width$}  count={} total={} max={}",
                    s.name,
                    s.count,
                    format_ns(s.total_ns as f64),
                    format_ns(s.max_ns as f64),
                );
            }
        }
        if !self.threads.is_empty() {
            out.push_str("threads:\n");
            for t in &self.threads {
                let util = if self.wall_ns == 0 {
                    0.0
                } else {
                    100.0 * t.busy_ns as f64 / self.wall_ns as f64
                };
                let _ = writeln!(
                    out,
                    "  rank {} tid {:<3}  {} event(s), busy {} ({util:.0}% of wall)",
                    t.rank,
                    t.tid,
                    t.events,
                    format_ns(t.busy_ns as f64),
                );
            }
        }
        if !self.critical_path.is_empty() {
            out.push_str("critical path (longest span, longest child at each level):\n");
            for (name, ns) in &self.critical_path {
                let _ = writeln!(out, "  {name} ({})", format_ns(*ns as f64));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn records_in_order_with_rank_and_tid() {
        let t = Tracer::new();
        set_rank(3);
        t.begin("a");
        t.instant("mark");
        t.sample("bytes", 42);
        t.end("a");
        set_rank(0);
        let trace = t.collect();
        assert_eq!(trace.dropped, 0);
        assert_eq!(trace.events.len(), 4);
        assert_eq!(trace.events[0].phase, Phase::Begin);
        assert_eq!(trace.events[3].phase, Phase::End);
        assert!(trace.events.iter().all(|e| e.rank == 3));
        let tid = trace.events[0].tid;
        assert!(trace.events.iter().all(|e| e.tid == tid));
        assert!(trace.events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        assert_eq!(trace.events[2].value, 42);
    }

    #[test]
    fn full_ring_drops_new_events_with_exact_count() {
        let t = Tracer::with_capacity(4);
        for i in 0..10 {
            t.instant(&format!("e{i}"));
        }
        let trace = t.collect();
        assert_eq!(trace.events.len(), 4);
        assert_eq!(trace.dropped, 6);
        assert_eq!(t.dropped(), 6);
        // Drop-new policy: the *earliest* events survive.
        assert_eq!(trace.events[0].name, "e0");
        assert_eq!(trace.events[3].name, "e3");
    }

    #[test]
    fn threads_get_distinct_tids() {
        let t = Arc::new(Tracer::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let t = Arc::clone(&t);
                s.spawn(move || {
                    for _ in 0..10 {
                        t.instant("tick");
                    }
                });
            }
        });
        let trace = t.collect();
        assert_eq!(trace.events.len(), 40);
        let tids: std::collections::BTreeSet<u32> = trace.events.iter().map(|e| e.tid).collect();
        assert_eq!(tids.len(), 4);
    }

    #[test]
    fn chrome_json_round_trips_exactly() {
        let t = Tracer::with_capacity(8);
        t.begin("pipeline.read");
        t.sample("queue", 7);
        t.end("pipeline.read");
        for _ in 0..20 {
            t.instant("overflow");
        }
        let trace = t.collect();
        assert!(trace.dropped > 0);
        let json = trace.to_chrome_json();
        let back = Trace::from_chrome_json(&json).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn chrome_json_has_required_fields() {
        let t = Tracer::new();
        t.begin("x");
        t.end("x");
        let json = t.collect().to_chrome_json();
        for field in ["\"ph\":", "\"ts\":", "\"pid\":", "\"tid\":", "\"name\":"] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
        assert!(json.contains("\"traceEvents\":["));
    }

    #[test]
    fn empty_trace_round_trips() {
        let trace = Trace::default();
        let back = Trace::from_chrome_json(&trace.to_chrome_json()).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn summary_pairs_spans_and_estimates_critical_path() {
        let mk = |ts_ns, phase, name: &str| TraceEvent {
            ts_ns,
            rank: 0,
            tid: 1,
            phase,
            name: name.to_string(),
            value: 0,
        };
        let trace = Trace {
            events: vec![
                mk(0, Phase::Begin, "pipeline"),
                mk(10, Phase::Begin, "read"),
                mk(60, Phase::End, "read"),
                mk(60, Phase::Begin, "analyze"),
                mk(80, Phase::End, "analyze"),
                mk(100, Phase::End, "pipeline"),
            ],
            dropped: 0,
        };
        let s = trace.summary();
        assert_eq!(s.wall_ns, 100);
        assert_eq!(s.spans[0].name, "pipeline");
        assert_eq!(s.spans[0].total_ns, 100);
        assert_eq!(s.threads.len(), 1);
        assert_eq!(s.threads[0].busy_ns, 100);
        let path: Vec<&str> = s.critical_path.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(path, ["pipeline", "read"]);
        let text = s.render_text();
        assert!(text.contains("critical path"));
        assert!(text.contains("pipeline"));
    }

    #[test]
    fn unclosed_spans_are_closed_at_last_event() {
        let mk = |ts_ns, phase, name: &str| TraceEvent {
            ts_ns,
            rank: 0,
            tid: 1,
            phase,
            name: name.to_string(),
            value: 0,
        };
        let trace = Trace {
            events: vec![mk(0, Phase::Begin, "hung"), mk(50, Phase::Instant, "mark")],
            dropped: 0,
        };
        let s = trace.summary();
        assert_eq!(s.spans[0].total_ns, 50);
    }

    #[test]
    fn registry_install_and_parent_lookup() {
        let parent = Arc::new(Registry::new());
        let child = Arc::new(Registry::with_parent(Arc::clone(&parent)));
        assert!(child.tracer().is_none());
        let t = Arc::new(Tracer::new());
        assert!(parent.install_tracer(Arc::clone(&t)));
        assert!(!parent.install_tracer(Arc::new(Tracer::new())));
        let found = child.tracer().expect("found via parent");
        assert_eq!(found.id, t.id);
    }

    #[test]
    fn dropped_events_bump_registry_counter() {
        let reg = Arc::new(Registry::new());
        let t = Arc::new(Tracer::with_capacity(2));
        reg.install_tracer(Arc::clone(&t));
        for _ in 0..5 {
            t.instant("e");
        }
        assert_eq!(reg.snapshot().counter("trace.dropped"), 3);
    }

    #[test]
    fn span_guard_emits_begin_end_pairs() {
        let reg = Arc::new(Registry::new());
        reg.install_tracer(Arc::new(Tracer::new()));
        {
            let _outer = crate::span_in(&reg, "pipeline");
            let _inner = crate::span_in(&reg, "read");
        }
        let trace = reg.tracer().unwrap().collect();
        let names: Vec<(&str, Phase)> = trace
            .events
            .iter()
            .map(|e| (e.name.as_str(), e.phase))
            .collect();
        assert_eq!(
            names,
            vec![
                ("pipeline", Phase::Begin),
                ("pipeline.read", Phase::Begin),
                ("pipeline.read", Phase::End),
                ("pipeline", Phase::End),
            ]
        );
    }
}
