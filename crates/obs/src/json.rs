//! Minimal hand-written JSON support for metric snapshots and traces.
//!
//! Only the subset DASSA's exports need: objects, arrays, strings, and
//! **unsigned integers**. Floats, negatives, booleans, and null are
//! rejected — metrics are integer-valued by design so that export →
//! import is bit-exact.
//!
//! [`JsonWriter`] is the one JSON emitter shared by every exporter in
//! the workspace (`Snapshot`, Chrome traces, `ClusterSnapshot`,
//! `das_fsck` reports, bench results): a streaming writer that
//! preserves insertion order, so output layouts are stable across
//! releases and greppable by CI.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value (snapshot subset).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonValue {
    Object(BTreeMap<String, JsonValue>),
    Array(Vec<JsonValue>),
    String(String),
    Number(u64),
}

/// Error from [`parse`] / [`crate::Snapshot::from_json`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    message: String,
}

impl ParseError {
    pub(crate) fn new<S: Into<String>>(message: S) -> ParseError {
        ParseError {
            message: message.into(),
        }
    }

    pub(crate) fn missing(owner: &str, key: &str) -> ParseError {
        ParseError::new(format!("{owner}: missing field `{key}`"))
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid metrics JSON: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

/// Streaming JSON writer: order-preserving, escape-correct, no
/// intermediate tree. Call [`JsonWriter::finish`] to take the text.
///
/// The writer does not validate call sequences beyond comma placement;
/// callers are expected to emit well-formed nesting (every exporter in
/// this workspace is covered by a round-trip test against [`parse`]).
///
/// ```
/// use obs::json::JsonWriter;
/// let mut w = JsonWriter::new();
/// w.begin_object();
/// w.key("files");
/// w.begin_array();
/// w.uint(3);
/// w.string("a\"b");
/// w.end_array();
/// w.end_object();
/// assert_eq!(w.finish(), r#"{"files":[3,"a\"b"]}"#);
/// ```
#[derive(Default)]
pub struct JsonWriter {
    out: String,
    /// One flag per open container: does the next element need a comma?
    comma: Vec<bool>,
}

impl JsonWriter {
    /// Fresh writer.
    pub fn new() -> JsonWriter {
        JsonWriter {
            out: String::new(),
            comma: vec![false],
        }
    }

    /// Writer with a pre-sized output buffer.
    pub fn with_capacity(bytes: usize) -> JsonWriter {
        JsonWriter {
            out: String::with_capacity(bytes),
            comma: vec![false],
        }
    }

    fn sep(&mut self) {
        if let Some(flag) = self.comma.last_mut() {
            if *flag {
                self.out.push(',');
            }
            *flag = true;
        }
    }

    /// Open `{`.
    pub fn begin_object(&mut self) -> &mut Self {
        self.sep();
        self.out.push('{');
        self.comma.push(false);
        self
    }

    /// Close `}`.
    pub fn end_object(&mut self) -> &mut Self {
        self.out.push('}');
        self.comma.pop();
        self
    }

    /// Open `[`.
    pub fn begin_array(&mut self) -> &mut Self {
        self.sep();
        self.out.push('[');
        self.comma.push(false);
        self
    }

    /// Close `]`.
    pub fn end_array(&mut self) -> &mut Self {
        self.out.push(']');
        self.comma.pop();
        self
    }

    /// Object key; the next value call supplies its value.
    pub fn key(&mut self, k: &str) -> &mut Self {
        self.sep();
        write_string(&mut self.out, k);
        self.out.push(':');
        // The value that follows must not emit its own comma.
        if let Some(flag) = self.comma.last_mut() {
            *flag = false;
        }
        self
    }

    /// String value (escaped).
    pub fn string(&mut self, s: &str) -> &mut Self {
        self.sep();
        write_string(&mut self.out, s);
        self
    }

    /// Unsigned integer value — the only number metrics JSON admits.
    pub fn uint(&mut self, v: u64) -> &mut Self {
        self.sep();
        use fmt::Write as _;
        let _ = write!(self.out, "{v}");
        self
    }

    /// Splice pre-rendered JSON (e.g. a [`crate::Snapshot::to_json`]
    /// document) as one value. The caller vouches it is well-formed.
    pub fn raw(&mut self, json: &str) -> &mut Self {
        self.sep();
        self.out.push_str(json);
        self
    }

    /// Take the rendered document.
    pub fn finish(self) -> String {
        self.out
    }
}

/// Append `s` as a quoted, escaped JSON string.
pub fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a complete JSON document (trailing whitespace allowed).
pub fn parse(text: &str) -> Result<JsonValue, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(ParseError::new("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(ParseError::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<JsonValue, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b'0'..=b'9') => self.number(),
            Some(other) => Err(ParseError::new(format!(
                "unexpected `{}` at byte {} (only objects, arrays, strings, \
                 and unsigned integers are valid in metrics JSON)",
                other as char, self.pos
            ))),
            None => Err(ParseError::new("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => {
                    return Err(ParseError::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => {
                    return Err(ParseError::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, ParseError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.') | Some(b'e') | Some(b'E')) {
            return Err(ParseError::new(format!(
                "non-integer number at byte {start}"
            )));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits");
        text.parse::<u64>()
            .map(JsonValue::Number)
            .map_err(|_| ParseError::new(format!("integer out of range at byte {start}")))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(ParseError::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(ParseError::new("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| ParseError::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| ParseError::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| ParseError::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(ParseError::new("unknown escape in string")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar, however many bytes.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| ParseError::new("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a":{"b":[1,2,[3]]},"s":"hi"}"#).unwrap();
        let JsonValue::Object(o) = v else { panic!() };
        assert!(matches!(o["s"], JsonValue::String(ref s) if s == "hi"));
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "a\"b\\c\nd\te\u{1}f✓";
        let mut encoded = String::new();
        write_string(&mut encoded, original);
        let JsonValue::String(decoded) = parse(&encoded).unwrap() else {
            panic!()
        };
        assert_eq!(decoded, original);
    }

    #[test]
    fn rejects_non_integer_numbers() {
        assert!(parse("1.5").is_err());
        assert!(parse("-3").is_err());
        assert!(parse("1e9").is_err());
        assert!(parse("true").is_err());
        assert!(parse("null").is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("1 2").is_err());
    }

    #[test]
    fn writer_produces_parseable_nested_document() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("counters");
        w.begin_object();
        w.key("a").uint(1);
        w.key("b").uint(u64::MAX);
        w.end_object();
        w.key("names");
        w.begin_array();
        w.string("x\ny");
        w.begin_array();
        w.uint(7);
        w.end_array();
        w.end_array();
        w.end_object();
        let text = w.finish();
        assert_eq!(
            text,
            "{\"counters\":{\"a\":1,\"b\":18446744073709551615},\
             \"names\":[\"x\\ny\",[7]]}"
        );
        assert!(parse(&text).is_ok());
    }

    #[test]
    fn writer_empty_containers() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("o");
        w.begin_object();
        w.end_object();
        w.key("a");
        w.begin_array();
        w.end_array();
        w.end_object();
        assert_eq!(w.finish(), "{\"o\":{},\"a\":[]}");
    }

    #[test]
    fn writer_raw_splices_value_with_commas() {
        let mut w = JsonWriter::new();
        w.begin_array();
        w.uint(1);
        w.raw("{\"k\":2}");
        w.uint(3);
        w.end_array();
        assert_eq!(w.finish(), "[1,{\"k\":2},3]");
    }

    #[test]
    fn u64_max_parses() {
        assert_eq!(
            parse("18446744073709551615").unwrap(),
            JsonValue::Number(u64::MAX)
        );
        assert!(parse("18446744073709551616").is_err());
    }
}
