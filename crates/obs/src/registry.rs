//! Named counters and histograms, grouped in a [`Registry`] that may
//! chain to a parent for aggregation.

use crate::snapshot::{HistogramSnapshot, Snapshot};
use crate::trace::Tracer;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of power-of-two histogram buckets: bucket `i` counts values
/// `v` with `64 - v.leading_zeros() == i`, i.e. bucket 0 holds `v == 0`,
/// bucket 1 holds `v == 1`, bucket i holds `2^(i-1) <= v < 2^i`.
pub(crate) const BUCKETS: usize = 65;

#[derive(Default)]
pub(crate) struct CounterCell {
    value: AtomicU64,
}

#[derive(Default)]
pub(crate) struct GaugeCell {
    value: AtomicU64,
}

pub(crate) struct HistogramCells {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for HistogramCells {
    fn default() -> HistogramCells {
        HistogramCells {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

pub(crate) fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Handle to a named monotonic counter. Cloning is cheap; all clones
/// share the same cells. If the owning registry has a parent, the handle
/// carries the parent's cell too and every increment lands in both.
#[derive(Clone)]
pub struct Counter {
    cells: Arc<[Arc<CounterCell>]>,
}

impl Counter {
    /// Add 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        for cell in self.cells.iter() {
            cell.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value in the registry this handle was created from
    /// (not the parent's aggregate).
    pub fn get(&self) -> u64 {
        self.cells[0].value.load(Ordering::Relaxed)
    }
}

/// Handle to a named gauge: an up-down counter for level quantities
/// (resident cache bytes, queue depth, open connections). Unlike
/// [`Counter`] it can decrease; like `Counter`, adds and subs recorded
/// through a child registry also land in every ancestor, so a parent's
/// gauge is the sum of its children's levels. Subtraction saturates at
/// zero rather than wrapping.
#[derive(Clone)]
pub struct Gauge {
    cells: Arc<[Arc<GaugeCell>]>,
}

impl Gauge {
    /// Raise the level by `n`.
    pub fn add(&self, n: u64) {
        for cell in self.cells.iter() {
            cell.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Lower the level by `n`, saturating at zero.
    pub fn sub(&self, n: u64) {
        for cell in self.cells.iter() {
            let _ = cell
                .value
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                    Some(v.saturating_sub(n))
                });
        }
    }

    /// Current level in the registry this handle was created from.
    pub fn get(&self) -> u64 {
        self.cells[0].value.load(Ordering::Relaxed)
    }
}

/// Handle to a named histogram of `u64` samples (ns, bytes, counts).
/// Tracks count, sum, min, max, and power-of-two bucket counts.
#[derive(Clone)]
pub struct Histogram {
    cells: Arc<[Arc<HistogramCells>]>,
}

impl Histogram {
    /// Record one sample.
    pub fn record(&self, value: u64) {
        let bucket = bucket_index(value);
        for h in self.cells.iter() {
            h.count.fetch_add(1, Ordering::Relaxed);
            h.sum.fetch_add(value, Ordering::Relaxed);
            h.buckets[bucket].fetch_add(1, Ordering::Relaxed);
            h.min.fetch_min(value, Ordering::Relaxed);
            h.max.fetch_max(value, Ordering::Relaxed);
        }
    }

    /// Record a [`std::time::Duration`] in nanoseconds (saturating).
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Sum of recorded samples in this registry (not the parent's).
    pub fn sum(&self) -> u64 {
        self.cells[0].sum.load(Ordering::Relaxed)
    }

    /// Number of recorded samples in this registry.
    pub fn count(&self) -> u64 {
        self.cells[0].count.load(Ordering::Relaxed)
    }
}

#[derive(Default)]
struct Tables {
    counters: BTreeMap<String, Arc<CounterCell>>,
    gauges: BTreeMap<String, Arc<GaugeCell>>,
    histograms: BTreeMap<String, Arc<HistogramCells>>,
}

/// A collection of named metrics. See the crate docs for the parenting
/// model; `Registry::new()` makes a standalone root.
#[derive(Default)]
pub struct Registry {
    tables: Mutex<Tables>,
    parent: Option<Arc<Registry>>,
    tracer: OnceLock<Arc<Tracer>>,
}

impl Registry {
    /// Standalone registry with no parent.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Child registry: metrics recorded here also aggregate into
    /// `parent` under the same names.
    pub fn with_parent(parent: Arc<Registry>) -> Registry {
        Registry {
            tables: Mutex::new(Tables::default()),
            parent: Some(parent),
            tracer: OnceLock::new(),
        }
    }

    /// Install an event tracer. Spans recorded into this registry (or
    /// any descendant) emit timeline events from now on, and the
    /// tracer's drops are mirrored into the `trace.dropped` counter
    /// here. Returns false if a tracer was already installed (the
    /// existing one stays).
    pub fn install_tracer(&self, tracer: Arc<Tracer>) -> bool {
        tracer.bind_dropped_counter(self.counter("trace.dropped"));
        self.tracer.set(tracer).is_ok()
    }

    /// The tracer installed here or on the nearest ancestor, if any.
    pub fn tracer(&self) -> Option<Arc<Tracer>> {
        if let Some(t) = self.tracer.get() {
            return Some(Arc::clone(t));
        }
        let mut ancestor = self.parent.as_ref().map(Arc::clone);
        while let Some(reg) = ancestor {
            if let Some(t) = reg.tracer.get() {
                return Some(Arc::clone(t));
            }
            ancestor = reg.parent.as_ref().map(Arc::clone);
        }
        None
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Tables> {
        match self.tables.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    fn counter_cell(&self, name: &str) -> Arc<CounterCell> {
        let mut t = self.lock();
        if let Some(c) = t.counters.get(name) {
            return Arc::clone(c);
        }
        let cell = Arc::new(CounterCell::default());
        t.counters.insert(name.to_string(), Arc::clone(&cell));
        cell
    }

    fn gauge_cell(&self, name: &str) -> Arc<GaugeCell> {
        let mut t = self.lock();
        if let Some(g) = t.gauges.get(name) {
            return Arc::clone(g);
        }
        let cell = Arc::new(GaugeCell::default());
        t.gauges.insert(name.to_string(), Arc::clone(&cell));
        cell
    }

    fn histogram_cells(&self, name: &str) -> Arc<HistogramCells> {
        let mut t = self.lock();
        if let Some(h) = t.histograms.get(name) {
            return Arc::clone(h);
        }
        let cells = Arc::new(HistogramCells::default());
        t.histograms.insert(name.to_string(), Arc::clone(&cells));
        cells
    }

    /// Get or create the counter `name`. The returned handle's index 0
    /// is this registry; ancestors follow.
    pub fn counter(&self, name: &str) -> Counter {
        let mut cells = vec![self.counter_cell(name)];
        let mut ancestor = self.parent.as_ref().map(Arc::clone);
        while let Some(reg) = ancestor {
            cells.push(reg.counter_cell(name));
            ancestor = reg.parent.as_ref().map(Arc::clone);
        }
        Counter {
            cells: cells.into(),
        }
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut cells = vec![self.gauge_cell(name)];
        let mut ancestor = self.parent.as_ref().map(Arc::clone);
        while let Some(reg) = ancestor {
            cells.push(reg.gauge_cell(name));
            ancestor = reg.parent.as_ref().map(Arc::clone);
        }
        Gauge {
            cells: cells.into(),
        }
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut cells = vec![self.histogram_cells(name)];
        let mut ancestor = self.parent.as_ref().map(Arc::clone);
        while let Some(reg) = ancestor {
            cells.push(reg.histogram_cells(name));
            ancestor = reg.parent.as_ref().map(Arc::clone);
        }
        Histogram {
            cells: cells.into(),
        }
    }

    /// Consistent-enough point-in-time copy of every metric in this
    /// registry (parents are not included; snapshot them separately).
    pub fn snapshot(&self) -> Snapshot {
        let t = self.lock();
        let counters = t
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), v.value.load(Ordering::Relaxed)))
            .collect();
        let gauges = t
            .gauges
            .iter()
            .map(|(k, v)| (k.clone(), v.value.load(Ordering::Relaxed)))
            .collect();
        let histograms = t
            .histograms
            .iter()
            .filter(|(_, h)| h.count.load(Ordering::Relaxed) > 0)
            .map(|(k, h)| {
                let count = h.count.load(Ordering::Relaxed);
                let buckets = h
                    .buckets
                    .iter()
                    .enumerate()
                    .filter_map(|(i, b)| {
                        let n = b.load(Ordering::Relaxed);
                        (n > 0).then_some((i as u32, n))
                    })
                    .collect();
                (
                    k.clone(),
                    HistogramSnapshot {
                        count,
                        sum: h.sum.load(Ordering::Relaxed),
                        min: h.min.load(Ordering::Relaxed),
                        max: h.max.load(Ordering::Relaxed),
                        buckets,
                    },
                )
            })
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// Zero every metric in this registry (parents unaffected).
    pub fn reset(&self) {
        let t = self.lock();
        for c in t.counters.values() {
            c.value.store(0, Ordering::Relaxed);
        }
        for g in t.gauges.values() {
            g.value.store(0, Ordering::Relaxed);
        }
        for h in t.histograms.values() {
            h.count.store(0, Ordering::Relaxed);
            h.sum.store(0, Ordering::Relaxed);
            h.min.store(u64::MAX, Ordering::Relaxed);
            h.max.store(0, Ordering::Relaxed);
            for b in &h.buckets {
                b.store(0, Ordering::Relaxed);
            }
        }
    }
}

/// The process-wide root registry. Library instrumentation records here
/// by default; `das_pipeline --metrics` snapshots it.
pub fn global() -> &'static Arc<Registry> {
    static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();
    GLOBAL.get_or_init(|| Arc::new(Registry::new()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_shared_across_handles() {
        let reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4);
        assert_eq!(reg.snapshot().counter("x"), 4);
    }

    #[test]
    fn histogram_tracks_extremes_and_buckets() {
        let reg = Registry::new();
        let h = reg.histogram("lat");
        for v in [0, 1, 2, 3, 1024] {
            h.record(v);
        }
        let snap = reg.snapshot();
        let hs = &snap.histograms["lat"];
        assert_eq!(hs.count, 5);
        assert_eq!(hs.sum, 1030);
        assert_eq!(hs.min, 0);
        assert_eq!(hs.max, 1024);
        // 0 → bucket 0; 1 → bucket 1; 2,3 → bucket 2; 1024 → bucket 11.
        assert_eq!(hs.buckets, vec![(0, 1), (1, 1), (2, 2), (11, 1)]);
    }

    #[test]
    fn child_increments_propagate_to_parent() {
        let parent = Arc::new(Registry::new());
        let child_a = Registry::with_parent(Arc::clone(&parent));
        let child_b = Registry::with_parent(Arc::clone(&parent));
        child_a.counter("msgs").add(5);
        child_b.counter("msgs").add(7);
        child_a.histogram("bytes").record(100);
        child_b.histogram("bytes").record(200);

        assert_eq!(child_a.snapshot().counter("msgs"), 5);
        assert_eq!(child_b.snapshot().counter("msgs"), 7);
        let p = parent.snapshot();
        assert_eq!(p.counter("msgs"), 12);
        assert_eq!(p.histograms["bytes"].count, 2);
        assert_eq!(p.histograms["bytes"].sum, 300);
    }

    #[test]
    fn reset_zeroes_without_touching_parent() {
        let parent = Arc::new(Registry::new());
        let child = Registry::with_parent(Arc::clone(&parent));
        child.counter("c").add(9);
        child.reset();
        assert_eq!(child.snapshot().counter("c"), 0);
        assert_eq!(parent.snapshot().counter("c"), 9);
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let reg = Arc::new(Registry::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let reg = Arc::clone(&reg);
                s.spawn(move || {
                    let c = reg.counter("n");
                    let h = reg.histogram("v");
                    for i in 0..1000 {
                        c.inc();
                        h.record(i);
                    }
                });
            }
        });
        let snap = reg.snapshot();
        assert_eq!(snap.counter("n"), 8000);
        assert_eq!(snap.histograms["v"].count, 8000);
        assert_eq!(snap.histograms["v"].sum, 8 * (0..1000).sum::<u64>());
    }

    #[test]
    fn gauge_moves_both_ways_and_saturates() {
        let reg = Registry::new();
        let g = reg.gauge("level");
        g.add(10);
        g.sub(3);
        assert_eq!(g.get(), 7);
        g.sub(100);
        assert_eq!(g.get(), 0, "sub saturates at zero");
        g.add(2);
        assert_eq!(reg.snapshot().gauge("level"), 2);
    }

    #[test]
    fn gauge_levels_aggregate_into_parent() {
        let parent = Arc::new(Registry::new());
        let child_a = Registry::with_parent(Arc::clone(&parent));
        let child_b = Registry::with_parent(Arc::clone(&parent));
        child_a.gauge("bytes").add(100);
        child_b.gauge("bytes").add(50);
        child_a.gauge("bytes").sub(30);
        assert_eq!(child_a.snapshot().gauge("bytes"), 70);
        assert_eq!(parent.snapshot().gauge("bytes"), 120);
    }

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
    }
}
