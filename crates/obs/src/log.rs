//! Zero-dependency leveled structured logging for the daemons.
//!
//! One process-wide [`Logger`] replaces the ad-hoc `eprintln!` sites:
//! every record carries a nanosecond timestamp (since process start),
//! a level, a target (the emitting subsystem), the rank and logger
//! thread id, and the dotted path of the span open on the emitting
//! thread (via [`crate::span::current_path`]) — so a log line can be
//! lined up against the trace timeline without any extra plumbing.
//!
//! # Line grammar
//!
//! Text format (default), one record per line on stderr:
//!
//! ```text
//! <ts_ns>ns <LEVEL> <rank>.<thread> <target>{ span=<dotted.path>} <message>
//! ```
//!
//! JSON format (`DASSA_LOG_FORMAT=json`), one object per line:
//!
//! ```text
//! {"ts_ns":N,"level":"info","target":"dassd","rank":0,"thread":1,"span":"...","msg":"..."}
//! ```
//!
//! # Filtering
//!
//! `DASSA_LOG` selects the minimum level, optionally per target:
//! `DASSA_LOG=debug`, `DASSA_LOG=warn,dassd=debug` (longest matching
//! target prefix wins; the bare level is the default). Unset means
//! `info`.
//!
//! Emitted records also land in a bounded ring (most recent
//! [`TAIL_CAPACITY`]) that the flight recorder dumps on panic, and are
//! metered as `log.<level>` counters on the global registry
//! (`log.filtered` counts suppressions).

use crate::json::{self, JsonValue, JsonWriter, ParseError};
use std::collections::VecDeque;
use std::fmt;
use std::io::Write as _;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// How many emitted records the in-memory tail retains for postmortems.
pub const TAIL_CAPACITY: usize = 256;

/// Severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    Error = 0,
    Warn = 1,
    Info = 2,
    Debug = 3,
    Trace = 4,
}

impl Level {
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One structured log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Nanoseconds since the logger's epoch (first use in the process).
    pub ts_ns: u64,
    pub level: Level,
    /// Emitting subsystem, e.g. `dassd`, `das_ingest`, `ingest.spool`.
    pub target: String,
    /// Rank tag of the emitting thread ([`crate::trace::current_rank`]).
    pub rank: u32,
    /// Logger-assigned thread id, unique per thread in this process.
    pub thread: u64,
    /// Dotted span path open on the emitting thread, empty if none.
    pub span: String,
    pub msg: String,
}

impl Record {
    /// Single-line JSON object (the `DASSA_LOG_FORMAT=json` line shape).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::with_capacity(128);
        w.begin_object();
        w.key("ts_ns").uint(self.ts_ns);
        w.key("level").string(self.level.as_str());
        w.key("target").string(&self.target);
        w.key("rank").uint(u64::from(self.rank));
        w.key("thread").uint(self.thread);
        w.key("span").string(&self.span);
        w.key("msg").string(&self.msg);
        w.end_object();
        w.finish()
    }

    /// Parse a record previously produced by [`Record::to_json`].
    pub fn from_json(text: &str) -> Result<Record, ParseError> {
        Record::from_value(&json::parse(text)?)
    }

    pub(crate) fn from_value(root: &JsonValue) -> Result<Record, ParseError> {
        let JsonValue::Object(obj) = root else {
            return Err(ParseError::new("log record: expected object"));
        };
        let num = |key: &str| -> Result<u64, ParseError> {
            match obj.get(key) {
                Some(JsonValue::Number(n)) => Ok(*n),
                Some(_) => Err(ParseError::new(format!("log record: {key} not integer"))),
                None => Err(ParseError::missing("log record", key)),
            }
        };
        let text = |key: &str| -> Result<String, ParseError> {
            match obj.get(key) {
                Some(JsonValue::String(s)) => Ok(s.clone()),
                Some(_) => Err(ParseError::new(format!("log record: {key} not string"))),
                None => Err(ParseError::missing("log record", key)),
            }
        };
        let level = text("level")?;
        Ok(Record {
            ts_ns: num("ts_ns")?,
            level: Level::parse(&level)
                .ok_or_else(|| ParseError::new(format!("log record: bad level {level:?}")))?,
            target: text("target")?,
            rank: num("rank")? as u32,
            thread: num("thread")?,
            span: text("span")?,
            msg: text("msg")?,
        })
    }

    /// The text line shape (no trailing newline).
    pub fn render_text(&self) -> String {
        let level = self.level.as_str().to_ascii_uppercase();
        if self.span.is_empty() {
            format!(
                "{}ns {:5} {}.{} {} {}",
                self.ts_ns, level, self.rank, self.thread, self.target, self.msg
            )
        } else {
            format!(
                "{}ns {:5} {}.{} {} span={} {}",
                self.ts_ns, level, self.rank, self.thread, self.target, self.span, self.msg
            )
        }
    }
}

/// Output line shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    Text,
    Json,
}

/// Minimum-level filter: a default plus per-target overrides; the
/// longest override whose name prefixes the record's target wins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Filter {
    default: Level,
    overrides: Vec<(String, Level)>,
}

impl Filter {
    pub fn new(default: Level) -> Filter {
        Filter {
            default,
            overrides: Vec::new(),
        }
    }

    /// Parse a `DASSA_LOG` spec: comma-separated `level` or
    /// `target=level` clauses. Unknown clauses are ignored rather than
    /// fatal — a typo in an env var must never take the daemon down.
    pub fn parse(spec: &str) -> Filter {
        let mut filter = Filter::new(Level::Info);
        for clause in spec.split(',') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            match clause.split_once('=') {
                None => {
                    if let Some(level) = Level::parse(clause) {
                        filter.default = level;
                    }
                }
                Some((target, level)) => {
                    if let Some(level) = Level::parse(level) {
                        filter.overrides.push((target.trim().to_string(), level));
                    }
                }
            }
        }
        // Longest prefix first, so the first match below is the winner.
        filter
            .overrides
            .sort_by_key(|entry| std::cmp::Reverse(entry.0.len()));
        filter
    }

    /// Would a record at `level` from `target` pass?
    pub fn enabled(&self, level: Level, target: &str) -> bool {
        let min = self
            .overrides
            .iter()
            .find(|(prefix, _)| target.starts_with(prefix.as_str()))
            .map(|&(_, level)| level)
            .unwrap_or(self.default);
        level <= min
    }
}

enum Sink {
    Stderr,
    /// Test/chaos sink: records accumulate here instead of stderr.
    Capture(Arc<Mutex<Vec<Record>>>),
}

/// The process-wide structured logger. Obtain via [`logger`]; emit via
/// the `log_error!`/`log_warn!`/`log_info!`/`log_debug!` macros.
pub struct Logger {
    epoch: Instant,
    filter: Mutex<Filter>,
    format: AtomicU8,
    sink: Mutex<Sink>,
    tail: Mutex<VecDeque<Record>>,
}

impl Logger {
    fn from_env() -> Logger {
        let filter = std::env::var("DASSA_LOG")
            .map(|spec| Filter::parse(&spec))
            .unwrap_or_else(|_| Filter::new(Level::Info));
        let format = match std::env::var("DASSA_LOG_FORMAT").as_deref() {
            Ok("json") => Format::Json,
            _ => Format::Text,
        };
        Logger {
            epoch: Instant::now(),
            filter: Mutex::new(filter),
            format: AtomicU8::new(if format == Format::Json { 1 } else { 0 }),
            sink: Mutex::new(Sink::Stderr),
            tail: Mutex::new(VecDeque::with_capacity(TAIL_CAPACITY)),
        }
    }

    /// Replace the filter (tests, or runtime verbosity changes).
    pub fn set_filter(&self, filter: Filter) {
        *lock(&self.filter) = filter;
    }

    /// Switch output line shape.
    pub fn set_format(&self, format: Format) {
        self.format.store(
            if format == Format::Json { 1 } else { 0 },
            Ordering::Relaxed,
        );
    }

    pub fn format(&self) -> Format {
        if self.format.load(Ordering::Relaxed) == 1 {
            Format::Json
        } else {
            Format::Text
        }
    }

    /// Route records into `buffer` instead of stderr (the chaos suite
    /// uses this to keep daemon noise out of deterministic output).
    pub fn capture(&self, buffer: Arc<Mutex<Vec<Record>>>) {
        *lock(&self.sink) = Sink::Capture(buffer);
    }

    /// Restore the stderr sink.
    pub fn uncapture(&self) {
        *lock(&self.sink) = Sink::Stderr;
    }

    /// Cheap pre-check for guarding expensive message construction.
    pub fn enabled(&self, level: Level, target: &str) -> bool {
        lock(&self.filter).enabled(level, target)
    }

    /// Emit one record (filtered records only bump `log.filtered`).
    pub fn log(&self, level: Level, target: &str, args: fmt::Arguments<'_>) {
        if !self.enabled(level, target) {
            crate::global().counter("log.filtered").inc();
            return;
        }
        let record = Record {
            ts_ns: u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX),
            level,
            target: target.to_string(),
            rank: crate::trace::current_rank(),
            thread: thread_id(),
            span: crate::span::current_path().unwrap_or_default(),
            msg: args.to_string(),
        };
        crate::global()
            .counter(&format!("log.{}", level.as_str()))
            .inc();
        {
            let mut tail = lock(&self.tail);
            while tail.len() >= TAIL_CAPACITY {
                tail.pop_front();
            }
            tail.push_back(record.clone());
        }
        let line = match self.format() {
            Format::Text => record.render_text(),
            Format::Json => record.to_json(),
        };
        match &*lock(&self.sink) {
            Sink::Stderr => {
                let stderr = std::io::stderr();
                let mut out = stderr.lock();
                let _ = writeln!(out, "{line}");
            }
            Sink::Capture(buffer) => lock(buffer).push(record),
        }
    }

    /// Most recent emitted records, oldest first (at most
    /// [`TAIL_CAPACITY`]); the flight recorder dumps these on panic.
    pub fn tail(&self) -> Vec<Record> {
        lock(&self.tail).iter().cloned().collect()
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

/// Logger-assigned id of the calling thread (stable for its lifetime).
pub fn thread_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static ID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    ID.with(|id| *id)
}

/// The process-wide logger, configured from `DASSA_LOG` /
/// `DASSA_LOG_FORMAT` on first use.
pub fn logger() -> &'static Logger {
    static LOGGER: OnceLock<Logger> = OnceLock::new();
    LOGGER.get_or_init(Logger::from_env)
}

/// Emit through the global logger (macro plumbing; prefer the macros).
pub fn log(level: Level, target: &str, args: fmt::Arguments<'_>) {
    logger().log(level, target, args);
}

/// `log_error!("dassd", "accept failed: {e}")`
#[macro_export]
macro_rules! log_error {
    ($target:expr, $($arg:tt)*) => {
        $crate::log::log($crate::log::Level::Error, $target, format_args!($($arg)*))
    };
}

/// `log_warn!("ingest.spool", "quarantined {name}: {reason}")`
#[macro_export]
macro_rules! log_warn {
    ($target:expr, $($arg:tt)*) => {
        $crate::log::log($crate::log::Level::Warn, $target, format_args!($($arg)*))
    };
}

/// `log_info!("dassd", "listening on {addr}")`
#[macro_export]
macro_rules! log_info {
    ($target:expr, $($arg:tt)*) => {
        $crate::log::log($crate::log::Level::Info, $target, format_args!($($arg)*))
    };
}

/// `log_debug!("dassd", "cache miss for {path}")`
#[macro_export]
macro_rules! log_debug {
    ($target:expr, $($arg:tt)*) => {
        $crate::log::log($crate::log::Level::Debug, $target, format_args!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> Record {
        Record {
            ts_ns: 123_456_789,
            level: Level::Warn,
            target: "dassd".into(),
            rank: 2,
            thread: 7,
            span: "serve.read".into(),
            msg: "cache \"hot\"\npath".into(),
        }
    }

    #[test]
    fn record_json_round_trips() {
        let rec = sample_record();
        let back = Record::from_json(&rec.to_json()).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn record_json_rejects_bad_shapes() {
        assert!(Record::from_json("[]").is_err());
        assert!(Record::from_json("{\"ts_ns\":1}").is_err());
        let bad_level = sample_record().to_json().replace("warn", "loud");
        assert!(Record::from_json(&bad_level).is_err());
    }

    #[test]
    fn filter_respects_default_and_overrides() {
        let f = Filter::parse("warn,dassd=debug,ingest.spool=error");
        assert!(f.enabled(Level::Warn, "other"));
        assert!(!f.enabled(Level::Info, "other"));
        assert!(f.enabled(Level::Debug, "dassd"));
        assert!(!f.enabled(Level::Trace, "dassd"));
        assert!(!f.enabled(Level::Warn, "ingest.spool"));
        assert!(f.enabled(Level::Error, "ingest.spool"));
    }

    #[test]
    fn filter_longest_prefix_wins() {
        let f = Filter::parse("info,ingest=warn,ingest.spool=trace");
        assert!(f.enabled(Level::Trace, "ingest.spool"));
        assert!(!f.enabled(Level::Info, "ingest.daemon"));
    }

    #[test]
    fn filter_ignores_garbage_clauses() {
        let f = Filter::parse("bogus,,dassd=louder,debug");
        assert_eq!(f, {
            let mut expect = Filter::new(Level::Debug);
            expect.overrides.clear();
            expect
        });
    }

    #[test]
    fn logger_level_filtering_and_tail() {
        let log = Logger {
            epoch: Instant::now(),
            filter: Mutex::new(Filter::parse("warn")),
            format: AtomicU8::new(0),
            sink: Mutex::new(Sink::Stderr),
            tail: Mutex::new(VecDeque::new()),
        };
        let captured = Arc::new(Mutex::new(Vec::new()));
        log.capture(Arc::clone(&captured));
        log.log(Level::Info, "t", format_args!("dropped"));
        log.log(Level::Error, "t", format_args!("kept {}", 1));
        let records = captured.lock().unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].msg, "kept 1");
        assert_eq!(records[0].level, Level::Error);
        assert_eq!(log.tail().len(), 1, "filtered records stay out of the tail");
    }

    #[test]
    fn tail_is_bounded() {
        let log = Logger {
            epoch: Instant::now(),
            filter: Mutex::new(Filter::new(Level::Trace)),
            format: AtomicU8::new(0),
            sink: Mutex::new(Sink::Capture(Arc::new(Mutex::new(Vec::new())))),
            tail: Mutex::new(VecDeque::new()),
        };
        for i in 0..(TAIL_CAPACITY + 50) {
            log.log(Level::Info, "t", format_args!("{i}"));
        }
        let tail = log.tail();
        assert_eq!(tail.len(), TAIL_CAPACITY);
        assert_eq!(tail.last().unwrap().msg, format!("{}", TAIL_CAPACITY + 49));
    }

    #[test]
    fn text_rendering_includes_span_when_present() {
        let rec = sample_record();
        let line = rec.render_text();
        assert!(line.contains("WARN"));
        assert!(line.contains("span=serve.read"));
        assert!(line.contains("2.7"));
        let mut no_span = rec;
        no_span.span.clear();
        assert!(!no_span.render_text().contains("span="));
    }

    #[test]
    fn level_parse_and_display() {
        for level in [
            Level::Error,
            Level::Warn,
            Level::Info,
            Level::Debug,
            Level::Trace,
        ] {
            assert_eq!(Level::parse(level.as_str()), Some(level));
            assert_eq!(level.to_string(), level.as_str());
        }
        assert_eq!(Level::parse("WARNING"), Some(Level::Warn));
        assert_eq!(Level::parse("noisy"), None);
    }
}
