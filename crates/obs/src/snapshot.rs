//! Point-in-time metric values, with JSON and text exporters.

use crate::json::{self, JsonValue, ParseError};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Frozen state of one histogram.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    /// Sparse power-of-two buckets as `(bucket_index, count)`, ascending
    /// by index; zero-count buckets are omitted.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// Mean sample value, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Frozen state of a [`crate::Registry`]: every counter and every
/// non-empty histogram, keyed by name.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Snapshot {
    pub counters: BTreeMap<String, u64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// Counter value, or 0 if the counter was never created.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Histogram by name, if it recorded anything.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Sum of a histogram's samples, or 0 if absent. Convenient for
    /// span histograms, where the sum is total time in the span.
    pub fn histogram_sum(&self, name: &str) -> u64 {
        self.histograms.get(name).map_or(0, |h| h.sum)
    }

    /// Serialize to a single-line JSON object. Integer-exact: feeding
    /// the output to [`Snapshot::from_json`] reproduces `self`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_string(&mut out, k);
            let _ = write!(out, ":{v}");
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_string(&mut out, k);
            let _ = write!(
                out,
                ":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
                h.count, h.sum, h.min, h.max
            );
            for (j, (bucket, n)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{bucket},{n}]");
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }

    /// Parse a snapshot previously produced by [`Snapshot::to_json`]
    /// (or any JSON object with the same shape).
    pub fn from_json(text: &str) -> Result<Snapshot, ParseError> {
        let root = json::parse(text)?;
        let obj = root.as_object("top level")?;
        let mut snap = Snapshot::default();
        if let Some(counters) = obj.get("counters") {
            for (name, value) in counters.as_object("counters")? {
                snap.counters.insert(name.clone(), value.as_u64(name)?);
            }
        }
        if let Some(hists) = obj.get("histograms") {
            for (name, value) in hists.as_object("histograms")? {
                let h = value.as_object(name)?;
                let field = |key: &str| -> Result<u64, ParseError> {
                    h.get(key)
                        .ok_or_else(|| ParseError::missing(name, key))?
                        .as_u64(key)
                };
                let mut buckets = Vec::new();
                if let Some(raw) = h.get("buckets") {
                    for pair in raw.as_array("buckets")? {
                        let pair = pair.as_array("bucket pair")?;
                        if pair.len() != 2 {
                            return Err(ParseError::new(
                                "bucket pair must have exactly two elements",
                            ));
                        }
                        buckets.push((
                            pair[0].as_u64("bucket index")? as u32,
                            pair[1].as_u64("bucket count")?,
                        ));
                    }
                }
                snap.histograms.insert(
                    name.clone(),
                    HistogramSnapshot {
                        count: field("count")?,
                        sum: field("sum")?,
                        min: field("min")?,
                        max: field("max")?,
                        buckets,
                    },
                );
            }
        }
        Ok(snap)
    }

    /// Multi-line human-readable rendering: counters first, then
    /// histograms with count/mean/min/max. Durations (names ending in
    /// `ns` or under `span.`) are scaled to readable units.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            let width = self.counters.keys().map(|k| k.len()).max().unwrap_or(0);
            for (k, v) in &self.counters {
                let _ = writeln!(out, "  {k:<width$}  {v}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            let width = self.histograms.keys().map(|k| k.len()).max().unwrap_or(0);
            for (k, h) in &self.histograms {
                let time_like = k.starts_with("span.") || k.ends_with("ns");
                let fmt = |v: f64| -> String {
                    if time_like {
                        format_ns(v)
                    } else {
                        format!("{v:.0}")
                    }
                };
                let _ = writeln!(
                    out,
                    "  {k:<width$}  count={} mean={} min={} max={} total={}",
                    h.count,
                    fmt(h.mean()),
                    fmt(h.min as f64),
                    fmt(h.max as f64),
                    fmt(h.sum as f64),
                );
            }
        }
        out
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

trait JsonValueExt {
    fn as_object(&self, what: &str) -> Result<&BTreeMap<String, JsonValue>, ParseError>;
    fn as_array(&self, what: &str) -> Result<&[JsonValue], ParseError>;
    fn as_u64(&self, what: &str) -> Result<u64, ParseError>;
}

impl JsonValueExt for JsonValue {
    fn as_object(&self, what: &str) -> Result<&BTreeMap<String, JsonValue>, ParseError> {
        match self {
            JsonValue::Object(m) => Ok(m),
            _ => Err(ParseError::new(format!("{what}: expected object"))),
        }
    }

    fn as_array(&self, what: &str) -> Result<&[JsonValue], ParseError> {
        match self {
            JsonValue::Array(v) => Ok(v),
            _ => Err(ParseError::new(format!("{what}: expected array"))),
        }
    }

    fn as_u64(&self, what: &str) -> Result<u64, ParseError> {
        match self {
            JsonValue::Number(n) => Ok(*n),
            _ => Err(ParseError::new(format!("{what}: expected integer"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn sample() -> Snapshot {
        let reg = Registry::new();
        reg.counter("minimpi.p2p.messages").add(17);
        reg.counter("dasf.open.count").add(3);
        let h = reg.histogram("dasf.open.ns");
        h.record(1_500);
        h.record(900_000);
        reg.histogram("dasf.read.bytes").record(1 << 20);
        reg.snapshot()
    }

    #[test]
    fn json_round_trip_is_exact() {
        let snap = sample();
        let parsed = Snapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(parsed, snap);
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let snap = Snapshot::default();
        assert_eq!(Snapshot::from_json(&snap.to_json()).unwrap(), snap);
    }

    #[test]
    fn names_with_escapes_round_trip() {
        let mut snap = Snapshot::default();
        snap.counters.insert("weird \"name\"\\path\n".into(), 9);
        assert_eq!(Snapshot::from_json(&snap.to_json()).unwrap(), snap);
    }

    #[test]
    fn extreme_values_round_trip() {
        let mut snap = Snapshot::default();
        snap.counters.insert("big".into(), u64::MAX);
        snap.histograms.insert(
            "h".into(),
            HistogramSnapshot {
                count: 1,
                sum: u64::MAX,
                min: u64::MAX,
                max: u64::MAX,
                buckets: vec![(64, 1)],
            },
        );
        assert_eq!(Snapshot::from_json(&snap.to_json()).unwrap(), snap);
    }

    #[test]
    fn accessors() {
        let snap = sample();
        assert_eq!(snap.counter("minimpi.p2p.messages"), 17);
        assert_eq!(snap.counter("absent"), 0);
        assert_eq!(snap.histogram_sum("dasf.open.ns"), 901_500);
        assert_eq!(snap.histogram("dasf.open.ns").unwrap().count, 2);
        assert!((snap.histogram("dasf.open.ns").unwrap().mean() - 450_750.0).abs() < 1e-9);
    }

    #[test]
    fn render_text_mentions_every_metric() {
        let snap = sample();
        let text = snap.render_text();
        for name in ["minimpi.p2p.messages", "dasf.open.count", "dasf.open.ns"] {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
        assert!(text.contains("900.00us"), "ns scaling missing:\n{text}");
    }

    #[test]
    fn malformed_json_is_rejected() {
        for bad in [
            "",
            "{",
            "[1,2]",
            "{\"counters\":{\"x\":-1}}",
            "{\"counters\":{\"x\":1.5}}",
            "{\"histograms\":{\"h\":{\"count\":1}}}",
            "{\"histograms\":{\"h\":{\"count\":1,\"sum\":2,\"min\":3,\"max\":4,\"buckets\":[[1]]}}}",
        ] {
            assert!(Snapshot::from_json(bad).is_err(), "accepted: {bad}");
        }
    }
}
