//! Point-in-time metric values, with JSON and text exporters.

use crate::json::{self, JsonValue, JsonWriter, ParseError};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Frozen state of one histogram.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    /// Sparse power-of-two buckets as `(bucket_index, count)`, ascending
    /// by index; zero-count buckets are omitted.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// Mean sample value, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimate of the `q`-quantile (`q` in `[0, 1]`), or 0 if empty.
    ///
    /// Resolution is the power-of-two bucket scheme: the reported value
    /// is the inclusive upper bound of the bucket containing the
    /// target sample, clamped to the observed `[min, max]` — an
    /// over-estimate by at most 2× for mid-bucket samples, and exact
    /// for the extremes.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        if q == 0.0 {
            return self.min;
        }
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(bucket, n) in &self.buckets {
            seen += n;
            if seen >= target {
                // Bucket i holds 2^(i-1) <= v < 2^i (bucket 0 holds 0),
                // so the inclusive upper bound is 2^i - 1; bucket 64
                // would overflow the shift and means "up to u64::MAX".
                let upper = if bucket >= 64 {
                    u64::MAX
                } else {
                    (1u64 << bucket) - 1
                };
                return upper.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median estimate (see [`HistogramSnapshot::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Fold `other` into `self`: counts and sums add, extremes widen,
    /// buckets combine index-wise. Associative and commutative.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        let mut merged: BTreeMap<u32, u64> = self.buckets.iter().copied().collect();
        for &(bucket, n) in &other.buckets {
            *merged.entry(bucket).or_insert(0) += n;
        }
        self.buckets = merged.into_iter().collect();
    }
}

/// Frozen state of a [`crate::Registry`]: every counter and every
/// non-empty histogram, keyed by name.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Snapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, u64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// Counter value, or 0 if the counter was never created.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge level, or 0 if the gauge was never created.
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Histogram by name, if it recorded anything.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Sum of a histogram's samples, or 0 if absent. Convenient for
    /// span histograms, where the sum is total time in the span.
    pub fn histogram_sum(&self, name: &str) -> u64 {
        self.histograms.get(name).map_or(0, |h| h.sum)
    }

    /// Fold `other` into `self`: counters add, histograms merge (see
    /// [`HistogramSnapshot::merge`]). Associative and commutative, so
    /// any grouping of per-rank snapshots aggregates identically.
    pub fn merge(&mut self, other: &Snapshot) {
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, v) in &other.gauges {
            *self.gauges.entry(name.clone()).or_insert(0) += v;
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(h);
        }
    }

    /// Serialize to a single-line JSON object. Integer-exact: feeding
    /// the output to [`Snapshot::from_json`] reproduces `self`.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::with_capacity(256);
        w.begin_object();
        self.write_json(&mut w);
        w.end_object();
        w.finish()
    }

    /// Serialize like [`Snapshot::to_json`] but with an extra `cluster`
    /// key carrying the per-rank breakdown: `{"counters":...,
    /// "histograms":...,"cluster":{"ranks":{...}}}`. [`Snapshot::
    /// from_json`] ignores the extra key, so consumers of the flat form
    /// keep working; [`crate::ClusterSnapshot::from_json`] accepts the
    /// combined document directly.
    pub fn to_json_with_cluster(&self, cluster: &crate::ClusterSnapshot) -> String {
        let mut w = JsonWriter::with_capacity(512);
        w.begin_object();
        self.write_json(&mut w);
        w.key("cluster");
        w.begin_object();
        cluster.write_json(&mut w);
        w.end_object();
        w.end_object();
        w.finish()
    }

    /// Serialize like [`Snapshot::to_json`] with extra self-describing
    /// string/integer keys spliced in front (`version`, `uptime_ms`,
    /// ...). [`Snapshot::from_json`] ignores unknown keys, so tagged
    /// documents still round-trip into the same snapshot.
    pub fn to_json_tagged(&self, strings: &[(&str, &str)], numbers: &[(&str, u64)]) -> String {
        let mut w = JsonWriter::with_capacity(512);
        w.begin_object();
        for (k, v) in strings {
            w.key(k).string(v);
        }
        for (k, v) in numbers {
            w.key(k).uint(*v);
        }
        self.write_json(&mut w);
        w.end_object();
        w.finish()
    }

    /// Write this snapshot's `counters`/`histograms` keys into an
    /// already-open object on `w` (shared by [`Snapshot::to_json`] and
    /// the cluster exporter).
    pub(crate) fn write_json(&self, w: &mut JsonWriter) {
        w.key("counters");
        w.begin_object();
        for (k, v) in &self.counters {
            w.key(k).uint(*v);
        }
        w.end_object();
        if !self.gauges.is_empty() {
            w.key("gauges");
            w.begin_object();
            for (k, v) in &self.gauges {
                w.key(k).uint(*v);
            }
            w.end_object();
        }
        w.key("histograms");
        w.begin_object();
        for (k, h) in &self.histograms {
            w.key(k);
            w.begin_object();
            w.key("count").uint(h.count);
            w.key("sum").uint(h.sum);
            w.key("min").uint(h.min);
            w.key("max").uint(h.max);
            // Derived quantile estimates, for dashboards and CI greps;
            // `from_json` ignores them (they reconstruct from buckets).
            w.key("p50").uint(h.p50());
            w.key("p95").uint(h.p95());
            w.key("p99").uint(h.p99());
            w.key("buckets");
            w.begin_array();
            for (bucket, n) in &h.buckets {
                w.begin_array();
                w.uint(u64::from(*bucket)).uint(*n);
                w.end_array();
            }
            w.end_array();
            w.end_object();
        }
        w.end_object();
    }

    /// Parse a snapshot previously produced by [`Snapshot::to_json`]
    /// (or any JSON object with the same shape).
    pub fn from_json(text: &str) -> Result<Snapshot, ParseError> {
        Snapshot::from_value(&json::parse(text)?)
    }

    /// Build a snapshot from an already-parsed JSON value of the
    /// [`Snapshot::to_json`] shape.
    pub(crate) fn from_value(root: &JsonValue) -> Result<Snapshot, ParseError> {
        let obj = root.as_object("top level")?;
        let mut snap = Snapshot::default();
        if let Some(counters) = obj.get("counters") {
            for (name, value) in counters.as_object("counters")? {
                snap.counters.insert(name.clone(), value.as_u64(name)?);
            }
        }
        if let Some(gauges) = obj.get("gauges") {
            for (name, value) in gauges.as_object("gauges")? {
                snap.gauges.insert(name.clone(), value.as_u64(name)?);
            }
        }
        if let Some(hists) = obj.get("histograms") {
            for (name, value) in hists.as_object("histograms")? {
                let h = value.as_object(name)?;
                let field = |key: &str| -> Result<u64, ParseError> {
                    h.get(key)
                        .ok_or_else(|| ParseError::missing(name, key))?
                        .as_u64(key)
                };
                let mut buckets = Vec::new();
                if let Some(raw) = h.get("buckets") {
                    for pair in raw.as_array("buckets")? {
                        let pair = pair.as_array("bucket pair")?;
                        if pair.len() != 2 {
                            return Err(ParseError::new(
                                "bucket pair must have exactly two elements",
                            ));
                        }
                        buckets.push((
                            pair[0].as_u64("bucket index")? as u32,
                            pair[1].as_u64("bucket count")?,
                        ));
                    }
                }
                snap.histograms.insert(
                    name.clone(),
                    HistogramSnapshot {
                        count: field("count")?,
                        sum: field("sum")?,
                        min: field("min")?,
                        max: field("max")?,
                        buckets,
                    },
                );
            }
        }
        Ok(snap)
    }

    /// Multi-line human-readable rendering: counters first, then
    /// histograms with count/mean/p50/p95/p99/min/max. Durations (names
    /// ending in `ns` or under `span.`) are scaled to readable units.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            let width = self.counters.keys().map(|k| k.len()).max().unwrap_or(0);
            for (k, v) in &self.counters {
                let _ = writeln!(out, "  {k:<width$}  {v}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            let width = self.gauges.keys().map(|k| k.len()).max().unwrap_or(0);
            for (k, v) in &self.gauges {
                let _ = writeln!(out, "  {k:<width$}  {v}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            let width = self.histograms.keys().map(|k| k.len()).max().unwrap_or(0);
            for (k, h) in &self.histograms {
                let time_like = k.starts_with("span.") || k.ends_with("ns");
                let fmt = |v: f64| -> String {
                    if time_like {
                        format_ns(v)
                    } else {
                        format!("{v:.0}")
                    }
                };
                let _ = writeln!(
                    out,
                    "  {k:<width$}  count={} mean={} p50={} p95={} p99={} min={} max={} total={}",
                    h.count,
                    fmt(h.mean()),
                    fmt(h.p50() as f64),
                    fmt(h.p95() as f64),
                    fmt(h.p99() as f64),
                    fmt(h.min as f64),
                    fmt(h.max as f64),
                    fmt(h.sum as f64),
                );
            }
        }
        out
    }
}

pub(crate) fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

trait JsonValueExt {
    fn as_object(&self, what: &str) -> Result<&BTreeMap<String, JsonValue>, ParseError>;
    fn as_array(&self, what: &str) -> Result<&[JsonValue], ParseError>;
    fn as_u64(&self, what: &str) -> Result<u64, ParseError>;
}

impl JsonValueExt for JsonValue {
    fn as_object(&self, what: &str) -> Result<&BTreeMap<String, JsonValue>, ParseError> {
        match self {
            JsonValue::Object(m) => Ok(m),
            _ => Err(ParseError::new(format!("{what}: expected object"))),
        }
    }

    fn as_array(&self, what: &str) -> Result<&[JsonValue], ParseError> {
        match self {
            JsonValue::Array(v) => Ok(v),
            _ => Err(ParseError::new(format!("{what}: expected array"))),
        }
    }

    fn as_u64(&self, what: &str) -> Result<u64, ParseError> {
        match self {
            JsonValue::Number(n) => Ok(*n),
            _ => Err(ParseError::new(format!("{what}: expected integer"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn sample() -> Snapshot {
        let reg = Registry::new();
        reg.counter("minimpi.p2p.messages").add(17);
        reg.counter("dasf.open.count").add(3);
        let h = reg.histogram("dasf.open.ns");
        h.record(1_500);
        h.record(900_000);
        reg.histogram("dasf.read.bytes").record(1 << 20);
        reg.snapshot()
    }

    #[test]
    fn json_round_trip_is_exact() {
        let snap = sample();
        let parsed = Snapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(parsed, snap);
    }

    #[test]
    fn gauges_round_trip_and_render() {
        let reg = Registry::new();
        reg.gauge("cache.bytes").add(4096);
        reg.counter("cache.hit").add(2);
        let snap = reg.snapshot();
        assert_eq!(snap.gauge("cache.bytes"), 4096);
        assert_eq!(snap.gauge("absent"), 0);
        let parsed = Snapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(parsed, snap);
        assert!(snap.to_json().contains("\"gauges\":{\"cache.bytes\":4096}"));
        assert!(snap.render_text().contains("cache.bytes"));
        let mut merged = snap.clone();
        merged.merge(&snap);
        assert_eq!(merged.gauge("cache.bytes"), 8192);
    }

    #[test]
    fn histogram_json_carries_quantile_estimates() {
        let snap = sample();
        let json = snap.to_json();
        for key in ["\"p50\":", "\"p95\":", "\"p99\":"] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // Derived fields must not break the exact round-trip.
        assert_eq!(Snapshot::from_json(&json).unwrap(), snap);
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let snap = Snapshot::default();
        assert_eq!(Snapshot::from_json(&snap.to_json()).unwrap(), snap);
    }

    #[test]
    fn names_with_escapes_round_trip() {
        let mut snap = Snapshot::default();
        snap.counters.insert("weird \"name\"\\path\n".into(), 9);
        assert_eq!(Snapshot::from_json(&snap.to_json()).unwrap(), snap);
    }

    #[test]
    fn extreme_values_round_trip() {
        let mut snap = Snapshot::default();
        snap.counters.insert("big".into(), u64::MAX);
        snap.histograms.insert(
            "h".into(),
            HistogramSnapshot {
                count: 1,
                sum: u64::MAX,
                min: u64::MAX,
                max: u64::MAX,
                buckets: vec![(64, 1)],
            },
        );
        assert_eq!(Snapshot::from_json(&snap.to_json()).unwrap(), snap);
    }

    #[test]
    fn accessors() {
        let snap = sample();
        assert_eq!(snap.counter("minimpi.p2p.messages"), 17);
        assert_eq!(snap.counter("absent"), 0);
        assert_eq!(snap.histogram_sum("dasf.open.ns"), 901_500);
        assert_eq!(snap.histogram("dasf.open.ns").unwrap().count, 2);
        assert!((snap.histogram("dasf.open.ns").unwrap().mean() - 450_750.0).abs() < 1e-9);
    }

    #[test]
    fn render_text_mentions_every_metric() {
        let snap = sample();
        let text = snap.render_text();
        for name in ["minimpi.p2p.messages", "dasf.open.count", "dasf.open.ns"] {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
        assert!(text.contains("900.00us"), "ns scaling missing:\n{text}");
    }

    #[test]
    fn empty_histogram_stats_are_zero_not_nan() {
        let h = HistogramSnapshot::default();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p95(), 0);
        assert_eq!(h.p99(), 0);
    }

    #[test]
    fn quantiles_follow_bucket_upper_bounds() {
        let reg = Registry::new();
        let h = reg.histogram("v");
        // 90 samples of 10 (bucket 4, upper 15), 10 samples of 1000
        // (bucket 10, upper 1023).
        for _ in 0..90 {
            h.record(10);
        }
        for _ in 0..10 {
            h.record(1000);
        }
        let hs = reg.snapshot().histograms["v"].clone();
        assert_eq!(hs.p50(), 15);
        assert_eq!(hs.quantile(0.90), 15);
        assert_eq!(hs.p95(), 1000); // clamped to observed max
        assert_eq!(hs.p99(), 1000);
        assert_eq!(hs.quantile(0.0), 10); // clamped to observed min
        assert_eq!(hs.quantile(1.0), 1000);
    }

    #[test]
    fn quantile_of_single_sample_is_that_sample() {
        let reg = Registry::new();
        reg.histogram("v").record(777);
        let hs = reg.snapshot().histograms["v"].clone();
        assert_eq!(hs.p50(), 777);
        assert_eq!(hs.p99(), 777);
    }

    #[test]
    fn quantile_handles_top_bucket_without_overflow() {
        let hs = HistogramSnapshot {
            count: 2,
            sum: u64::MAX,
            min: u64::MAX - 1,
            max: u64::MAX,
            buckets: vec![(64, 2)],
        };
        assert_eq!(hs.p99(), u64::MAX);
    }

    #[test]
    fn histogram_merge_matches_recording_together() {
        let both = Registry::new();
        let a = Registry::new();
        let b = Registry::new();
        for v in [1u64, 5, 9, 100] {
            a.histogram("h").record(v);
            both.histogram("h").record(v);
        }
        for v in [2u64, 5, 4000] {
            b.histogram("h").record(v);
            both.histogram("h").record(v);
        }
        let mut merged = a.snapshot().histograms["h"].clone();
        merged.merge(&b.snapshot().histograms["h"]);
        assert_eq!(merged, both.snapshot().histograms["h"]);
        // Merging an empty histogram in either direction is identity.
        let mut with_empty = merged.clone();
        with_empty.merge(&HistogramSnapshot::default());
        assert_eq!(with_empty, merged);
        let mut from_empty = HistogramSnapshot::default();
        from_empty.merge(&merged);
        assert_eq!(from_empty, merged);
    }

    #[test]
    fn snapshot_merge_sums_counters_and_histograms() {
        let a_reg = Registry::new();
        a_reg.counter("c").add(3);
        a_reg.histogram("h").record(10);
        let b_reg = Registry::new();
        b_reg.counter("c").add(4);
        b_reg.counter("only_b").add(1);
        b_reg.histogram("h").record(20);
        let mut merged = a_reg.snapshot();
        merged.merge(&b_reg.snapshot());
        assert_eq!(merged.counter("c"), 7);
        assert_eq!(merged.counter("only_b"), 1);
        assert_eq!(merged.histograms["h"].count, 2);
        assert_eq!(merged.histograms["h"].sum, 30);
    }

    #[test]
    fn render_text_includes_quantiles() {
        let text = sample().render_text();
        for col in ["p50=", "p95=", "p99="] {
            assert!(text.contains(col), "missing {col} in:\n{text}");
        }
    }

    #[test]
    fn malformed_json_is_rejected() {
        for bad in [
            "",
            "{",
            "[1,2]",
            "{\"counters\":{\"x\":-1}}",
            "{\"counters\":{\"x\":1.5}}",
            "{\"histograms\":{\"h\":{\"count\":1}}}",
            "{\"histograms\":{\"h\":{\"count\":1,\"sum\":2,\"min\":3,\"max\":4,\"buckets\":[[1]]}}}",
        ] {
            assert!(Snapshot::from_json(bad).is_err(), "accepted: {bad}");
        }
    }
}
