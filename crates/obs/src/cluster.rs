//! Cross-rank metric aggregation: per-rank [`Snapshot`]s combined into
//! one [`ClusterSnapshot`] with skew statistics per metric.
//!
//! `minimpi` worlds give each rank its own child registry; gathering
//! the per-rank snapshots to rank 0 (see `Comm::try_cluster_snapshot`)
//! yields a cluster view that keeps the per-rank breakdown *and*
//! derives min/mean/max and an **imbalance ratio** per metric:
//!
//! ```text
//! imbalance(name) = max over ranks / mean over ranks   (1.0 = balanced)
//! ```
//!
//! Ranks missing a metric count as 0 — a metric only one of four ranks
//! touched has imbalance 4.0, which is exactly the skew a scheduler
//! needs to see. [`ClusterSnapshot::merge`] is associative and
//! commutative (rank-keyed union, colliding ranks merged via
//! [`Snapshot::merge`]), so partial gathers from chaos worlds or HAEE
//! hybrid runs aggregate identically regardless of arrival order.

use crate::json::{self, JsonValue, JsonWriter, ParseError};
use crate::snapshot::{format_ns, Snapshot};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// Per-rank snapshots, keyed by rank id.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ClusterSnapshot {
    pub ranks: BTreeMap<u32, Snapshot>,
}

/// Distribution of one metric across the ranks of a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricStats {
    pub min: u64,
    pub max: u64,
    pub sum: u64,
    /// Number of ranks the statistic spans (including zero-valued).
    pub ranks: u32,
}

impl MetricStats {
    /// Mean value per rank, or 0 for an empty cluster.
    pub fn mean(&self) -> f64 {
        if self.ranks == 0 {
            0.0
        } else {
            self.sum as f64 / f64::from(self.ranks)
        }
    }

    /// `max / mean` across ranks: 1.0 is perfectly balanced, `ranks`
    /// is maximally skewed (all load on one rank). Defined as 1.0 when
    /// every rank reports zero.
    pub fn imbalance(&self) -> f64 {
        let mean = self.mean();
        if mean == 0.0 {
            1.0
        } else {
            self.max as f64 / mean
        }
    }
}

impl ClusterSnapshot {
    /// Empty cluster.
    pub fn new() -> ClusterSnapshot {
        ClusterSnapshot::default()
    }

    /// Adopt gathered snapshots in rank order (index = rank id), the
    /// shape `minimpi::try_gather` delivers at the root.
    pub fn from_gathered(snaps: Vec<Snapshot>) -> ClusterSnapshot {
        let mut cluster = ClusterSnapshot::new();
        for (rank, snap) in snaps.into_iter().enumerate() {
            cluster.insert(rank as u32, snap);
        }
        cluster
    }

    /// Add one rank's snapshot; if the rank is already present the two
    /// snapshots merge (see [`Snapshot::merge`]).
    pub fn insert(&mut self, rank: u32, snap: Snapshot) {
        match self.ranks.entry(rank) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(snap);
            }
            std::collections::btree_map::Entry::Occupied(mut e) => {
                e.get_mut().merge(&snap);
            }
        }
    }

    /// Union with `other`. Associative and commutative.
    pub fn merge(&mut self, other: &ClusterSnapshot) {
        for (rank, snap) in &other.ranks {
            self.insert(*rank, snap.clone());
        }
    }

    /// Number of ranks represented.
    pub fn size(&self) -> usize {
        self.ranks.len()
    }

    /// One snapshot with every rank's metrics merged together.
    pub fn aggregate(&self) -> Snapshot {
        let mut total = Snapshot::default();
        for snap in self.ranks.values() {
            total.merge(snap);
        }
        total
    }

    /// Distribution of counter `name` across all ranks (missing = 0),
    /// or `None` for an empty cluster.
    pub fn counter_stats(&self, name: &str) -> Option<MetricStats> {
        self.stats(|snap| snap.counter(name))
    }

    /// Distribution of histogram `name`'s total (sum of samples)
    /// across all ranks (missing = 0), or `None` for an empty cluster.
    pub fn histogram_sum_stats(&self, name: &str) -> Option<MetricStats> {
        self.stats(|snap| snap.histogram_sum(name))
    }

    fn stats(&self, value: impl Fn(&Snapshot) -> u64) -> Option<MetricStats> {
        if self.ranks.is_empty() {
            return None;
        }
        let mut stats = MetricStats {
            min: u64::MAX,
            max: 0,
            sum: 0,
            ranks: self.ranks.len() as u32,
        };
        for snap in self.ranks.values() {
            let v = value(snap);
            stats.min = stats.min.min(v);
            stats.max = stats.max.max(v);
            stats.sum = stats.sum.saturating_add(v);
        }
        Some(stats)
    }

    /// Every counter name appearing on any rank.
    pub fn counter_names(&self) -> BTreeSet<&str> {
        self.ranks
            .values()
            .flat_map(|s| s.counters.keys().map(String::as_str))
            .collect()
    }

    /// Every histogram name appearing on any rank.
    pub fn histogram_names(&self) -> BTreeSet<&str> {
        self.ranks
            .values()
            .flat_map(|s| s.histograms.keys().map(String::as_str))
            .collect()
    }

    /// Serialize to a single-line JSON object with one section per
    /// rank: `{"ranks":{"0":{...},"1":{...}}}`. Integer-exact
    /// round-trip via [`ClusterSnapshot::from_json`]; derived floats
    /// (mean, imbalance) are intentionally not serialized — recompute
    /// them from the exact per-rank values.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::with_capacity(256 * self.ranks.len().max(1));
        w.begin_object();
        self.write_json(&mut w);
        w.end_object();
        w.finish()
    }

    /// Write this cluster's `ranks` key into an already-open object on
    /// `w` (shared by [`ClusterSnapshot::to_json`] and
    /// [`Snapshot::to_json_with_cluster`]).
    pub(crate) fn write_json(&self, w: &mut JsonWriter) {
        w.key("ranks");
        w.begin_object();
        for (rank, snap) in &self.ranks {
            w.key(&rank.to_string());
            w.begin_object();
            snap.write_json(w);
            w.end_object();
        }
        w.end_object();
    }

    /// Parse a document produced by [`ClusterSnapshot::to_json`], or a
    /// combined metrics document ([`Snapshot::to_json_with_cluster`])
    /// whose cluster section lives under a top-level `cluster` key.
    pub fn from_json(text: &str) -> Result<ClusterSnapshot, ParseError> {
        let root = json::parse(text)?;
        let JsonValue::Object(root) = root else {
            return Err(ParseError::new("cluster: expected top-level object"));
        };
        let root = match root.get("cluster") {
            Some(JsonValue::Object(nested)) => nested,
            Some(_) => return Err(ParseError::new("cluster: `cluster` must be an object")),
            None => &root,
        };
        let Some(JsonValue::Object(ranks)) = root.get("ranks") else {
            return Err(ParseError::new("cluster: missing `ranks` object"));
        };
        let mut cluster = ClusterSnapshot::new();
        for (key, value) in ranks {
            let rank: u32 = key
                .parse()
                .map_err(|_| ParseError::new(format!("cluster: bad rank key {key:?}")))?;
            cluster.insert(rank, Snapshot::from_value(value)?);
        }
        Ok(cluster)
    }

    /// Human-readable cluster report: per-metric min/mean/max across
    /// ranks with the imbalance ratio, counters first.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "cluster: {} rank(s)", self.ranks.len());
        let fmt_for = |name: &str, v: f64| -> String {
            if name.starts_with("span.") || name.ends_with("ns") {
                format_ns(v)
            } else {
                format!("{v:.0}")
            }
        };
        let counters = self.counter_names();
        if !counters.is_empty() {
            out.push_str("counters (per-rank min/mean/max, imbalance = max/mean):\n");
            let width = counters.iter().map(|k| k.len()).max().unwrap_or(0);
            for name in &counters {
                let s = self.counter_stats(name).expect("non-empty");
                let _ = writeln!(
                    out,
                    "  {name:<width$}  min={} mean={} max={} imbalance={:.2}x",
                    fmt_for(name, s.min as f64),
                    fmt_for(name, s.mean()),
                    fmt_for(name, s.max as f64),
                    s.imbalance(),
                );
            }
        }
        let histograms = self.histogram_names();
        if !histograms.is_empty() {
            out.push_str("histogram totals (per-rank min/mean/max, imbalance = max/mean):\n");
            let width = histograms.iter().map(|k| k.len()).max().unwrap_or(0);
            for name in &histograms {
                let s = self.histogram_sum_stats(name).expect("non-empty");
                let _ = writeln!(
                    out,
                    "  {name:<width$}  min={} mean={} max={} imbalance={:.2}x",
                    fmt_for(name, s.min as f64),
                    fmt_for(name, s.mean()),
                    fmt_for(name, s.max as f64),
                    s.imbalance(),
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn rank_snap(counter: u64, hist: u64) -> Snapshot {
        let reg = Registry::new();
        reg.counter("work.items").add(counter);
        if hist > 0 {
            reg.histogram("span.read").record(hist);
        }
        reg.snapshot()
    }

    fn sample_cluster() -> ClusterSnapshot {
        ClusterSnapshot::from_gathered(vec![
            rank_snap(10, 100),
            rank_snap(20, 200),
            rank_snap(30, 300),
            rank_snap(40, 400),
        ])
    }

    #[test]
    fn stats_and_imbalance() {
        let c = sample_cluster();
        let s = c.counter_stats("work.items").unwrap();
        assert_eq!((s.min, s.max, s.sum, s.ranks), (10, 40, 100, 4));
        assert!((s.mean() - 25.0).abs() < 1e-12);
        assert!((s.imbalance() - 1.6).abs() < 1e-12);
        let h = c.histogram_sum_stats("span.read").unwrap();
        assert_eq!((h.min, h.max, h.sum), (100, 400, 1000));
    }

    #[test]
    fn missing_metric_counts_as_zero() {
        let mut c = ClusterSnapshot::new();
        c.insert(0, rank_snap(8, 0));
        c.insert(1, Snapshot::default());
        c.insert(2, Snapshot::default());
        c.insert(3, Snapshot::default());
        let s = c.counter_stats("work.items").unwrap();
        assert_eq!((s.min, s.max), (0, 8));
        // All load on one of four ranks: maximal skew.
        assert!((s.imbalance() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn all_zero_metric_is_balanced() {
        let mut c = ClusterSnapshot::new();
        c.insert(0, Snapshot::default());
        c.insert(1, Snapshot::default());
        let s = c.counter_stats("absent").unwrap();
        assert_eq!(s.imbalance(), 1.0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn empty_cluster_has_no_stats() {
        let c = ClusterSnapshot::new();
        assert!(c.counter_stats("x").is_none());
        assert!(c.histogram_sum_stats("x").is_none());
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let mut a = ClusterSnapshot::new();
        a.insert(0, rank_snap(1, 10));
        a.insert(1, rank_snap(2, 20));
        let mut b = ClusterSnapshot::new();
        b.insert(1, rank_snap(3, 30)); // collides with a's rank 1
        b.insert(2, rank_snap(4, 40));
        let mut c = ClusterSnapshot::new();
        c.insert(0, rank_snap(5, 50)); // collides with a's rank 0
        c.insert(3, rank_snap(6, 60));

        // (a ∪ b) ∪ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ∪ (b ∪ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);

        // a ∪ b == b ∪ a
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);

        // Colliding ranks actually merged, not overwritten.
        assert_eq!(ab.ranks[&1].counter("work.items"), 5);
        assert_eq!(left.ranks[&0].counter("work.items"), 6);
    }

    #[test]
    fn aggregate_equals_merging_every_rank() {
        let c = sample_cluster();
        let total = c.aggregate();
        assert_eq!(total.counter("work.items"), 100);
        assert_eq!(total.histograms["span.read"].count, 4);
        assert_eq!(total.histograms["span.read"].sum, 1000);
    }

    #[test]
    fn json_round_trip_is_exact() {
        let c = sample_cluster();
        let json = c.to_json();
        assert!(json.starts_with("{\"ranks\":{\"0\":{\"counters\":"));
        assert_eq!(ClusterSnapshot::from_json(&json).unwrap(), c);
        let empty = ClusterSnapshot::new();
        assert_eq!(ClusterSnapshot::from_json(&empty.to_json()).unwrap(), empty);
    }

    #[test]
    fn render_text_reports_imbalance() {
        let text = sample_cluster().render_text();
        assert!(text.contains("cluster: 4 rank(s)"));
        assert!(text.contains("work.items"));
        assert!(text.contains("imbalance=1.60x"), "got:\n{text}");
    }

    #[test]
    fn combined_metrics_document_serves_both_parsers() {
        let cluster = sample_cluster();
        let world = cluster.aggregate();
        let combined = world.to_json_with_cluster(&cluster);
        assert!(combined.starts_with("{\"counters\":"));
        assert!(combined.contains("\"cluster\":{\"ranks\":{\"0\":"));
        // The flat parser ignores the cluster key; the cluster parser
        // descends into it. Both recover their half exactly.
        assert_eq!(Snapshot::from_json(&combined).unwrap(), world);
        assert_eq!(ClusterSnapshot::from_json(&combined).unwrap(), cluster);
    }

    #[test]
    fn malformed_json_is_rejected() {
        for bad in ["", "[]", "{\"ranks\":[]}", "{\"ranks\":{\"x\":{}}}"] {
            assert!(ClusterSnapshot::from_json(bad).is_err(), "accepted {bad:?}");
        }
    }
}
