//! Observability for the DASSA workspace: named counters, histograms,
//! and span timers, exportable as JSON or human-readable text.
//!
//! The design goals, in order:
//!
//! 1. **Zero dependencies, near-zero overhead.** Counters are plain
//!    relaxed atomics; a histogram record is two atomic adds and two
//!    compare-exchange loops. Nothing allocates on the hot path once a
//!    handle exists.
//! 2. **Thread safety without coordination.** Handles are cheap clones
//!    of `Arc`s; any thread may record through any handle concurrently.
//! 3. **Isolation with aggregation.** A [`Registry`] may have a parent:
//!    increments recorded in a child also land in the parent under the
//!    same name. `minimpi` gives each world a child of the global
//!    registry, so concurrently running tests observe only their own
//!    traffic while `das_pipeline --metrics` still sees everything.
//! 4. **Exact round-trips.** All recorded values are integers
//!    (nanoseconds, bytes, counts), so JSON export/import loses nothing.
//!
//! # Quick start
//!
//! ```
//! use obs::Registry;
//! use std::sync::Arc;
//!
//! let reg = Arc::new(Registry::new());
//! reg.counter("dasf.open.count").inc();
//! reg.histogram("dasf.read.bytes").record(4096);
//! {
//!     let _guard = obs::span_in(&reg, "pipeline.fft");
//!     // ... timed work; elapsed ns recorded on drop under
//!     // "span.pipeline.fft"
//! }
//! let snap = reg.snapshot();
//! assert_eq!(snap.counter("dasf.open.count"), 1);
//! let json = snap.to_json();
//! let back = obs::Snapshot::from_json(&json).unwrap();
//! assert_eq!(back, snap);
//! ```
//!
//! # Metric naming
//!
//! Dotted lowercase paths, `<crate>.<subsystem>.<quantity>`, with units
//! as the final segment where they matter: `minimpi.p2p.bytes`,
//! `dasf.open.ns`, `span.pipeline.interferometry.fft`. Span histograms
//! are always prefixed `span.` followed by the dotted nesting path of
//! active spans on that thread.

mod cluster;
pub mod flight;
pub mod json;
pub mod log;
mod registry;
pub mod series;
mod snapshot;
pub mod span;
pub mod trace;

pub use cluster::{ClusterSnapshot, MetricStats};
pub use log::{logger, Level, Record as LogRecord};
pub use registry::{global, Counter, Gauge, Histogram, Registry};
pub use series::{RateWindow, Sampler, SeriesRing};
pub use snapshot::{HistogramSnapshot, Snapshot};
pub use span::{span, span_in, SpanGuard};
pub use trace::{Trace, TraceEvent, Tracer};

pub use json::ParseError;
