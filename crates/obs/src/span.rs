//! Named span timers with per-thread nesting.
//!
//! A span measures the wall-clock time between [`span_in`] and the drop
//! of the returned [`SpanGuard`]. Spans nest per thread: opening
//! `"read"` inside `"pipeline.interferometry"` records into the
//! histogram `span.pipeline.interferometry.read`, so the exported
//! snapshot encodes the stage hierarchy in the metric names themselves.

use crate::registry::Registry;
use crate::trace::Tracer;
use std::cell::RefCell;
use std::sync::Arc;
use std::time::Instant;

/// Length of the `span.` metric prefix, stripped for timeline names.
const SPAN_PREFIX: usize = "span.".len();

thread_local! {
    /// Names of the spans currently open on this thread, outermost first.
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// Open a span on the global registry. See [`span_in`].
pub fn span(name: &str) -> SpanGuard {
    span_in(crate::registry::global(), name)
}

/// Dotted path of the spans currently open on this thread (outermost
/// first), or `None` when no span is open. The structured logger uses
/// this to stamp records with the span they were emitted from, so logs
/// and trace timelines correlate without explicit plumbing.
pub fn current_path() -> Option<String> {
    SPAN_STACK.with(|stack| {
        let stack = stack.borrow();
        if stack.is_empty() {
            None
        } else {
            Some(stack.join("."))
        }
    })
}

/// Open a named span recording into `registry` when dropped.
///
/// The histogram name is `span.` followed by the dotted path of every
/// span open on this thread, innermost last. If a [`Tracer`] is
/// installed on the registry (or an ancestor), matching Begin/End
/// timeline events are emitted under the dotted path (no `span.`
/// prefix), so instrumented sites appear in `--trace` output for free.
pub fn span_in(registry: &Arc<Registry>, name: &str) -> SpanGuard {
    let path = SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        stack.push(name.to_string());
        stack.join(".")
    });
    let metric = format!("span.{path}");
    let tracer = registry.tracer();
    if let Some(t) = &tracer {
        t.begin(&metric[SPAN_PREFIX..]);
    }
    SpanGuard {
        registry: Arc::clone(registry),
        metric,
        tracer,
        started: Instant::now(),
    }
}

/// Live span; records elapsed nanoseconds on drop.
///
/// Guards must drop in reverse creation order on a given thread (the
/// natural result of scoping them); dropping out of order would
/// mis-attribute the nesting path of spans opened afterwards.
pub struct SpanGuard {
    registry: Arc<Registry>,
    metric: String,
    tracer: Option<Arc<Tracer>>,
    started: Instant,
}

impl SpanGuard {
    /// The full metric name this span records to, e.g.
    /// `span.pipeline.interferometry.fft`.
    pub fn metric(&self) -> &str {
        &self.metric
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let elapsed = self.started.elapsed();
        if let Some(t) = &self.tracer {
            t.end(&self.metric[SPAN_PREFIX..]);
        }
        SPAN_STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
        self.registry
            .histogram(&self.metric)
            .record_duration(elapsed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn span_records_elapsed_time() {
        let reg = Arc::new(Registry::new());
        {
            let _g = span_in(&reg, "work");
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        let snap = reg.snapshot();
        let h = snap.histogram("span.work").expect("recorded");
        assert_eq!(h.count, 1);
        assert!(h.sum >= 4_000_000, "expected >=4ms, got {}ns", h.sum);
    }

    #[test]
    fn nested_spans_record_dotted_paths() {
        let reg = Arc::new(Registry::new());
        {
            let _outer = span_in(&reg, "pipeline");
            {
                let inner = span_in(&reg, "fft");
                assert_eq!(inner.metric(), "span.pipeline.fft");
            }
            {
                let _inner = span_in(&reg, "xcorr");
            }
        }
        // Sibling after the outer span closed: back to a root path.
        {
            let _g = span_in(&reg, "write");
        }
        let snap = reg.snapshot();
        for name in [
            "span.pipeline",
            "span.pipeline.fft",
            "span.pipeline.xcorr",
            "span.write",
        ] {
            assert_eq!(
                snap.histogram(name).map(|h| h.count),
                Some(1),
                "missing {name}"
            );
        }
    }

    #[test]
    fn nesting_is_per_thread() {
        let reg = Arc::new(Registry::new());
        let _outer = span_in(&reg, "main");
        let reg2 = Arc::clone(&reg);
        std::thread::spawn(move || {
            let g = span_in(&reg2, "worker");
            assert_eq!(g.metric(), "span.worker");
        })
        .join()
        .unwrap();
    }

    #[test]
    fn repeated_spans_accumulate() {
        let reg = Arc::new(Registry::new());
        for _ in 0..10 {
            let _g = span_in(&reg, "loop");
        }
        assert_eq!(reg.snapshot().histogram("span.loop").unwrap().count, 10);
    }
}
