//! Windowed time-series over a [`Registry`]: a background sampler that
//! snapshots the registry every N ms into a bounded ring, plus the
//! delta math that turns cumulative snapshots into per-window rates.
//!
//! The `obs` layer is cumulative by design — counters only grow, and a
//! one-shot snapshot answers "what happened since process start". An
//! operator watching a live daemon needs the derivative: requests *per
//! second*, bytes *per second*, the cache hit ratio *over the last few
//! seconds*. [`SeriesRing`] keeps the last `capacity` snapshots with
//! their sample times; [`SeriesRing::windows`] differentiates adjacent
//! pairs into [`RateWindow`]s:
//!
//! - **Counters** become integer milli-units/second
//!   (`delta * 1_000_000 / dt_ms`, saturating — a monotonic counter can
//!   never produce a negative rate). Milli-units keep the export inside
//!   the workspace's integer-only JSON dialect while preserving three
//!   decimal places.
//! - **Gauges** are level quantities; each window reports the level at
//!   the window's end (a trend sample, not a rate).
//! - **Histograms** subtract bucket-wise, yielding the sample count,
//!   sum, and quantile estimates *of that window alone* (quantiles are
//!   clamped to the cumulative `[min, max]`, the only extremes a
//!   mergeable histogram can remember).
//!
//! [`Sampler::start`] runs the loop on a background thread; the thread
//! meters itself (`obs.series.samples`, `obs.series.evicted`) into the
//! same registry it samples, so the telemetry pipeline is visible in
//! its own output.

use crate::json::JsonWriter;
use crate::snapshot::{HistogramSnapshot, Snapshot};
use crate::Registry;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One sampled point: a cumulative snapshot and when it was taken
/// (milliseconds since the ring's epoch).
#[derive(Debug, Clone)]
pub struct SeriesPoint {
    pub at_ms: u64,
    pub snapshot: Snapshot,
}

/// Rates and trend samples derived from two adjacent snapshots.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RateWindow {
    /// Window bounds, ms since the ring's epoch.
    pub t0_ms: u64,
    pub t1_ms: u64,
    /// Counter rates in milli-units per second (12.345/s → 12345),
    /// zero-delta counters omitted.
    pub rates_milli: BTreeMap<String, u64>,
    /// Gauge levels at the window's end (every known gauge).
    pub gauges: BTreeMap<String, u64>,
    /// Per-window histogram deltas (zero-count windows omitted).
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl RateWindow {
    /// Rate for `name` in milli-units/second, 0 if absent.
    pub fn rate_milli(&self, name: &str) -> u64 {
        self.rates_milli.get(name).copied().unwrap_or(0)
    }

    /// Rate for `name` in units/second as a float.
    pub fn rate(&self, name: &str) -> f64 {
        self.rate_milli(name) as f64 / 1000.0
    }

    /// Window length in milliseconds (at least 1 once derived).
    pub fn dt_ms(&self) -> u64 {
        self.t1_ms.saturating_sub(self.t0_ms)
    }
}

/// Bounded ring of [`SeriesPoint`]s; pushing past `capacity` evicts the
/// oldest. All derivation is pure — the ring never touches a registry.
#[derive(Debug)]
pub struct SeriesRing {
    capacity: usize,
    points: VecDeque<SeriesPoint>,
    evicted: u64,
}

impl SeriesRing {
    /// Ring holding at most `capacity` points (clamped to >= 2 so at
    /// least one window is always derivable at steady state).
    pub fn new(capacity: usize) -> SeriesRing {
        SeriesRing {
            capacity: capacity.max(2),
            points: VecDeque::new(),
            evicted: 0,
        }
    }

    /// Append a sample, evicting the oldest when full. Returns true if
    /// an eviction happened.
    pub fn push(&mut self, at_ms: u64, snapshot: Snapshot) -> bool {
        let mut evicted = false;
        while self.points.len() >= self.capacity {
            self.points.pop_front();
            self.evicted += 1;
            evicted = true;
        }
        self.points.push_back(SeriesPoint { at_ms, snapshot });
        evicted
    }

    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total points evicted since creation.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// The most recent sample, if any.
    pub fn latest_point(&self) -> Option<&SeriesPoint> {
        self.points.back()
    }

    /// Differentiate every adjacent pair of samples, oldest first.
    pub fn windows(&self) -> Vec<RateWindow> {
        self.points
            .iter()
            .zip(self.points.iter().skip(1))
            .map(|(a, b)| derive_window(a, b))
            .collect()
    }

    /// The most recent window, if two samples exist.
    pub fn latest_window(&self) -> Option<RateWindow> {
        let n = self.points.len();
        if n < 2 {
            return None;
        }
        Some(derive_window(&self.points[n - 2], &self.points[n - 1]))
    }

    /// JSON export of the windowed series:
    /// `{"points":N,"capacity":C,"evicted":E,"windows":[...]}` — each
    /// window carrying `t0_ms`/`t1_ms`, `rates_milli_per_sec`,
    /// `gauges`, and per-window histogram stats. Integer-only, so the
    /// document parses with [`crate::json::parse`].
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::with_capacity(1024);
        w.begin_object();
        w.key("points").uint(self.points.len() as u64);
        w.key("capacity").uint(self.capacity as u64);
        w.key("evicted").uint(self.evicted);
        w.key("windows");
        w.begin_array();
        for win in self.windows() {
            w.begin_object();
            w.key("t0_ms").uint(win.t0_ms);
            w.key("t1_ms").uint(win.t1_ms);
            w.key("rates_milli_per_sec");
            w.begin_object();
            for (k, v) in &win.rates_milli {
                w.key(k).uint(*v);
            }
            w.end_object();
            w.key("gauges");
            w.begin_object();
            for (k, v) in &win.gauges {
                w.key(k).uint(*v);
            }
            w.end_object();
            w.key("histograms");
            w.begin_object();
            for (k, h) in &win.histograms {
                w.key(k);
                w.begin_object();
                w.key("count").uint(h.count);
                w.key("sum").uint(h.sum);
                w.key("p50").uint(h.p50());
                w.key("p95").uint(h.p95());
                w.key("p99").uint(h.p99());
                w.end_object();
            }
            w.end_object();
            w.end_object();
        }
        w.end_array();
        w.end_object();
        w.finish()
    }
}

/// Differentiate two cumulative samples into one window. All counter
/// deltas saturate at zero: a restarted or reset registry can make a
/// later sample smaller, and a rate must never underflow to ~u64::MAX.
fn derive_window(a: &SeriesPoint, b: &SeriesPoint) -> RateWindow {
    let dt_ms = b.at_ms.saturating_sub(a.at_ms).max(1);
    let mut rates_milli = BTreeMap::new();
    for (name, &after) in &b.snapshot.counters {
        let before = a.snapshot.counter(name);
        let delta = after.saturating_sub(before);
        if delta > 0 {
            let milli = (delta as u128 * 1_000_000 / dt_ms as u128).min(u64::MAX as u128);
            rates_milli.insert(name.clone(), milli as u64);
        }
    }
    let mut histograms = BTreeMap::new();
    for (name, after) in &b.snapshot.histograms {
        let delta = match a.snapshot.histograms.get(name) {
            Some(before) => delta_histogram(before, after),
            None => after.clone(),
        };
        if delta.count > 0 {
            histograms.insert(name.clone(), delta);
        }
    }
    RateWindow {
        t0_ms: a.at_ms,
        t1_ms: b.at_ms,
        rates_milli,
        gauges: b.snapshot.gauges.clone(),
        histograms,
    }
}

/// Bucket-wise subtraction of cumulative histograms. The windowed
/// `min`/`max` are unrecoverable from cumulative extremes, so the
/// delta inherits the cumulative ones — quantiles stay clamped to a
/// range that certainly contains every windowed sample.
fn delta_histogram(before: &HistogramSnapshot, after: &HistogramSnapshot) -> HistogramSnapshot {
    let prior: BTreeMap<u32, u64> = before.buckets.iter().copied().collect();
    let buckets: Vec<(u32, u64)> = after
        .buckets
        .iter()
        .filter_map(|&(i, n)| {
            let d = n.saturating_sub(prior.get(&i).copied().unwrap_or(0));
            (d > 0).then_some((i, d))
        })
        .collect();
    HistogramSnapshot {
        count: after.count.saturating_sub(before.count),
        sum: after.sum.saturating_sub(before.sum),
        min: after.min,
        max: after.max,
        buckets,
    }
}

struct SamplerInner {
    ring: Mutex<SeriesRing>,
    stop: AtomicBool,
    registry: Arc<Registry>,
    epoch: Instant,
}

impl SamplerInner {
    fn sample(&self) {
        let at_ms = u64::try_from(self.epoch.elapsed().as_millis()).unwrap_or(u64::MAX);
        let snapshot = self.registry.snapshot();
        self.registry.counter("obs.series.samples").inc();
        let evicted = match self.ring.lock() {
            Ok(mut r) => r.push(at_ms, snapshot),
            Err(mut p) => p.get_mut().push(at_ms, snapshot),
        };
        if evicted {
            self.registry.counter("obs.series.evicted").inc();
        }
    }
}

/// Background sampler: snapshots `registry` every `interval` into a
/// bounded [`SeriesRing`]. Stops when dropped or via [`Sampler::stop`].
pub struct Sampler {
    inner: Arc<SamplerInner>,
    handle: Option<JoinHandle<()>>,
}

impl Sampler {
    /// Start sampling. The first sample is taken immediately, so one
    /// window exists after a single interval.
    pub fn start(registry: Arc<Registry>, interval: Duration, capacity: usize) -> Sampler {
        let inner = Arc::new(SamplerInner {
            ring: Mutex::new(SeriesRing::new(capacity)),
            stop: AtomicBool::new(false),
            registry,
            epoch: Instant::now(),
        });
        inner.sample();
        let worker = Arc::clone(&inner);
        let interval = interval.max(Duration::from_millis(1));
        let handle = std::thread::Builder::new()
            .name("obs-sampler".into())
            .spawn(move || {
                // Sleep in short slices so stop() returns promptly even
                // with multi-second intervals.
                let slice = interval.min(Duration::from_millis(25));
                let mut next = Instant::now() + interval;
                while !worker.stop.load(Ordering::Relaxed) {
                    std::thread::sleep(slice);
                    if Instant::now() >= next {
                        worker.sample();
                        next += interval;
                    }
                }
            })
            .expect("spawn obs-sampler");
        Sampler {
            inner,
            handle: Some(handle),
        }
    }

    /// Take an out-of-cadence sample right now (shutdown and flight
    /// paths use this so the final window reflects the last moments).
    pub fn sample_now(&self) {
        self.inner.sample();
    }

    /// Run `f` against the current ring.
    pub fn with_ring<T>(&self, f: impl FnOnce(&SeriesRing) -> T) -> T {
        match self.inner.ring.lock() {
            Ok(r) => f(&r),
            Err(p) => f(&p.into_inner()),
        }
    }

    /// JSON export of the current windowed series.
    pub fn to_json(&self) -> String {
        self.with_ring(|r| r.to_json())
    }

    /// The most recent derived window, if any.
    pub fn latest_window(&self) -> Option<RateWindow> {
        self.with_ring(|r| r.latest_window())
    }

    /// Stop the background thread and join it.
    pub fn stop(mut self) {
        self.inner.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.inner.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn snap_with(counter: u64, gauge: u64) -> Snapshot {
        let reg = Registry::new();
        reg.counter("req").add(counter);
        reg.gauge("depth").add(gauge);
        reg.snapshot()
    }

    #[test]
    fn rates_derive_from_deltas_not_totals() {
        let mut ring = SeriesRing::new(8);
        ring.push(0, snap_with(1000, 4));
        ring.push(500, snap_with(1250, 7));
        let w = ring.latest_window().unwrap();
        // 250 events over 0.5s = 500/s = 500_000 milli.
        assert_eq!(w.rate_milli("req"), 500_000);
        assert!((w.rate("req") - 500.0).abs() < 1e-9);
        assert_eq!(w.gauges["depth"], 7, "gauge is a trend sample");
    }

    #[test]
    fn counter_reset_yields_zero_rate_not_underflow() {
        let mut ring = SeriesRing::new(4);
        ring.push(0, snap_with(900, 0));
        ring.push(1000, snap_with(100, 0));
        let w = ring.latest_window().unwrap();
        assert_eq!(w.rate_milli("req"), 0);
    }

    #[test]
    fn ring_is_bounded_and_counts_evictions() {
        let mut ring = SeriesRing::new(3);
        for i in 0..10u64 {
            ring.push(i * 100, snap_with(i, 0));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.evicted(), 7);
        assert_eq!(ring.windows().len(), 2);
    }

    #[test]
    fn histogram_windows_subtract_bucketwise() {
        let reg = Registry::new();
        let h = reg.histogram("lat");
        h.record(10);
        h.record(10);
        let first = reg.snapshot();
        h.record(1000);
        let second = reg.snapshot();
        let mut ring = SeriesRing::new(4);
        ring.push(0, first);
        ring.push(1000, second);
        let w = ring.latest_window().unwrap();
        let d = &w.histograms["lat"];
        assert_eq!(d.count, 1);
        assert_eq!(d.sum, 1000);
        // Only the 1000-sample bucket survives the subtraction.
        assert_eq!(d.buckets.len(), 1);
        assert_eq!(d.p99(), 1000);
    }

    #[test]
    fn json_export_parses_and_carries_windows() {
        let mut ring = SeriesRing::new(4);
        ring.push(0, snap_with(0, 1));
        ring.push(250, snap_with(10, 2));
        let text = ring.to_json();
        assert!(json::parse(&text).is_ok(), "unparseable: {text}");
        assert!(text.contains("\"rates_milli_per_sec\""));
        assert!(text.contains("\"req\":40000"), "40/s expected: {text}");
    }

    #[test]
    fn sampler_collects_and_meters_itself() {
        let reg = Arc::new(Registry::new());
        reg.counter("work").add(5);
        let sampler = Sampler::start(Arc::clone(&reg), Duration::from_millis(5), 16);
        reg.counter("work").add(5);
        sampler.sample_now();
        let json_text = sampler.to_json();
        assert!(json::parse(&json_text).is_ok());
        assert!(sampler.with_ring(|r| r.len()) >= 2);
        sampler.stop();
        assert!(reg.snapshot().counter("obs.series.samples") >= 2);
    }

    #[test]
    fn zero_dt_windows_do_not_divide_by_zero() {
        let mut ring = SeriesRing::new(4);
        ring.push(100, snap_with(0, 0));
        ring.push(100, snap_with(7, 0));
        let w = ring.latest_window().unwrap();
        // dt clamps to 1ms: 7 events / 1ms = 7000/s.
        assert_eq!(w.rate_milli("req"), 7_000_000);
    }
}
