//! Property tests for the windowed time-series: under arbitrary
//! monotonic counter trajectories and arbitrary (even degenerate)
//! sample cadences, the delta ring must never report a negative rate,
//! must stay within its capacity bound, and its JSON export must stay
//! inside the workspace's integer-only dialect.

use obs::series::SeriesRing;
use obs::{Registry, Snapshot};
use proptest::prelude::*;

fn snapshot(counter: u64, gauge: u64, samples: &[u64]) -> Snapshot {
    let reg = Registry::new();
    if counter > 0 {
        reg.counter("c").add(counter);
    }
    reg.gauge("g").add(gauge);
    let h = reg.histogram("h");
    for &s in samples {
        h.record(s);
    }
    reg.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A monotonic counter sampled at arbitrary cadences (including
    /// repeated timestamps) never yields an underflowed rate: every
    /// derived rate is exactly `delta * 1e6 / dt_ms` and bounded by the
    /// delta over a 1 ms window.
    #[test]
    fn monotonic_counters_never_go_negative(
        capacity in 2usize..32,
        increments in prop::collection::vec((0u64..10_000, 1u64..5_000), 1..40),
    ) {
        let mut ring = SeriesRing::new(capacity);
        let mut total = 0u64;
        let mut at_ms = 0u64;
        let mut pushes = Vec::new();
        for &(delta, dt) in &increments {
            total += delta;
            at_ms += dt;
            ring.push(at_ms, snapshot(total, delta, &[]));
            pushes.push((at_ms, total));
        }
        for w in ring.windows() {
            prop_assert!(w.t1_ms >= w.t0_ms);
            let dt = w.dt_ms().max(1);
            // Reconstruct the exact expected rate from the push log.
            let before = pushes.iter().find(|p| p.0 == w.t0_ms).unwrap().1;
            let after = pushes.iter().find(|p| p.0 == w.t1_ms).unwrap().1;
            let expect = (after - before) as u128 * 1_000_000 / dt as u128;
            prop_assert_eq!(u128::from(w.rate_milli("c")), expect);
            prop_assert!(w.rate("c") >= 0.0);
        }
    }

    /// The ring never exceeds its capacity, evictions are accounted
    /// exactly, and window count tracks retained points, under any
    /// push pattern.
    #[test]
    fn ring_bounded_under_arbitrary_cadence(
        capacity in 2usize..16,
        cadence in prop::collection::vec(0u64..1_000, 0..64),
    ) {
        let mut ring = SeriesRing::new(capacity);
        let mut at_ms = 0u64;
        for (i, &dt) in cadence.iter().enumerate() {
            at_ms += dt;
            ring.push(at_ms, snapshot(i as u64, 0, &[i as u64]));
            prop_assert!(ring.len() <= ring.capacity());
        }
        let expected_len = cadence.len().min(capacity);
        prop_assert_eq!(ring.len(), expected_len);
        prop_assert_eq!(ring.evicted(), (cadence.len() - expected_len) as u64);
        prop_assert_eq!(ring.windows().len(), expected_len.saturating_sub(1));
    }

    /// Counter resets (a non-monotonic wobble, e.g. a registry reset
    /// under test) clamp to zero instead of wrapping to ~u64::MAX.
    #[test]
    fn resets_clamp_to_zero(
        values in prop::collection::vec(0u64..1_000_000, 2..20),
    ) {
        let mut ring = SeriesRing::new(values.len());
        for (i, &v) in values.iter().enumerate() {
            ring.push(i as u64 * 100, snapshot(v, 0, &[]));
        }
        for w in ring.windows() {
            prop_assert!(w.rate_milli("c") < u64::MAX / 2, "wrapped: {:?}", w);
        }
    }

    /// JSON export always parses with the strict integer-only parser,
    /// and windowed histogram counts equal the per-window sample counts.
    #[test]
    fn export_parses_and_histogram_windows_add_up(
        batches in prop::collection::vec(
            prop::collection::vec(0u64..1_000_000_000, 0..8),
            2..10,
        ),
    ) {
        let reg = Registry::new();
        let h = reg.histogram("h");
        let mut ring = SeriesRing::new(batches.len());
        ring.push(0, reg.snapshot());
        for (i, batch) in batches.iter().enumerate() {
            for &s in batch {
                h.record(s);
            }
            ring.push((i as u64 + 1) * 50, reg.snapshot());
        }
        prop_assert!(obs::json::parse(&ring.to_json()).is_ok());
        let windows = ring.windows();
        // The first retained window may straddle evicted history; all
        // others must match their batch exactly.
        for (w, batch) in windows.iter().rev().zip(batches.iter().rev()) {
            let count = w.histograms.get("h").map_or(0, |d| d.count);
            prop_assert_eq!(count, batch.len() as u64);
            let sum = w.histograms.get("h").map_or(0, |d| d.sum);
            prop_assert_eq!(sum, batch.iter().sum::<u64>());
        }
    }
}
