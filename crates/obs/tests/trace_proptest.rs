//! Property tests for the trace ring buffers: arbitrary thread counts,
//! per-thread event counts, and ring capacities must never tear an
//! event, never lose one silently, and always account for drops
//! exactly.

use obs::trace::{Phase, Tracer};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// N threads each push `events` events through their own ring.
    /// Afterwards: per-thread stored counts are `min(events, capacity)`,
    /// the drop counter is exactly the overflow, stored events are the
    /// *earliest* of each thread in order, and every event is intact
    /// (name matches its sequence number, value matches, rank matches).
    #[test]
    fn no_torn_events_and_exact_drop_accounting(
        threads in 1usize..6,
        events in 0usize..300,
        capacity in 1usize..128,
    ) {
        let tracer = Arc::new(Tracer::with_capacity(capacity));
        std::thread::scope(|s| {
            for t in 0..threads {
                let tracer = Arc::clone(&tracer);
                s.spawn(move || {
                    obs::trace::set_rank(t as u32);
                    for i in 0..events {
                        tracer.sample(&format!("t{t}.e{i}"), (t * 1_000_000 + i) as u64);
                    }
                });
            }
        });
        let trace = tracer.collect();

        let stored_per_thread = events.min(capacity);
        let dropped_per_thread = events - stored_per_thread;
        prop_assert_eq!(trace.events.len(), threads * stored_per_thread);
        prop_assert_eq!(trace.dropped, (threads * dropped_per_thread) as u64);
        prop_assert_eq!(tracer.dropped(), trace.dropped);

        // Group by rank (== spawning thread): each group must hold the
        // earliest `stored_per_thread` events, in push order, untorn.
        let mut by_rank: BTreeMap<u32, Vec<&obs::TraceEvent>> = BTreeMap::new();
        for ev in &trace.events {
            prop_assert_eq!(ev.phase, Phase::Counter);
            by_rank.entry(ev.rank).or_default().push(ev);
        }
        if stored_per_thread > 0 {
            prop_assert_eq!(by_rank.len(), threads);
        }
        for (rank, evs) in by_rank {
            prop_assert_eq!(evs.len(), stored_per_thread);
            for (i, ev) in evs.iter().enumerate() {
                prop_assert_eq!(ev.name.clone(), format!("t{rank}.e{i}"));
                prop_assert_eq!(ev.value, u64::from(rank) * 1_000_000 + i as u64);
            }
            // Timestamps are monotone within a thread.
            for w in evs.windows(2) {
                prop_assert!(w[0].ts_ns <= w[1].ts_ns);
            }
        }
    }

    /// Readers racing the writers observe only complete events: every
    /// event read mid-flight has a self-consistent (name, value) pair.
    #[test]
    fn concurrent_collect_sees_only_complete_events(
        events in 1usize..400,
        collects in 1usize..8,
    ) {
        let tracer = Arc::new(Tracer::with_capacity(events));
        std::thread::scope(|s| {
            let writer = Arc::clone(&tracer);
            s.spawn(move || {
                for i in 0..events {
                    writer.sample(&format!("e{i}"), i as u64 * 3);
                }
            });
            for _ in 0..collects {
                let reader = Arc::clone(&tracer);
                s.spawn(move || {
                    let trace = reader.collect();
                    for ev in &trace.events {
                        assert_eq!(ev.name, format!("e{}", ev.value / 3));
                        assert_eq!(ev.value % 3, 0);
                    }
                });
            }
        });
        let final_trace = tracer.collect();
        prop_assert_eq!(final_trace.events.len(), events);
        prop_assert_eq!(final_trace.dropped, 0);
    }

    /// Chrome-JSON export is a lossless codec for arbitrary traces,
    /// including overflowed ones.
    #[test]
    fn chrome_json_round_trips_random_traces(
        events in 0usize..200,
        capacity in 1usize..64,
        seed in any::<u64>(),
    ) {
        let tracer = Tracer::with_capacity(capacity);
        obs::trace::set_rank((seed % 7) as u32);
        for i in 0..events {
            match (seed.wrapping_add(i as u64)) % 4 {
                0 => tracer.begin(&format!("span{i}")),
                1 => tracer.end(&format!("span{i}")),
                2 => tracer.instant(&format!("mark \"{i}\"\n")),
                _ => tracer.sample("bytes", seed.wrapping_mul(i as u64)),
            }
        }
        obs::trace::set_rank(0);
        let trace = tracer.collect();
        let back = obs::Trace::from_chrome_json(&trace.to_chrome_json()).unwrap();
        prop_assert_eq!(back, trace);
    }
}
