//! End-to-end integrity guarantees of the `DASF0004` format.
//!
//! Four families of tests back the acceptance criteria of the v4
//! design:
//!
//! 1. **Compatibility** — pinned golden v2 and v3 fixtures
//!    (byte-for-byte the output of the `DASF0002` / `DASF0003` writers)
//!    still open and read, and v4 round-trips are bit-exact and
//!    deterministic.
//! 2. **Corruption** — flipping a byte *anywhere* in a v4 file (magic,
//!    superblock, payload, object table, commit record) is detected as
//!    `BadMagic` / `Truncated` / `ChecksumMismatch`; never silently
//!    wrong data. The sweep runs over both an uncompressed and a
//!    codec-compressed corpus: checksums cover the stored bytes, so
//!    compression must not change what corruption looks like.
//! 3. **Crash shapes** — truncating a v4 file at every possible length
//!    (a SIGKILL mid-`finish`) is always detected at open, and an
//!    aborted writer leaves nothing behind. Also swept over a
//!    compressed corpus.
//! 4. **Codec round-trips** — a shuffle-lz file decodes bit-exactly to
//!    the written payload, and a quant file reconstructs every sample
//!    within its error bound.

use dasf::{Codec, DasfError, File, Value, Version, Writer};
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("dasf-integrity-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn unhex(s: &str) -> Vec<u8> {
    s.as_bytes()
        .chunks(2)
        .map(|p| u8::from_str_radix(std::str::from_utf8(p).unwrap(), 16).unwrap())
        .collect()
}

/// A complete `DASF0002` file produced by the v2 writer before the v3
/// format change: root attrs, one contiguous f32 dataset under a group,
/// and one chunked f64 dataset. Pinned as raw bytes so the v2 *decoder*
/// is what keeps it readable, not the current writer.
const GOLDEN_V2_HEX: &str = "4441534630303032ac00000000000000000040c0000020c0000000c00000c0bf000080bf000000bf000000000000003f0000803f0000c03f00000040000020400000404000006040000080400000000000000000000000000000f03f0000000000003040000000000000394000000000000010400000000000002240000000000000424000000000008048400000000000005040000000000040544000000000000059400000000000405e400105000000110000004e756d626572206f66206f626a65637473020300000000000000190000004e756d626572206f662072617720646174612076616c7565730205000000000000001500000053616d706c696e674672657175656e637928485a2902f401000000000000140000005370617469616c5265736f6c7574696f6e286d290300000000000000401700000054696d655374616d702879796d6d646468686d6d737329010c000000313730373238323234353130020000000b0000004d6561737572656d656e7401000000000100000004000000646174610201020000000300000000000000050000000000000010000000000000000100000000070000006368756e6b6564020202000000030000000000000004000000000000004c00000000000000020200000002000000000000000200000000000000040000004c000000000000006c000000000000008c000000000000009c0000000000000000000000";

/// A complete `DASF0003` file (checksums, no codec stage) captured from
/// the v3 writer before the v4 format change — same logical content as
/// the v2 fixture. Proves compressed-era readers keep decoding the
/// checksummed-but-uncompressed generation byte-for-byte.
const GOLDEN_V3_HEX: &str = "4441534630303033ac00000000000000000040c0000020c0000000c00000c0bf000080bf000000bf000000000000003f0000803f0000c03f00000040000020400000404000006040000080400000000000000000000000000000f03f0000000000003040000000000000394000000000000010400000000000002240000000000000424000000000008048400000000000005040000000000040544000000000000059400000000000405e4001030000001500000053616d706c696e674672657175656e637928485a2902f401000000000000140000005370617469616c5265736f6c7574696f6e286d290300000000000000401700000054696d655374616d702879796d6d646468686d6d737329010c000000313730373238323234353130020000000b0000004d6561737572656d656e7401000000000100000004000000646174610201020000000300000000000000050000000000000010000000000000000101000000dcb1481100000000070000006368756e6b6564020202000000030000000000000004000000000000004c00000000000000020200000002000000000000000200000000000000040000004c000000000000006c000000000000008c000000000000009c00000000000000040000006fa1be7f443d7d68d50b4e2b2868931c00000000ac000000000000003d01000000000000b82640f9fc84bf2b4441534633454e44";

/// The logical content of the golden fixtures (and of the v4 files the
/// tests below write): what the v2 writer was fed when it was pinned.
fn expected_f32() -> Vec<f32> {
    (0..15).map(|i| i as f32 * 0.5 - 3.0).collect()
}

fn expected_f64() -> Vec<f64> {
    (0..12).map(|i| (i * i) as f64).collect()
}

fn write_sample_versioned(name: &str, version: Version) -> PathBuf {
    let p = tmp(name);
    let mut w = Writer::create_versioned(&p, version).unwrap();
    w.set_attr("/", "SamplingFrequency(HZ)", Value::Int(500))
        .unwrap();
    w.set_attr("/", "SpatialResolution(m)", Value::Float(2.0))
        .unwrap();
    w.set_attr(
        "/",
        "TimeStamp(yymmddhhmmss)",
        Value::Str("170728224510".into()),
    )
    .unwrap();
    w.create_group("/Measurement").unwrap();
    w.write_dataset_f32("/Measurement/data", &[3, 5], &expected_f32())
        .unwrap();
    w.write_dataset_chunked("/chunked", &[3, 4], &[2, 2], &expected_f64())
        .unwrap();
    w.finish().unwrap();
    p
}

fn write_v4_sample(name: &str) -> PathBuf {
    write_sample_versioned(name, Version::V4)
}

/// Content of the compressed corpus: runs of repeated samples, the
/// shape byte-shuffle + LZ is built for. Big enough that the contiguous
/// dataset spans two verify units (> 64 KiB of raw payload).
fn compressible_f32() -> Vec<f32> {
    (0..20_480).map(|i| (i >> 5) as f32 * 0.25).collect()
}

fn compressible_f64() -> Vec<f64> {
    (0..16 * 16).map(|i| (i % 16) as f64 * 0.5).collect()
}

/// A v4 file written through a non-raw codec, with the same dataset
/// paths/types as the golden samples so `deep_read` applies unchanged.
fn write_v4_compressed(name: &str, codec: Codec) -> PathBuf {
    let p = tmp(name);
    let mut w = Writer::create(&p).unwrap();
    w.set_codec(codec).unwrap();
    w.create_group("/Measurement").unwrap();
    w.write_dataset_f32("/Measurement/data", &[2, 10_240], &compressible_f32())
        .unwrap();
    w.write_dataset_chunked("/chunked", &[16, 16], &[8, 8], &compressible_f64())
        .unwrap();
    w.finish().unwrap();
    p
}

// ---------------------------------------------------------------------
// 1. Compatibility
// ---------------------------------------------------------------------

#[test]
fn golden_v2_fixture_still_opens_and_reads() {
    let p = tmp("golden_v2.dasf");
    std::fs::write(&p, unhex(GOLDEN_V2_HEX)).unwrap();
    let f = File::open(&p).unwrap();
    assert_eq!(f.version(), Version::V2);
    assert_eq!(
        f.attr("/", "SamplingFrequency(HZ)")
            .and_then(|v| v.as_int()),
        Some(500)
    );
    assert_eq!(
        f.attr("/", "TimeStamp(yymmddhhmmss)")
            .and_then(|v| v.as_str()),
        Some("170728224510")
    );
    assert_eq!(f.read_f32("/Measurement/data").unwrap(), expected_f32());
    assert_eq!(f.read_f64("/chunked").unwrap(), expected_f64());
    // Hyperslabs work unverified on v2 too.
    assert_eq!(
        f.read_hyperslab_f32("/Measurement/data", &[(1, 1), (2, 2)])
            .unwrap(),
        vec![expected_f32()[7], expected_f32()[8]]
    );
    // A v2 file has no checksums: the scrub reports it unverified, not
    // corrupt.
    let v = f.verify_all().unwrap();
    assert!(v.is_clean());
    assert_eq!(v.datasets, 2);
    assert_eq!(v.unverified_datasets, 2);
    assert_eq!(v.chunks_verified, 0);
}

#[test]
fn golden_v3_fixture_still_opens_verifies_and_reads() {
    let p = tmp("golden_v3.dasf");
    std::fs::write(&p, unhex(GOLDEN_V3_HEX)).unwrap();
    let f = File::open(&p).unwrap();
    assert_eq!(f.version(), Version::V3);
    assert_eq!(f.read_f32("/Measurement/data").unwrap(), expected_f32());
    assert_eq!(f.read_f64("/chunked").unwrap(), expected_f64());
    assert_eq!(
        f.attr("/", "SpatialResolution(m)")
            .and_then(|v| v.as_float()),
        Some(2.0)
    );
    // Its v3 checksums still verify clean through the v4 reader.
    let v = f.verify_all().unwrap();
    assert!(v.is_clean());
    assert_eq!(v.chunks_verified, 5);
    assert_eq!(v.unverified_datasets, 0);
    // No dataset carries codec headers.
    for path in f.dataset_paths() {
        assert!(!f.dataset(&path).unwrap().is_compressed());
    }
}

#[test]
fn v3_writer_output_matches_the_pinned_fixture() {
    // The compat writer (`create_versioned(V3)`) must keep producing
    // exactly the bytes the real v3 writer produced when the fixture
    // was pinned — byte-identical back-compat writes, not just reads.
    let p = write_sample_versioned("golden_v3_rewrite.dasf", Version::V3);
    assert_eq!(std::fs::read(&p).unwrap(), unhex(GOLDEN_V3_HEX));
}

#[test]
fn v4_round_trip_is_bit_exact_and_deterministic() {
    let p1 = write_v4_sample("rt1.dasf");
    let p2 = write_v4_sample("rt2.dasf");
    let b1 = std::fs::read(&p1).unwrap();
    let b2 = std::fs::read(&p2).unwrap();
    assert_eq!(b1, b2, "same logical content must serialize identically");
    assert_eq!(&b1[..8], b"DASF0004");
    assert_eq!(&b1[b1.len() - 8..], b"DASF4END");

    let f = File::open(&p1).unwrap();
    assert_eq!(f.version(), Version::V4);
    assert_eq!(f.read_f32("/Measurement/data").unwrap(), expected_f32());
    assert_eq!(f.read_f64("/chunked").unwrap(), expected_f64());
    assert_eq!(
        f.attr("/", "SpatialResolution(m)")
            .and_then(|v| v.as_float()),
        Some(2.0)
    );
    let v = f.verify_all().unwrap();
    assert!(v.is_clean());
    assert_eq!(v.datasets, 2);
    assert_eq!(v.unverified_datasets, 0);
    // 1 contiguous unit + 4 storage chunks.
    assert_eq!(v.chunks_verified, 5);
}

#[test]
fn default_codec_payload_matches_v3_layout() {
    // A raw-codec v4 file keeps its *payload region* byte-identical to
    // its v3 twin — same offsets, same stored bytes, same checksums —
    // which is what keeps fault-injection behaviour and pipeline
    // digests stable across the format bump. Only the magic and the
    // object table (a zero unit-header count per dataset, 4 bytes each)
    // differ.
    let p3 = write_sample_versioned("twin3.dasf", Version::V3);
    let p4 = write_v4_sample("twin4.dasf");
    let b3 = std::fs::read(&p3).unwrap();
    let b4 = std::fs::read(&p4).unwrap();
    let table_off = u64::from_le_bytes(b3[8..16].try_into().unwrap()) as usize;
    assert_eq!(b3[8..16], b4[8..16], "payload region must not move");
    assert_eq!(b3[16..table_off], b4[16..table_off]);
    // Two datasets → two empty unit-header counts.
    assert_eq!(b4.len(), b3.len() + 8);
}

// ---------------------------------------------------------------------
// 2. Corruption: every byte of every region
// ---------------------------------------------------------------------

/// Fully read a file: open, scrub, and decode every dataset. Any
/// integrity failure anywhere surfaces as `Err`.
fn deep_read(p: &std::path::Path) -> dasf::Result<()> {
    let f = File::open(p)?;
    let v = f.verify_all()?;
    if let Some(fault) = v.mismatches.first() {
        return Err(DasfError::ChecksumMismatch {
            path: p.display().to_string(),
            dataset: fault.dataset.clone(),
            chunk: fault.chunk,
        });
    }
    f.read_f32("/Measurement/data")?;
    f.read_f64("/chunked")?;
    Ok(())
}

/// Flip every byte of `clean`, writing each damaged copy to `target`,
/// and assert the damage is detected and classified by region.
fn sweep_flips(clean: &[u8], table_offset: u64, target: &std::path::Path) {
    let footer_start = clean.len() as u64 - 32;
    for i in 0..clean.len() {
        let mut bad = clean.to_vec();
        bad[i] ^= 0xA5;
        std::fs::write(target, &bad).unwrap();
        let err = deep_read(target).expect_err(&format!("flip at byte {i} went undetected"));
        let i64_ = i as u64;
        match i64_ {
            0..=7 => assert!(
                matches!(err, DasfError::BadMagic),
                "magic flip at {i}: {err}"
            ),
            8..=15 => assert!(
                matches!(err, DasfError::ChecksumMismatch { ref dataset, .. } if dataset == "(superblock)"),
                "superblock flip at {i}: {err}"
            ),
            _ if i64_ < table_offset => assert!(
                matches!(err, DasfError::ChecksumMismatch { ref dataset, .. } if dataset.starts_with('/')),
                "payload flip at {i}: {err}"
            ),
            _ if i64_ < footer_start => assert!(
                matches!(err, DasfError::ChecksumMismatch { ref dataset, .. } if dataset == "(object table)"),
                "table flip at {i}: {err}"
            ),
            _ => assert!(
                // Record prefix flips fail its CRC; commit-magic flips
                // look like a torn write. Both are detected.
                matches!(
                    err,
                    DasfError::Truncated | DasfError::ChecksumMismatch { .. }
                ),
                "footer flip at {i}: {err}"
            ),
        }
    }
}

#[test]
fn flipping_any_byte_is_detected() {
    let p = write_v4_sample("flip.dasf");
    let clean = std::fs::read(&p).unwrap();
    let f = File::open(&p).unwrap();
    let table_offset = 16 + f.data_region_bytes();
    drop(f);
    sweep_flips(&clean, table_offset, &tmp("flip_target.dasf"));
}

#[test]
fn flipping_any_byte_of_a_compressed_file_is_detected() {
    // Same sweep over a shuffle-lz corpus: the CRCs cover the stored
    // (compressed) bytes, so every flipped stored byte must fail its
    // checksum before any decode gets a chance to misbehave.
    let p = write_v4_compressed("flip_lz.dasf", Codec::ShuffleLz);
    let clean = std::fs::read(&p).unwrap();
    let f = File::open(&p).unwrap();
    let table_offset = 16 + f.data_region_bytes();
    // Sanity: the corpus really is compressed, else the sweep proves
    // nothing new.
    let meta = f.dataset("/Measurement/data").unwrap();
    assert!(meta.is_compressed());
    assert!(meta.stored_byte_len() < meta.byte_len() / 4);
    drop(f);
    sweep_flips(&clean, table_offset, &tmp("flip_lz_target.dasf"));
}

#[test]
fn payload_flip_is_attributed_to_the_right_chunk() {
    let p = write_v4_sample("attr_chunk.dasf");
    let mut bytes = std::fs::read(&p).unwrap();
    // Byte 20 sits in the first unit of /Measurement/data (payload
    // starts at 16).
    bytes[20] ^= 0xFF;
    let target = tmp("attr_chunk_bad.dasf");
    std::fs::write(&target, &bytes).unwrap();
    let f = File::open(&target).unwrap();
    match f.read_f32("/Measurement/data") {
        Err(DasfError::ChecksumMismatch { dataset, chunk, .. }) => {
            assert_eq!(dataset, "/Measurement/data");
            assert_eq!(chunk, 0);
        }
        other => panic!("expected ChecksumMismatch, got {other:?}"),
    }
    // The intact dataset still reads fine.
    assert_eq!(f.read_f64("/chunked").unwrap(), expected_f64());
    let v = f.verify_all().unwrap();
    assert_eq!(v.mismatches.len(), 1);
    assert_eq!(v.mismatches[0].dataset, "/Measurement/data");
}

// ---------------------------------------------------------------------
// 3. Crash shapes
// ---------------------------------------------------------------------

fn sweep_truncations(clean: &[u8], target: &std::path::Path) {
    for len in 0..clean.len() {
        std::fs::write(target, &clean[..len]).unwrap();
        match File::open(target) {
            Err(DasfError::Truncated) | Err(DasfError::ChecksumMismatch { .. }) => {}
            Err(other) => panic!("truncation to {len} gave unexpected error {other}"),
            Ok(_) => panic!("truncation to {len} bytes opened successfully"),
        }
    }
    // The untouched length still opens.
    std::fs::write(target, clean).unwrap();
    assert!(File::open(target).is_ok());
}

#[test]
fn truncation_at_every_length_is_detected() {
    let p = write_v4_sample("trunc.dasf");
    let clean = std::fs::read(&p).unwrap();
    sweep_truncations(&clean, &tmp("trunc_target.dasf"));
}

#[test]
fn truncation_of_a_compressed_file_at_every_length_is_detected() {
    let p = write_v4_compressed("trunc_lz.dasf", Codec::ShuffleLz);
    let clean = std::fs::read(&p).unwrap();
    sweep_truncations(&clean, &tmp("trunc_lz_target.dasf"));
}

#[test]
fn write_fault_mid_file_leaves_nothing_behind() {
    // Satellite regression: a failed write used to leave a truncated
    // half-written file at the final path. Now the temp file is removed
    // on drop and the final path never existed.
    use faultline::{site, FaultPlan};
    use std::sync::Arc;
    let p = tmp("abort.dasf");
    std::fs::remove_file(&p).ok();
    let tmp_file = tmp("abort.dasf.tmp");
    let plan = Arc::new(FaultPlan::new(7).with(site::DASF_WRITE_ERR, 1.0));
    faultline::with_plan(plan, || {
        let mut w = Writer::create(&p).unwrap();
        w.write_dataset_f32("/ok0", &[2], &[1.0, 2.0]).unwrap_err();
        drop(w);
    });
    assert!(!p.exists(), "no torn file at the final path");
    assert!(!tmp_file.exists(), "temp file cleaned up on drop");
}

#[test]
fn verified_cache_is_per_handle() {
    // Intentional trade-off: a unit that verified once is not re-hashed
    // by the same handle, so rot appearing *after* that first read goes
    // unseen until a fresh open.
    let p = write_v4_sample("cache.dasf");
    let f = File::open(&p).unwrap();
    assert_eq!(f.read_f32("/Measurement/data").unwrap(), expected_f32());
    let mut bytes = std::fs::read(&p).unwrap();
    bytes[20] ^= 0xFF;
    std::fs::write(&p, &bytes).unwrap();
    // Same handle: cached verification, stale-clean read.
    assert!(f.read_f32("/Measurement/data").is_ok());
    // Fresh open: the flip is caught.
    let f2 = File::open(&p).unwrap();
    assert!(matches!(
        f2.read_f32("/Measurement/data"),
        Err(DasfError::ChecksumMismatch { .. })
    ));
}

// ---------------------------------------------------------------------
// 4. Codec round-trips through the full writer/reader stack
// ---------------------------------------------------------------------

#[test]
fn shuffle_lz_file_round_trips_bit_exactly() {
    let p = write_v4_compressed("rt_lz.dasf", Codec::ShuffleLz);
    let f = File::open(&p).unwrap();
    let meta = f.dataset("/Measurement/data").unwrap();
    assert!(meta.is_compressed());
    assert_eq!(meta.codec(), Codec::ShuffleLz);
    assert!(meta.stored_byte_len() < meta.byte_len());
    // Bit-exact whole reads on both layouts.
    assert_eq!(f.read_f32("/Measurement/data").unwrap(), compressible_f32());
    assert_eq!(f.read_f64("/chunked").unwrap(), compressible_f64());
    // Hyperslabs decode through the unit window and must agree with
    // slicing the whole array — including a window that straddles the
    // 64 KiB unit boundary (row 1 starts at byte 40 960).
    let whole = compressible_f32();
    let slab = f
        .read_hyperslab_f32("/Measurement/data", &[(1, 1), (5_000, 2_000)])
        .unwrap();
    assert_eq!(slab, whole[10_240 + 5_000..10_240 + 7_000]);
    let chunk_slab = f.read_hyperslab_f64("/chunked", &[(6, 4), (6, 4)]).unwrap();
    let c64 = compressible_f64();
    let mut expect = Vec::new();
    for r in 6..10 {
        for c in 6..10 {
            expect.push(c64[r * 16 + c]);
        }
    }
    assert_eq!(chunk_slab, expect);
    // The scrub hashes stored bytes only.
    let v = f.verify_all().unwrap();
    assert!(v.is_clean());
    assert!(v.bytes_verified < meta.byte_len());
}

#[test]
fn quant_file_respects_its_error_bound_end_to_end() {
    let bound = 1e-3f64;
    let p = tmp("rt_quant.dasf");
    let data: Vec<f32> = (0..30_000)
        .map(|i| (i as f32 * 0.011).sin() * 4.0)
        .collect();
    let mut w = Writer::create(&p).unwrap();
    w.set_codec(Codec::Quant { bound }).unwrap();
    w.create_group("/Measurement").unwrap();
    w.write_dataset_f32("/Measurement/data", &[30_000], &data)
        .unwrap();
    w.finish().unwrap();
    let f = File::open(&p).unwrap();
    let meta = f.dataset("/Measurement/data").unwrap();
    assert!(meta.is_compressed());
    assert!(meta.stored_byte_len() < meta.byte_len());
    let back = f.read_f32("/Measurement/data").unwrap();
    assert_eq!(back.len(), data.len());
    for (orig, got) in data.iter().zip(&back) {
        let err = (*orig as f64 - *got as f64).abs();
        let slack = got.abs() as f64 * 2.0 * f32::EPSILON as f64;
        assert!(err <= bound + slack, "|{orig} - {got}| = {err} > {bound}");
    }
    assert!(f.verify_all().unwrap().is_clean());
}
