//! End-to-end integrity guarantees of the `DASF0003` format.
//!
//! Three families of tests back the acceptance criteria of the v3
//! design:
//!
//! 1. **Compatibility** — a pinned golden v2 fixture (byte-for-byte the
//!    output of the `DASF0002` writer) still opens and reads, and v3
//!    round-trips are bit-exact and deterministic.
//! 2. **Corruption** — flipping a byte *anywhere* in a v3 file (magic,
//!    superblock, payload, object table, commit record) is detected as
//!    `BadMagic` / `Truncated` / `ChecksumMismatch`; never silently
//!    wrong data.
//! 3. **Crash shapes** — truncating a v3 file at every possible length
//!    (a SIGKILL mid-`finish`) is always detected at open, and an
//!    aborted writer leaves nothing behind.

use dasf::{DasfError, File, Value, Version, Writer};
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("dasf-integrity-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn unhex(s: &str) -> Vec<u8> {
    s.as_bytes()
        .chunks(2)
        .map(|p| u8::from_str_radix(std::str::from_utf8(p).unwrap(), 16).unwrap())
        .collect()
}

/// A complete `DASF0002` file produced by the v2 writer before the v3
/// format change: root attrs, one contiguous f32 dataset under a group,
/// and one chunked f64 dataset. Pinned as raw bytes so the v2 *decoder*
/// is what keeps it readable, not the current writer.
const GOLDEN_V2_HEX: &str = "4441534630303032ac00000000000000000040c0000020c0000000c00000c0bf000080bf000000bf000000000000003f0000803f0000c03f00000040000020400000404000006040000080400000000000000000000000000000f03f0000000000003040000000000000394000000000000010400000000000002240000000000000424000000000008048400000000000005040000000000040544000000000000059400000000000405e400105000000110000004e756d626572206f66206f626a65637473020300000000000000190000004e756d626572206f662072617720646174612076616c7565730205000000000000001500000053616d706c696e674672657175656e637928485a2902f401000000000000140000005370617469616c5265736f6c7574696f6e286d290300000000000000401700000054696d655374616d702879796d6d646468686d6d737329010c000000313730373238323234353130020000000b0000004d6561737572656d656e7401000000000100000004000000646174610201020000000300000000000000050000000000000010000000000000000100000000070000006368756e6b6564020202000000030000000000000004000000000000004c00000000000000020200000002000000000000000200000000000000040000004c000000000000006c000000000000008c000000000000009c0000000000000000000000";

/// The logical content of the golden fixture (and of the v3 files the
/// tests below write): what the v2 writer was fed when it was pinned.
fn expected_f32() -> Vec<f32> {
    (0..15).map(|i| i as f32 * 0.5 - 3.0).collect()
}

fn expected_f64() -> Vec<f64> {
    (0..12).map(|i| (i * i) as f64).collect()
}

fn write_v3_sample(name: &str) -> PathBuf {
    let p = tmp(name);
    let mut w = Writer::create(&p).unwrap();
    w.set_attr("/", "SamplingFrequency(HZ)", Value::Int(500))
        .unwrap();
    w.set_attr("/", "SpatialResolution(m)", Value::Float(2.0))
        .unwrap();
    w.set_attr(
        "/",
        "TimeStamp(yymmddhhmmss)",
        Value::Str("170728224510".into()),
    )
    .unwrap();
    w.create_group("/Measurement").unwrap();
    w.write_dataset_f32("/Measurement/data", &[3, 5], &expected_f32())
        .unwrap();
    w.write_dataset_chunked("/chunked", &[3, 4], &[2, 2], &expected_f64())
        .unwrap();
    w.finish().unwrap();
    p
}

// ---------------------------------------------------------------------
// 1. Compatibility
// ---------------------------------------------------------------------

#[test]
fn golden_v2_fixture_still_opens_and_reads() {
    let p = tmp("golden_v2.dasf");
    std::fs::write(&p, unhex(GOLDEN_V2_HEX)).unwrap();
    let f = File::open(&p).unwrap();
    assert_eq!(f.version(), Version::V2);
    assert_eq!(
        f.attr("/", "SamplingFrequency(HZ)")
            .and_then(|v| v.as_int()),
        Some(500)
    );
    assert_eq!(
        f.attr("/", "TimeStamp(yymmddhhmmss)")
            .and_then(|v| v.as_str()),
        Some("170728224510")
    );
    assert_eq!(f.read_f32("/Measurement/data").unwrap(), expected_f32());
    assert_eq!(f.read_f64("/chunked").unwrap(), expected_f64());
    // Hyperslabs work unverified on v2 too.
    assert_eq!(
        f.read_hyperslab_f32("/Measurement/data", &[(1, 1), (2, 2)])
            .unwrap(),
        vec![expected_f32()[7], expected_f32()[8]]
    );
    // A v2 file has no checksums: the scrub reports it unverified, not
    // corrupt.
    let v = f.verify_all().unwrap();
    assert!(v.is_clean());
    assert_eq!(v.datasets, 2);
    assert_eq!(v.unverified_datasets, 2);
    assert_eq!(v.chunks_verified, 0);
}

#[test]
fn v2_table_offset_past_eof_is_truncated() {
    // Satellite: a v2 file whose superblock promises a table beyond EOF
    // must surface as Truncated at open, not a later read panic.
    let mut bytes = unhex(GOLDEN_V2_HEX);
    let huge = (bytes.len() as u64 + 1000).to_le_bytes();
    bytes[8..16].copy_from_slice(&huge);
    let p = tmp("v2_past_eof.dasf");
    std::fs::write(&p, &bytes).unwrap();
    assert!(matches!(File::open(&p), Err(DasfError::Truncated)));
}

#[test]
fn v3_round_trip_is_bit_exact_and_deterministic() {
    let p1 = write_v3_sample("rt1.dasf");
    let p2 = write_v3_sample("rt2.dasf");
    let b1 = std::fs::read(&p1).unwrap();
    let b2 = std::fs::read(&p2).unwrap();
    assert_eq!(b1, b2, "same logical content must serialize identically");
    assert_eq!(&b1[..8], b"DASF0003");
    assert_eq!(&b1[b1.len() - 8..], b"DASF3END");

    let f = File::open(&p1).unwrap();
    assert_eq!(f.version(), Version::V3);
    assert_eq!(f.read_f32("/Measurement/data").unwrap(), expected_f32());
    assert_eq!(f.read_f64("/chunked").unwrap(), expected_f64());
    assert_eq!(
        f.attr("/", "SpatialResolution(m)")
            .and_then(|v| v.as_float()),
        Some(2.0)
    );
    let v = f.verify_all().unwrap();
    assert!(v.is_clean());
    assert_eq!(v.datasets, 2);
    assert_eq!(v.unverified_datasets, 0);
    // 1 contiguous unit + 4 storage chunks.
    assert_eq!(v.chunks_verified, 5);
}

// ---------------------------------------------------------------------
// 2. Corruption: every byte of every region
// ---------------------------------------------------------------------

/// Fully read a file: open, scrub, and decode every dataset. Any
/// integrity failure anywhere surfaces as `Err`.
fn deep_read(p: &std::path::Path) -> dasf::Result<()> {
    let f = File::open(p)?;
    let v = f.verify_all()?;
    if let Some(fault) = v.mismatches.first() {
        return Err(DasfError::ChecksumMismatch {
            path: p.display().to_string(),
            dataset: fault.dataset.clone(),
            chunk: fault.chunk,
        });
    }
    f.read_f32("/Measurement/data")?;
    f.read_f64("/chunked")?;
    Ok(())
}

#[test]
fn flipping_any_byte_is_detected() {
    let p = write_v3_sample("flip.dasf");
    let clean = std::fs::read(&p).unwrap();
    let f = File::open(&p).unwrap();
    let table_offset = 16 + f.data_region_bytes();
    drop(f);
    let footer_start = clean.len() as u64 - 32;
    let target = tmp("flip_target.dasf");

    for i in 0..clean.len() {
        let mut bad = clean.clone();
        bad[i] ^= 0xA5;
        std::fs::write(&target, &bad).unwrap();
        let err = deep_read(&target).expect_err(&format!("flip at byte {i} went undetected"));
        let i64_ = i as u64;
        match i64_ {
            0..=7 => assert!(
                matches!(err, DasfError::BadMagic),
                "magic flip at {i}: {err}"
            ),
            8..=15 => assert!(
                matches!(err, DasfError::ChecksumMismatch { ref dataset, .. } if dataset == "(superblock)"),
                "superblock flip at {i}: {err}"
            ),
            _ if i64_ < table_offset => assert!(
                matches!(err, DasfError::ChecksumMismatch { ref dataset, .. } if dataset.starts_with('/')),
                "payload flip at {i}: {err}"
            ),
            _ if i64_ < footer_start => assert!(
                matches!(err, DasfError::ChecksumMismatch { ref dataset, .. } if dataset == "(object table)"),
                "table flip at {i}: {err}"
            ),
            _ => assert!(
                // Record prefix flips fail its CRC; commit-magic flips
                // look like a torn write. Both are detected.
                matches!(
                    err,
                    DasfError::Truncated | DasfError::ChecksumMismatch { .. }
                ),
                "footer flip at {i}: {err}"
            ),
        }
    }
}

#[test]
fn payload_flip_is_attributed_to_the_right_chunk() {
    let p = write_v3_sample("attr_chunk.dasf");
    let mut bytes = std::fs::read(&p).unwrap();
    // Byte 20 sits in the first unit of /Measurement/data (payload
    // starts at 16).
    bytes[20] ^= 0xFF;
    let target = tmp("attr_chunk_bad.dasf");
    std::fs::write(&target, &bytes).unwrap();
    let f = File::open(&target).unwrap();
    match f.read_f32("/Measurement/data") {
        Err(DasfError::ChecksumMismatch { dataset, chunk, .. }) => {
            assert_eq!(dataset, "/Measurement/data");
            assert_eq!(chunk, 0);
        }
        other => panic!("expected ChecksumMismatch, got {other:?}"),
    }
    // The intact dataset still reads fine.
    assert_eq!(f.read_f64("/chunked").unwrap(), expected_f64());
    let v = f.verify_all().unwrap();
    assert_eq!(v.mismatches.len(), 1);
    assert_eq!(v.mismatches[0].dataset, "/Measurement/data");
}

// ---------------------------------------------------------------------
// 3. Crash shapes
// ---------------------------------------------------------------------

#[test]
fn truncation_at_every_length_is_detected() {
    let p = write_v3_sample("trunc.dasf");
    let clean = std::fs::read(&p).unwrap();
    let target = tmp("trunc_target.dasf");
    for len in 0..clean.len() {
        std::fs::write(&target, &clean[..len]).unwrap();
        match File::open(&target) {
            Err(DasfError::Truncated) | Err(DasfError::ChecksumMismatch { .. }) => {}
            Err(other) => panic!("truncation to {len} gave unexpected error {other}"),
            Ok(_) => panic!("truncation to {len} bytes opened successfully"),
        }
    }
    // The untouched length still opens.
    std::fs::write(&target, &clean).unwrap();
    assert!(File::open(&target).is_ok());
}

#[test]
fn write_fault_mid_file_leaves_nothing_behind() {
    // Satellite regression: a failed write used to leave a truncated
    // half-written file at the final path. Now the temp file is removed
    // on drop and the final path never existed.
    use faultline::{site, FaultPlan};
    use std::sync::Arc;
    let p = tmp("abort.dasf");
    std::fs::remove_file(&p).ok();
    let tmp_file = tmp("abort.dasf.tmp");
    let plan = Arc::new(FaultPlan::new(7).with(site::DASF_WRITE_ERR, 1.0));
    faultline::with_plan(plan, || {
        let mut w = Writer::create(&p).unwrap();
        w.write_dataset_f32("/ok0", &[2], &[1.0, 2.0]).unwrap_err();
        drop(w);
    });
    assert!(!p.exists(), "no torn file at the final path");
    assert!(!tmp_file.exists(), "temp file cleaned up on drop");
}

#[test]
fn verified_cache_is_per_handle() {
    // Intentional trade-off: a unit that verified once is not re-hashed
    // by the same handle, so rot appearing *after* that first read goes
    // unseen until a fresh open.
    let p = write_v3_sample("cache.dasf");
    let f = File::open(&p).unwrap();
    assert_eq!(f.read_f32("/Measurement/data").unwrap(), expected_f32());
    let mut bytes = std::fs::read(&p).unwrap();
    bytes[20] ^= 0xFF;
    std::fs::write(&p, &bytes).unwrap();
    // Same handle: cached verification, stale-clean read.
    assert!(f.read_f32("/Measurement/data").is_ok());
    // Fresh open: the flip is caught.
    let f2 = File::open(&p).unwrap();
    assert!(matches!(
        f2.read_f32("/Measurement/data"),
        Err(DasfError::ChecksumMismatch { .. })
    ));
}
