//! Property tests for the v4 codec stage: arbitrary float tiles pushed
//! through the full writer→reader stack under every codec.
//!
//! * Lossless codecs (`raw`, `shuffle-lz`) must be bit-exact — NaNs,
//!   infinities, and subnormals included.
//! * `quant:<bound>` must reconstruct every *finite* sample within its
//!   error bound, and fall back to bit-exact lossless storage for units
//!   holding non-finite samples.
//! * Chunked and contiguous layouts must agree under compression, and
//!   hyperslabs must equal slices of the whole read.

use dasf::{Codec, File, Writer};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("dasf-codec-proptests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(format!(
        "{tag}-{}.dasf",
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Any bit pattern, including NaN/Inf/subnormals: the lossless codecs
/// must round-trip all of them exactly.
fn any_f32() -> impl Strategy<Value = f32> {
    any::<u32>().prop_map(f32::from_bits)
}

fn any_f64() -> impl Strategy<Value = f64> {
    any::<u64>().prop_map(f64::from_bits)
}

fn lossless_codecs() -> impl Strategy<Value = Codec> {
    prop_oneof![Just(Codec::Raw), Just(Codec::ShuffleLz)]
}

/// Bit-exact equality that treats any NaN payload as equal to itself
/// after a lossless round trip (we compare bits, not values).
fn bits32(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn bits64(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn lossless_f32_tiles_round_trip_bit_exactly(
        rows in 1u64..12,
        cols in 1u64..400,
        data in prop::collection::vec(any_f32(), 1..4800),
        codec in lossless_codecs(),
    ) {
        let n = (rows * cols) as usize;
        let tile: Vec<f32> = data.iter().cycle().take(n).copied().collect();
        let path = tmp("lossless32");
        let mut w = Writer::create(&path).unwrap();
        w.set_codec(codec).unwrap();
        w.write_dataset_f32("/tile", &[rows, cols], &tile).unwrap();
        w.finish().unwrap();
        let f = File::open(&path).unwrap();
        prop_assert_eq!(bits32(&f.read_f32("/tile").unwrap()), bits32(&tile));
        prop_assert!(f.verify_all().unwrap().is_clean());
    }

    #[test]
    fn lossless_f64_tiles_round_trip_bit_exactly(
        len in 1u64..3000,
        data in prop::collection::vec(any_f64(), 1..3000),
        codec in lossless_codecs(),
    ) {
        let tile: Vec<f64> = data.iter().cycle().take(len as usize).copied().collect();
        let path = tmp("lossless64");
        let mut w = Writer::create(&path).unwrap();
        w.set_codec(codec).unwrap();
        w.write_dataset_f64("/tile", &[len], &tile).unwrap();
        w.finish().unwrap();
        let f = File::open(&path).unwrap();
        prop_assert_eq!(bits64(&f.read_f64("/tile").unwrap()), bits64(&tile));
    }

    #[test]
    fn quant_respects_bound_on_finite_f32_tiles(
        len in 1u64..4000,
        amp in 0.01f64..1e4,
        bound in 1e-6f64..0.5,
        seed in 0u64..1000,
    ) {
        // Finite, bounded samples: a smooth-ish wave plus deterministic
        // jitter, scaled by amp.
        let tile: Vec<f32> = (0..len)
            .map(|i| {
                let t = (i + seed) as f64;
                ((t * 0.013).sin() * amp + (t * 0.71).cos() * amp * 0.1) as f32
            })
            .collect();
        let path = tmp("quant32");
        let mut w = Writer::create(&path).unwrap();
        w.set_codec(Codec::Quant { bound }).unwrap();
        w.write_dataset_f32("/tile", &[len], &tile).unwrap();
        w.finish().unwrap();
        let f = File::open(&path).unwrap();
        let back = f.read_f32("/tile").unwrap();
        prop_assert_eq!(back.len(), tile.len());
        for (orig, got) in tile.iter().zip(&back) {
            let err = (*orig as f64 - *got as f64).abs();
            // Slack for the final f64→f32 cast of the reconstruction.
            let slack = got.abs() as f64 * 2.0 * f32::EPSILON as f64;
            prop_assert!(
                err <= bound + slack,
                "|{} - {}| = {} > {}", orig, got, err, bound
            );
        }
    }

    #[test]
    fn quant_stores_non_finite_tiles_bit_exactly(
        data in prop::collection::vec(any_f32(), 2..600),
        nan_at in prop::collection::vec(0usize..600, 1..4),
    ) {
        // Plant NaNs so quantisation must fall back to lossless.
        let mut tile = data;
        let n = tile.len();
        for i in nan_at {
            tile[i % n] = f32::NAN;
        }
        let path = tmp("quantnan");
        let mut w = Writer::create(&path).unwrap();
        w.set_codec(Codec::Quant { bound: 1e-3 }).unwrap();
        w.write_dataset_f32("/tile", &[n as u64], &tile).unwrap();
        w.finish().unwrap();
        let f = File::open(&path).unwrap();
        prop_assert_eq!(bits32(&f.read_f32("/tile").unwrap()), bits32(&tile));
        // The codec actually used is never the quant codec.
        let meta = f.dataset("/tile").unwrap();
        prop_assert!(meta.codec() != Codec::Quant { bound: 1e-3 });
    }

    #[test]
    fn compressed_chunked_equals_contiguous(
        rows in 1u64..20,
        cols in 1u64..40,
        ch_r in 1u64..8,
        ch_c in 1u64..8,
        frac in 0.0f64..1.0,
        frac2 in 0.0f64..1.0,
    ) {
        // Runs of equal values: guaranteed compressible in most shapes.
        let data: Vec<f64> = (0..rows * cols).map(|i| (i / 7) as f64).collect();
        let path = tmp("chunkeq");
        let mut w = Writer::create(&path).unwrap();
        w.set_codec(Codec::ShuffleLz).unwrap();
        w.write_dataset_f64("/cont", &[rows, cols], &data).unwrap();
        w.write_dataset_chunked("/chunked", &[rows, cols], &[ch_r, ch_c], &data)
            .unwrap();
        w.finish().unwrap();
        let f = File::open(&path).unwrap();
        prop_assert_eq!(f.read_f64("/cont").unwrap(), f.read_f64("/chunked").unwrap());
        let r0 = (frac * rows as f64) as u64 % rows;
        let c0 = (frac2 * cols as f64) as u64 % cols;
        let rn = 1 + (rows - r0 - 1).min((frac2 * 5.0) as u64);
        let cn = 1 + (cols - c0 - 1).min((frac * 9.0) as u64);
        let sel = [(r0, rn), (c0, cn)];
        prop_assert_eq!(
            f.read_hyperslab_f64("/chunked", &sel).unwrap(),
            f.read_hyperslab_f64("/cont", &sel).unwrap()
        );
    }

    #[test]
    fn compressed_hyperslab_equals_whole_read_slice(
        rows in 1u64..10,
        cols in 64u64..600,
        frac in 0.0f64..1.0,
        frac2 in 0.0f64..1.0,
    ) {
        let data: Vec<f32> = (0..rows * cols).map(|i| (i / 16) as f32 * 0.5).collect();
        let path = tmp("slabeq");
        let mut w = Writer::create(&path).unwrap();
        w.set_codec(Codec::ShuffleLz).unwrap();
        w.write_dataset_f32("/d", &[rows, cols], &data).unwrap();
        w.finish().unwrap();
        let f = File::open(&path).unwrap();
        let whole = f.read_f32("/d").unwrap();
        let r0 = (frac * rows as f64) as u64 % rows;
        let c0 = (frac2 * cols as f64) as u64 % cols;
        let rn = 1 + (rows - r0 - 1).min(4);
        let cn = 1 + (cols - c0 - 1).min(100);
        let slab = f.read_hyperslab_f32("/d", &[(r0, rn), (c0, cn)]).unwrap();
        let mut expect = Vec::new();
        for r in r0..r0 + rn {
            for c in c0..c0 + cn {
                expect.push(whole[(r * cols + c) as usize]);
            }
        }
        prop_assert_eq!(slab, expect);
    }
}
