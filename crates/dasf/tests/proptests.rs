//! Property tests for the dasf format: write→read round-trips, random
//! hyperslabs, and chunked-vs-contiguous layout equivalence.

use dasf::{File, Value, Writer};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("dasf-proptests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(format!(
        "{tag}-{}.dasf",
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Reference implementation: slice a row-major 2-D array.
fn manual_slab(data: &[f64], cols: u64, sel: &[(u64, u64); 2]) -> Vec<f64> {
    let mut out = Vec::new();
    for r in sel[0].0..sel[0].0 + sel[0].1 {
        for c in sel[1].0..sel[1].0 + sel[1].1 {
            out.push(data[(r * cols + c) as usize]);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn whole_dataset_round_trip(rows in 1u64..20, cols in 1u64..30, seed in 0u64..1000) {
        let data: Vec<f64> = (0..rows * cols).map(|i| (i as f64 + seed as f64) * 0.5).collect();
        let path = tmp("round");
        let mut w = Writer::create(&path).unwrap();
        w.write_dataset_f64("/d", &[rows, cols], &data).unwrap();
        w.finish().unwrap();
        let f = File::open(&path).unwrap();
        prop_assert_eq!(f.read_f64("/d").unwrap(), data);
    }

    #[test]
    fn hyperslab_equals_manual_slice(
        rows in 1u64..16,
        cols in 1u64..24,
        frac in 0.0f64..1.0,
        frac2 in 0.0f64..1.0,
    ) {
        let data: Vec<f64> = (0..rows * cols).map(|i| i as f64).collect();
        let r0 = (frac * rows as f64) as u64 % rows;
        let c0 = (frac2 * cols as f64) as u64 % cols;
        let rn = 1 + (rows - r0 - 1).min((frac2 * 7.0) as u64);
        let cn = 1 + (cols - c0 - 1).min((frac * 11.0) as u64);
        let sel = [(r0, rn), (c0, cn)];

        let path = tmp("slab");
        let mut w = Writer::create(&path).unwrap();
        w.write_dataset_f64("/d", &[rows, cols], &data).unwrap();
        w.finish().unwrap();
        let f = File::open(&path).unwrap();
        prop_assert_eq!(
            f.read_hyperslab_f64("/d", &sel).unwrap(),
            manual_slab(&data, cols, &sel)
        );
    }

    #[test]
    fn chunked_layout_is_equivalent_to_contiguous(
        rows in 1u64..16,
        cols in 1u64..24,
        ch_r in 1u64..8,
        ch_c in 1u64..8,
        frac in 0.0f64..1.0,
        frac2 in 0.0f64..1.0,
    ) {
        let data: Vec<f64> = (0..rows * cols).map(|i| (i * 3) as f64).collect();
        let path = tmp("chunk");
        let mut w = Writer::create(&path).unwrap();
        w.write_dataset_f64("/cont", &[rows, cols], &data).unwrap();
        w.write_dataset_chunked("/chunked", &[rows, cols], &[ch_r, ch_c], &data)
            .unwrap();
        w.finish().unwrap();
        let f = File::open(&path).unwrap();

        // Whole reads agree.
        prop_assert_eq!(f.read_f64("/cont").unwrap(), f.read_f64("/chunked").unwrap());

        // Random hyperslab agrees.
        let r0 = (frac * rows as f64) as u64 % rows;
        let c0 = (frac2 * cols as f64) as u64 % cols;
        let rn = 1 + (rows - r0 - 1).min((frac2 * 5.0) as u64);
        let cn = 1 + (cols - c0 - 1).min((frac * 9.0) as u64);
        let sel = [(r0, rn), (c0, cn)];
        prop_assert_eq!(
            f.read_hyperslab_f64("/chunked", &sel).unwrap(),
            f.read_hyperslab_f64("/cont", &sel).unwrap()
        );
    }

    #[test]
    fn attrs_survive_arbitrary_values(
        int_val in any::<i64>(),
        float_val in -1e12f64..1e12,
        svals in prop::collection::vec(-1e6f64..1e6, 0..8),
        name in "k[a-zA-Z0-9 _()-]{0,24}",
    ) {
        let path = tmp("attrs");
        let mut w = Writer::create(&path).unwrap();
        w.set_attr("/", "i", Value::Int(int_val)).unwrap();
        w.set_attr("/", "f", Value::Float(float_val)).unwrap();
        w.set_attr("/", &name, Value::FloatVec(svals.clone())).unwrap();
        w.finish().unwrap();
        let f = File::open(&path).unwrap();
        prop_assert_eq!(f.attr("/", "i"), Some(&Value::Int(int_val)));
        prop_assert_eq!(f.attr("/", "f"), Some(&Value::Float(float_val)));
        prop_assert_eq!(f.attr("/", &name), Some(&Value::FloatVec(svals)));
    }

    #[test]
    fn one_dimensional_chunked(len in 1u64..200, chunk in 1u64..32, off_frac in 0.0f64..1.0) {
        let data: Vec<f64> = (0..len).map(|i| i as f64 * 0.25).collect();
        let path = tmp("chunk1d");
        let mut w = Writer::create(&path).unwrap();
        w.write_dataset_chunked("/d", &[len], &[chunk], &data).unwrap();
        w.finish().unwrap();
        let f = File::open(&path).unwrap();
        prop_assert_eq!(f.read_f64("/d").unwrap(), data.clone());
        let off = (off_frac * len as f64) as u64 % len;
        let cnt = 1 + (len - off - 1).min(17);
        let slab = f.read_hyperslab_f64("/d", &[(off, cnt)]).unwrap();
        prop_assert_eq!(slab, data[off as usize..(off + cnt) as usize].to_vec());
    }
}

#[test]
fn chunked_metadata_round_trips_through_reopen() {
    let data: Vec<f64> = (0..60).map(|i| i as f64).collect();
    let path = tmp("meta");
    let mut w = Writer::create(&path).unwrap();
    w.write_dataset_chunked("/d", &[6, 10], &[4, 4], &data)
        .unwrap();
    w.finish().unwrap();
    let f = File::open(&path).unwrap();
    match &f.dataset("/d").unwrap().layout {
        dasf::Layout::Chunked {
            chunk_dims,
            chunk_offsets,
        } => {
            assert_eq!(chunk_dims, &vec![4, 4]);
            // 2x3 chunk grid.
            assert_eq!(chunk_offsets.len(), 6);
            // Offsets are strictly increasing (chunks written in order).
            for w2 in chunk_offsets.windows(2) {
                assert!(w2[1] > w2[0]);
            }
        }
        other => panic!("expected chunked layout, got {other:?}"),
    }
}
