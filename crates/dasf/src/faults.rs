//! `faultline` injection hooks for the dasf I/O layer.
//!
//! Faults are keyed by *file name* (DAS minute-file names encode
//! timestamps, so they are stable across runs and identical no matter
//! which rank or strategy touches the file): under a given plan a file
//! is either permanently unreadable or permanently healthy — the
//! bad-sector model. Transient faults live at the `par_read` and
//! `minimpi` layers, which key by attempt.
//!
//! Most injected errors are *detected* errors ([`DasfError::Io`],
//! [`DasfError::Truncated`]). The exception is `dasf.read.corrupt`,
//! which injects *real* bit-rot: one deterministic byte of the data
//! region reads back XOR-flipped, and it is the v3 checksum layer — not
//! the injector — that must turn it into
//! [`DasfError::ChecksumMismatch`]. Against a v2 file the flip is
//! silent, which is exactly the gap the v3 format closes.

use crate::error::DasfError;
use crate::Result;
use faultline::site;
use std::path::Path;
use std::time::Duration;

/// Upper bound on injected read latency. Long enough to perturb
/// schedules (and show up in `dasf.read.ns`), short enough that chaos
/// matrices over many seeds stay fast.
const MAX_LATENCY_NS: u64 = 200_000;

/// The injection key for `path`: a stable hash of its file name.
fn file_key(path: &Path) -> u64 {
    faultline::key_of(
        path.file_name()
            .map(|n| n.as_encoded_bytes())
            .unwrap_or_default(),
    )
}

fn injected(what: &str) -> DasfError {
    crate::metrics::metrics().faults_injected.inc();
    DasfError::Io(std::io::Error::other(format!("faultline: injected {what}")))
}

/// Open-time hook: may fail [`crate::File::open`] for this path.
pub(crate) fn check_open(path: &Path) -> Result<()> {
    let Some(plan) = faultline::current() else {
        return Ok(());
    };
    if plan.fires(site::DASF_OPEN_ERR, file_key(path)) {
        return Err(injected("open failure (dasf.open.err)"));
    }
    Ok(())
}

/// Read-time hook: may stall briefly, then may fail the read with a
/// detected error. Called once per dataset read (whole or hyperslab).
pub(crate) fn check_read(path: &Path) -> Result<()> {
    let Some(plan) = faultline::current() else {
        return Ok(());
    };
    let key = file_key(path);
    if plan.fires(site::DASF_READ_LATENCY, key) {
        let ns = 1 + plan.value_below(site::DASF_READ_LATENCY, key, MAX_LATENCY_NS);
        std::thread::sleep(Duration::from_nanos(ns));
        crate::metrics::metrics().faults_injected.inc();
    }
    if plan.fires(site::DASF_READ_ERR, key) {
        return Err(injected("read failure (dasf.read.err)"));
    }
    if plan.fires(site::DASF_READ_SHORT, key) {
        crate::metrics::metrics().faults_injected.inc();
        return Err(DasfError::Truncated);
    }
    Ok(())
}

/// One byte of the data region that reads back flipped — the bad-sector
/// model of bit-rot. Deterministic per file name, so every rank and
/// both read strategies see the identical fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Corruption {
    /// Absolute file offset of the rotten byte (inside `[16, 16+data)`).
    pub offset: u64,
    /// Nonzero XOR mask applied to it.
    pub mask: u8,
}

/// The corruption this file suffers under the active plan, if any.
/// Decided at open time from the `dasf.read.corrupt` site.
pub(crate) fn payload_corruption(path: &Path, data_region_bytes: u64) -> Option<Corruption> {
    let plan = faultline::current()?;
    if data_region_bytes == 0 {
        return None;
    }
    let key = file_key(path);
    if !plan.fires(site::DASF_READ_CORRUPT, key) {
        return None;
    }
    let offset = 16 + plan.value_below(site::DASF_READ_CORRUPT, key, data_region_bytes);
    let mask =
        1 + plan.value_below(site::DASF_READ_CORRUPT, key ^ 0x9e37_79b9_7f4a_7c15, 255) as u8;
    Some(Corruption { offset, mask })
}

/// Flip the rotten byte in `buf` if this read (starting at absolute file
/// offset `buf_file_offset`) covers it.
pub(crate) fn apply_corruption(c: &Corruption, buf_file_offset: u64, buf: &mut [u8]) {
    if c.offset >= buf_file_offset && c.offset - buf_file_offset < buf.len() as u64 {
        buf[(c.offset - buf_file_offset) as usize] ^= c.mask;
        crate::metrics::metrics().faults_injected.inc();
    }
}

/// Write-time hook, keyed by file name × dataset path.
pub(crate) fn check_write(file: &Path, dataset: &str) -> Result<()> {
    let Some(plan) = faultline::current() else {
        return Ok(());
    };
    let key = file_key(file) ^ faultline::key_of(dataset.as_bytes());
    if plan.fires(site::DASF_WRITE_ERR, key) {
        return Err(injected("write failure (dasf.write.err)"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{File, Writer};
    use faultline::FaultPlan;
    use std::sync::Arc;

    fn sample(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("dasf-fault-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(name);
        let mut w = Writer::create(&p).unwrap();
        w.write_dataset_f32("/d", &[2, 3], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
            .unwrap();
        w.finish().unwrap();
        p
    }

    #[test]
    fn no_plan_is_a_noop() {
        let p = sample("noplan.dasf");
        let f = File::open(&p).unwrap();
        assert_eq!(f.read_f32("/d").unwrap().len(), 6);
    }

    #[test]
    fn injected_faults_fire_deterministically() {
        let p = sample("inject.dasf");
        let open_err = Arc::new(FaultPlan::new(1).with(site::DASF_OPEN_ERR, 1.0));
        faultline::with_plan(open_err, || {
            assert!(matches!(File::open(&p), Err(DasfError::Io(_))));
        });
        let read_corrupt = Arc::new(FaultPlan::new(1).with(site::DASF_READ_CORRUPT, 1.0));
        faultline::with_plan(read_corrupt, || {
            // Real bytes are flipped in the read buffer; it is the v3
            // checksum layer that reports them.
            let f = File::open(&p).unwrap();
            assert!(matches!(
                f.read_f32("/d"),
                Err(DasfError::ChecksumMismatch { .. })
            ));
            assert!(matches!(
                f.read_hyperslab_f32("/d", &[(0, 1), (0, 2)]),
                Err(DasfError::ChecksumMismatch { .. })
            ));
        });
        let read_short = Arc::new(FaultPlan::new(1).with(site::DASF_READ_SHORT, 1.0));
        faultline::with_plan(read_short, || {
            let f = File::open(&p).unwrap();
            assert!(matches!(f.read_f32("/d"), Err(DasfError::Truncated)));
        });
        // Data is untouched once the plan is gone.
        let f = File::open(&p).unwrap();
        assert_eq!(f.read_f32("/d").unwrap()[5], 6.0);
    }

    #[test]
    fn latency_fault_returns_correct_data() {
        let p = sample("latency.dasf");
        let plan = Arc::new(FaultPlan::new(2).with(site::DASF_READ_LATENCY, 1.0));
        faultline::with_plan(plan, || {
            let f = File::open(&p).unwrap();
            assert_eq!(
                f.read_f32("/d").unwrap(),
                vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
            );
        });
    }

    #[test]
    fn write_fault_fails_writer() {
        let dir = std::env::temp_dir().join("dasf-fault-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("wfail.dasf");
        let plan = Arc::new(FaultPlan::new(3).with(site::DASF_WRITE_ERR, 1.0));
        faultline::with_plan(plan, || {
            let mut w = Writer::create(&p).unwrap();
            assert!(matches!(
                w.write_dataset_f32("/d", &[1], &[1.0]),
                Err(DasfError::Io(_))
            ));
        });
    }
}
