//! Dataset element types.

/// Element type of a stored dataset, like an HDF5 datatype.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Dtype {
    F32 = 1,
    F64 = 2,
    I16 = 3,
    I32 = 4,
    I64 = 5,
    U8 = 6,
}

impl Dtype {
    /// Size of one element in bytes.
    pub fn size(self) -> usize {
        match self {
            Dtype::F32 | Dtype::I32 => 4,
            Dtype::F64 | Dtype::I64 => 8,
            Dtype::I16 => 2,
            Dtype::U8 => 1,
        }
    }

    /// Human-readable name, used in error messages.
    pub fn name(self) -> &'static str {
        match self {
            Dtype::F32 => "f32",
            Dtype::F64 => "f64",
            Dtype::I16 => "i16",
            Dtype::I32 => "i32",
            Dtype::I64 => "i64",
            Dtype::U8 => "u8",
        }
    }

    pub(crate) fn from_code(code: u8) -> Option<Dtype> {
        Some(match code {
            1 => Dtype::F32,
            2 => Dtype::F64,
            3 => Dtype::I16,
            4 => Dtype::I32,
            5 => Dtype::I64,
            6 => Dtype::U8,
            _ => return None,
        })
    }
}

/// Rust types storable as dataset elements.
///
/// # Safety-free design
/// Conversion goes through explicit little-endian byte codecs rather than
/// transmutes, so the format is portable across endianness.
pub trait Element: Copy + Default + Send + Sync + 'static {
    /// The on-disk dtype tag for this Rust type.
    const DTYPE: Dtype;

    /// Append this value's little-endian bytes to `out`.
    fn write_le(self, out: &mut Vec<u8>);

    /// Decode one value from the start of `bytes`.
    fn read_le(bytes: &[u8]) -> Self;
}

macro_rules! impl_element {
    ($t:ty, $dtype:expr) => {
        impl Element for $t {
            const DTYPE: Dtype = $dtype;

            fn write_le(self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }

            fn read_le(bytes: &[u8]) -> Self {
                let mut buf = [0u8; std::mem::size_of::<$t>()];
                buf.copy_from_slice(&bytes[..std::mem::size_of::<$t>()]);
                <$t>::from_le_bytes(buf)
            }
        }
    };
}

impl_element!(f32, Dtype::F32);
impl_element!(f64, Dtype::F64);
impl_element!(i16, Dtype::I16);
impl_element!(i32, Dtype::I32);
impl_element!(i64, Dtype::I64);
impl_element!(u8, Dtype::U8);

/// Encode a slice to little-endian bytes.
pub(crate) fn encode_slice<T: Element>(data: &[T]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() * T::DTYPE.size());
    for &v in data {
        v.write_le(&mut out);
    }
    out
}

/// Decode `n` values from little-endian bytes.
pub(crate) fn decode_slice<T: Element>(bytes: &[u8], n: usize) -> Vec<T> {
    let mut out = Vec::new();
    decode_into(bytes, n, &mut out);
    out
}

/// Decode `n` values from little-endian bytes into `out` (cleared
/// first), so pooled buffers skip the fresh allocation per read.
pub(crate) fn decode_into<T: Element>(bytes: &[u8], n: usize, out: &mut Vec<T>) {
    let sz = T::DTYPE.size();
    debug_assert!(bytes.len() >= n * sz);
    out.clear();
    out.reserve(n);
    out.extend((0..n).map(|i| T::read_le(&bytes[i * sz..])));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtype_round_trip_codes() {
        for d in [
            Dtype::F32,
            Dtype::F64,
            Dtype::I16,
            Dtype::I32,
            Dtype::I64,
            Dtype::U8,
        ] {
            assert_eq!(Dtype::from_code(d as u8), Some(d));
        }
        assert_eq!(Dtype::from_code(0), None);
        assert_eq!(Dtype::from_code(99), None);
    }

    #[test]
    fn element_round_trip() {
        let vals = [-1.5f32, 0.0, 3.25e7];
        let bytes = encode_slice(&vals);
        assert_eq!(bytes.len(), 12);
        let back: Vec<f32> = decode_slice(&bytes, 3);
        assert_eq!(back, vals);
    }

    #[test]
    fn i16_round_trip() {
        let vals = [i16::MIN, -1, 0, 1, i16::MAX];
        let back: Vec<i16> = decode_slice(&encode_slice(&vals), vals.len());
        assert_eq!(back, vals);
    }
}
