//! Typed attribute values (the key-value metadata model of Figure 4).

use crate::error::DasfError;
use crate::Result;
use bytes::{Buf, BufMut};

/// An attribute value attached to a group or dataset.
///
/// Matches the metadata the paper's Figure 4 stores per file and per
/// channel: sampling frequency, spatial resolution, timestamps, counts.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// UTF-8 string, e.g. `TimeStamp(yymmddhhmmss): 170620100545`.
    Str(String),
    /// Signed integer, e.g. `Number of objects: 11648`.
    Int(i64),
    /// Floating point, e.g. `SpatialResolution(m): 2.0`.
    Float(f64),
    /// Integer vector.
    IntVec(Vec<i64>),
    /// Float vector.
    FloatVec(Vec<f64>),
}

const TAG_STR: u8 = 1;
const TAG_INT: u8 = 2;
const TAG_FLOAT: u8 = 3;
const TAG_INT_VEC: u8 = 4;
const TAG_FLOAT_VEC: u8 = 5;

impl Value {
    /// Integer accessor; `None` for other variants.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Float accessor; integers convert losslessly.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// String accessor.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub(crate) fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Value::Str(s) => {
                out.put_u8(TAG_STR);
                put_string(out, s);
            }
            Value::Int(v) => {
                out.put_u8(TAG_INT);
                out.put_i64_le(*v);
            }
            Value::Float(v) => {
                out.put_u8(TAG_FLOAT);
                out.put_f64_le(*v);
            }
            Value::IntVec(v) => {
                out.put_u8(TAG_INT_VEC);
                out.put_u32_le(v.len() as u32);
                for x in v {
                    out.put_i64_le(*x);
                }
            }
            Value::FloatVec(v) => {
                out.put_u8(TAG_FLOAT_VEC);
                out.put_u32_le(v.len() as u32);
                for x in v {
                    out.put_f64_le(*x);
                }
            }
        }
    }

    pub(crate) fn decode(buf: &mut &[u8]) -> Result<Value> {
        if buf.remaining() < 1 {
            return Err(DasfError::Truncated);
        }
        let tag = buf.get_u8();
        Ok(match tag {
            TAG_STR => Value::Str(get_string(buf)?),
            TAG_INT => {
                check_len(buf, 8)?;
                Value::Int(buf.get_i64_le())
            }
            TAG_FLOAT => {
                check_len(buf, 8)?;
                Value::Float(buf.get_f64_le())
            }
            TAG_INT_VEC => {
                check_len(buf, 4)?;
                let n = buf.get_u32_le() as usize;
                check_len(buf, n * 8)?;
                Value::IntVec((0..n).map(|_| buf.get_i64_le()).collect())
            }
            TAG_FLOAT_VEC => {
                check_len(buf, 4)?;
                let n = buf.get_u32_le() as usize;
                check_len(buf, n * 8)?;
                Value::FloatVec((0..n).map(|_| buf.get_f64_le()).collect())
            }
            other => return Err(DasfError::Corrupt(format!("unknown value tag {other}"))),
        })
    }
}

pub(crate) fn check_len(buf: &&[u8], need: usize) -> Result<()> {
    if buf.remaining() < need {
        Err(DasfError::Truncated)
    } else {
        Ok(())
    }
}

pub(crate) fn put_string(out: &mut Vec<u8>, s: &str) {
    out.put_u32_le(s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

pub(crate) fn get_string(buf: &mut &[u8]) -> Result<String> {
    check_len(buf, 4)?;
    let n = buf.get_u32_le() as usize;
    check_len(buf, n)?;
    let bytes = buf[..n].to_vec();
    buf.advance(n);
    String::from_utf8(bytes).map_err(|_| DasfError::Corrupt("invalid UTF-8 string".into()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: Value) {
        let mut out = Vec::new();
        v.encode(&mut out);
        let mut slice = out.as_slice();
        let back = Value::decode(&mut slice).unwrap();
        assert_eq!(back, v);
        assert!(
            slice.is_empty(),
            "decode must consume exactly what encode wrote"
        );
    }

    #[test]
    fn all_variants_round_trip() {
        round_trip(Value::Str("hello DAS".into()));
        round_trip(Value::Str(String::new()));
        round_trip(Value::Int(-42));
        round_trip(Value::Float(3.75));
        round_trip(Value::IntVec(vec![1, -2, 3]));
        round_trip(Value::FloatVec(vec![0.5, -0.25]));
        round_trip(Value::IntVec(vec![]));
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(5).as_int(), Some(5));
        assert_eq!(Value::Int(5).as_float(), Some(5.0));
        assert_eq!(Value::Float(2.5).as_float(), Some(2.5));
        assert_eq!(Value::Float(2.5).as_int(), None);
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
        assert_eq!(Value::Str("x".into()).as_int(), None);
    }

    #[test]
    fn truncated_decode_fails() {
        let mut out = Vec::new();
        Value::Int(7).encode(&mut out);
        let mut short = &out[..out.len() - 1];
        assert!(matches!(
            Value::decode(&mut short),
            Err(DasfError::Truncated)
        ));
    }

    #[test]
    fn unknown_tag_fails() {
        let bytes = [99u8, 0, 0, 0];
        let mut slice = &bytes[..];
        assert!(matches!(
            Value::decode(&mut slice),
            Err(DasfError::Corrupt(_))
        ));
    }
}
