//! Size-classed buffer pool shared across the read path.
//!
//! Every layer of a DASSA read used to allocate fresh `Vec`s at each
//! hop: the dasf reader staged raw bytes, decoded into a new vector,
//! par_read packed per-destination buffers, and array assembly copied
//! again. The pool closes that loop: buffers are requested by element
//! count, rounded up to a power-of-two size class, and returned to a
//! bounded per-class free list on drop, so a pipeline that reads many
//! same-shaped DAS file members recycles a handful of buffers instead
//! of allocating per member.
//!
//! Instrumentation on the global `obs` registry:
//! * [`names::POOL_HIT`] / [`names::POOL_MISS`] — acquisitions served
//!   from the free list vs. freshly allocated;
//! * [`names::POOL_BYTES_REUSED`] — capacity bytes handed back out of
//!   the free list;
//! * `dasf.alloc.bytes` ([`crate::metrics::names::ALLOC_BYTES`]) — the
//!   fresh capacity pool misses had to allocate, the number the ci
//!   regression gate watches.

use obs::Counter;
use std::collections::HashMap;
use std::ops::{Deref, DerefMut};
use std::sync::{Mutex, OnceLock};

/// Metric names exported by the pool.
pub mod names {
    /// Acquisitions served by recycling a pooled buffer.
    pub const POOL_HIT: &str = "pool.hit";
    /// Acquisitions that had to allocate a fresh buffer.
    pub const POOL_MISS: &str = "pool.miss";
    /// Capacity bytes handed back out of the free lists.
    pub const POOL_BYTES_REUSED: &str = "pool.bytes_reused";
}

struct PoolMetrics {
    hit: Counter,
    miss: Counter,
    bytes_reused: Counter,
}

fn pool_metrics() -> &'static PoolMetrics {
    static METRICS: OnceLock<PoolMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = obs::global();
        PoolMetrics {
            hit: reg.counter(names::POOL_HIT),
            miss: reg.counter(names::POOL_MISS),
            bytes_reused: reg.counter(names::POOL_BYTES_REUSED),
        }
    })
}

/// Free lists keep at most this many buffers per size class.
const MAX_PER_CLASS: usize = 4;

/// Buffers above this element count bypass the free lists entirely —
/// they are too large to keep warm between reads.
const MAX_POOLED_ELEMS: usize = 1 << 26;

fn class_of(n: usize) -> usize {
    n.next_power_of_two().max(64)
}

/// A size-classed free-list pool of `Vec<T>` buffers.
///
/// Use the process-wide instances ([`f32s`], [`bytes`]) so reuse
/// crosses layers: a buffer released by array assembly can serve the
/// next dasf byte-staging read of the same class.
pub struct BufferPool<T> {
    shelves: Mutex<HashMap<usize, Vec<Vec<T>>>>,
}

impl<T: Send + 'static> Default for BufferPool<T> {
    fn default() -> BufferPool<T> {
        BufferPool {
            shelves: Mutex::new(HashMap::new()),
        }
    }
}

impl<T: Send + 'static> BufferPool<T> {
    /// An empty buffer with capacity for at least `n` elements. Pulled
    /// from the free list when a buffer of the right class is warm;
    /// freshly allocated (counted in `dasf.alloc.bytes`) otherwise.
    pub fn acquire(&'static self, n: usize) -> PooledBuf<T> {
        let m = pool_metrics();
        let class = class_of(n);
        let recycled = if class <= MAX_POOLED_ELEMS {
            let mut shelves = self.shelves.lock().expect("pool lock");
            shelves.get_mut(&class).and_then(Vec::pop)
        } else {
            None
        };
        let data = match recycled {
            Some(mut buf) => {
                m.hit.inc();
                m.bytes_reused
                    .add((buf.capacity() * std::mem::size_of::<T>()) as u64);
                buf.clear();
                buf
            }
            None => {
                m.miss.inc();
                crate::metrics::metrics()
                    .alloc_bytes
                    .add((class * std::mem::size_of::<T>()) as u64);
                Vec::with_capacity(class)
            }
        };
        PooledBuf { data, home: self }
    }

    fn release(&self, buf: Vec<T>) {
        // Key by the largest class the capacity still covers, so grown
        // buffers stay eligible; oversized or surplus buffers just drop.
        let cap = buf.capacity();
        if !(64..=MAX_POOLED_ELEMS).contains(&cap) {
            return;
        }
        let class = if cap.is_power_of_two() {
            cap
        } else {
            (cap >> 1).next_power_of_two()
        };
        let mut shelves = self.shelves.lock().expect("pool lock");
        let shelf = shelves.entry(class).or_default();
        if shelf.len() < MAX_PER_CLASS {
            shelf.push(buf);
        }
    }
}

/// The process-wide `f32` sample-buffer pool (tiles, decoded reads).
pub fn f32s() -> &'static BufferPool<f32> {
    static POOL: OnceLock<BufferPool<f32>> = OnceLock::new();
    POOL.get_or_init(BufferPool::default)
}

/// The process-wide byte pool (dasf read staging).
pub fn bytes() -> &'static BufferPool<u8> {
    static POOL: OnceLock<BufferPool<u8>> = OnceLock::new();
    POOL.get_or_init(BufferPool::default)
}

/// An RAII buffer borrowed from a [`BufferPool`]; derefs to its
/// `Vec<T>` and returns to the pool's free list on drop.
pub struct PooledBuf<T: Send + 'static> {
    data: Vec<T>,
    home: &'static BufferPool<T>,
}

impl<T: Send + 'static> Deref for PooledBuf<T> {
    type Target = Vec<T>;

    fn deref(&self) -> &Vec<T> {
        &self.data
    }
}

impl<T: Send + 'static> DerefMut for PooledBuf<T> {
    fn deref_mut(&mut self) -> &mut Vec<T> {
        &mut self.data
    }
}

impl<T: Send + 'static> Drop for PooledBuf<T> {
    fn drop(&mut self) {
        self.home.release(std::mem::take(&mut self.data));
    }
}

impl<T: Send + 'static + std::fmt::Debug> std::fmt::Debug for PooledBuf<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PooledBuf")
            .field("len", &self.data.len())
            .field("capacity", &self.data.capacity())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_release_recycles_by_class() {
        let pool = f32s();
        let cap = {
            let mut a = pool.acquire(1000);
            a.extend(std::iter::repeat_n(1.5f32, 1000));
            assert!(a.capacity() >= 1024);
            a.capacity()
        }; // dropped → shelved
        let b = pool.acquire(900); // same class (1024)
        assert_eq!(b.capacity(), cap, "must reuse the shelved buffer");
        assert!(b.is_empty(), "recycled buffers come back cleared");
    }

    #[test]
    fn counters_track_hits_and_misses() {
        let reg = obs::global();
        let before_hit = reg.snapshot().counter(names::POOL_HIT);
        let before_miss = reg.snapshot().counter(names::POOL_MISS);
        {
            let _a = bytes().acquire(123_457); // odd class, fresh
        }
        let _b = bytes().acquire(123_457); // same class, recycled
        let snap = reg.snapshot();
        assert!(snap.counter(names::POOL_HIT) > before_hit);
        assert!(snap.counter(names::POOL_MISS) > before_miss);
        assert!(snap.counter(names::POOL_BYTES_REUSED) > 0);
    }

    #[test]
    fn oversized_buffers_bypass_the_free_lists() {
        let pool = bytes();
        let huge = MAX_POOLED_ELEMS + 1;
        let a = pool.acquire(huge);
        assert!(a.capacity() > MAX_POOLED_ELEMS);
        drop(a);
        // Nothing shelved for that class: next acquire allocates again
        // (observable as capacity exactly what we asked the allocator
        // for, not a previously grown buffer — and no panic).
        let _b = pool.acquire(huge);
    }
}
