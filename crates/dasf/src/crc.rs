//! CRC32C (Castagnoli) — the integrity checksum of the `DASF0003` format.
//!
//! Zero-dependency software implementation using the classic slice-by-8
//! technique: eight 256-entry tables let the hot loop fold eight input
//! bytes per iteration instead of one, which is within a small factor of
//! hardware CRC on the payload sizes dasf verifies (64 KiB chunks).
//! CRC32C is chosen over CRC32 (zlib) for its better error-detection
//! properties on storage-sized blocks; the tables are built at compile
//! time, so there is no runtime initialisation to race on.

/// Reflected CRC32C (Castagnoli) polynomial.
const POLY: u32 = 0x82F6_3B78;

/// Slice-by-8 lookup tables, built at compile time.
static TABLES: [[u32; 256]; 8] = build_tables();

const fn build_tables() -> [[u32; 256]; 8] {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut j = 0;
        while j < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            j += 1;
        }
        t[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            t[k][i] = (t[k - 1][i] >> 8) ^ t[0][(t[k - 1][i] & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    t
}

/// CRC32C of `data` (standard init/final XOR; `crc32c(b"") == 0`).
pub fn crc32c(data: &[u8]) -> u32 {
    crc32c_append(0, data)
}

/// Continue a CRC32C over more data: `crc32c_append(crc32c(a), b)`
/// equals `crc32c` of `a` followed by `b`.
pub fn crc32c_append(crc: u32, data: &[u8]) -> u32 {
    let mut crc = !crc;
    let mut chunks = data.chunks_exact(8);
    for ch in &mut chunks {
        let lo = u32::from_le_bytes([ch[0], ch[1], ch[2], ch[3]]) ^ crc;
        let hi = u32::from_le_bytes([ch[4], ch[5], ch[6], ch[7]]);
        crc = TABLES[7][(lo & 0xFF) as usize]
            ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][(hi & 0xFF) as usize]
            ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Bit-at-a-time reference implementation.
    fn crc32c_reference(data: &[u8]) -> u32 {
        let mut crc = !0u32;
        for &b in data {
            crc ^= b as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
        }
        !crc
    }

    #[test]
    fn known_answers() {
        // RFC 3720 / iSCSI test vectors.
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
        let ascending: Vec<u8> = (0u8..32).collect();
        assert_eq!(crc32c(&ascending), 0x46DD_794E);
    }

    #[test]
    fn slice_by_8_matches_reference_on_all_lengths() {
        // Every tail length 0..=23 exercises each remainder path.
        let data: Vec<u8> = (0..256u32)
            .map(|i| (i.wrapping_mul(31) ^ 0x5A) as u8)
            .collect();
        for len in 0..=23 {
            assert_eq!(
                crc32c(&data[..len]),
                crc32c_reference(&data[..len]),
                "len {len}"
            );
        }
        assert_eq!(crc32c(&data), crc32c_reference(&data));
    }

    #[test]
    fn append_composes() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        for split in [0, 1, 7, 8, 9, 500, 999, 1000] {
            let (a, b) = data.split_at(split);
            assert_eq!(crc32c_append(crc32c(a), b), crc32c(&data), "split {split}");
        }
    }

    #[test]
    fn single_bit_flips_always_change_the_crc() {
        let data: Vec<u8> = (0..512u32).map(|i| (i * 7 % 256) as u8).collect();
        let clean = crc32c(&data);
        let mut flipped = data.clone();
        for byte in (0..data.len()).step_by(13) {
            for bit in 0..8 {
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32c(&flipped), clean, "byte {byte} bit {bit}");
                flipped[byte] ^= 1 << bit;
            }
        }
    }
}
