//! Reading dasf files: cheap metadata opens and verified hyperslab reads.

use crate::codec;
use crate::crc::crc32c;
use crate::element::{decode_into, decode_slice, Element};
use crate::error::DasfError;
use crate::object::{DatasetMeta, Layout, ObjectTable, UnitHeader};
use crate::value::Value;
use crate::{Result, Version, FOOTER_LEN, MAGIC, MAGIC_V2, MAGIC_V3, VERIFY_CHUNK_BYTES};
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::fs::File as FsFile;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

/// A checksum fault found by [`File::verify_all`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChecksumFault {
    /// Dataset path within the file.
    pub dataset: String,
    /// Verify unit (contiguous 64 KiB slice index, or storage chunk
    /// index for chunked layout) whose bytes no longer match.
    pub chunk: usize,
}

/// Result of scrubbing every dataset of a file ([`File::verify_all`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VerifyOutcome {
    /// Datasets visited.
    pub datasets: usize,
    /// Verify units hashed.
    pub chunks_verified: u64,
    /// Payload bytes hashed.
    pub bytes_verified: u64,
    /// Every unit whose CRC32C no longer matches the object table.
    pub mismatches: Vec<ChecksumFault>,
    /// Datasets that carry no checksums (v2 files) and were skipped.
    pub unverified_datasets: usize,
}

impl VerifyOutcome {
    /// True when nothing mismatched (unverifiable v2 datasets count as
    /// clean — they have no checksums to fail).
    pub fn is_clean(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// Generate the typed convenience aliases over the generic
/// [`File::read`] / [`File::read_hyperslab`] — one macro arm per
/// element type instead of four hand-written wrappers.
macro_rules! typed_read_aliases {
    ($($t:ty => $read:ident, $slab:ident);+ $(;)?) => {$(
        #[doc = concat!("`", stringify!($t), "` whole-dataset read.")]
        pub fn $read(&self, path: &str) -> Result<Vec<$t>> {
            self.read(path)
        }

        #[doc = concat!("`", stringify!($t), "` hyperslab read.")]
        pub fn $slab(&self, path: &str, selection: &[(u64, u64)]) -> Result<Vec<$t>> {
            self.read_hyperslab(path, selection)
        }
    )+};
}

/// An open dasf file.
///
/// `open` reads only the 16-byte superblock, the object-table footer,
/// and (v3/v4) the 32-byte commit record — array payloads stay on disk
/// until a read method asks for them. That is the property DASSA's VCA
/// exploits: merging a thousand files costs a thousand metadata opens,
/// not a terabyte of data movement.
///
/// For v3/v4 files every read verifies the CRC32C of the verify units
/// it touches before returning data, and caches which units passed so
/// repeated reads do not re-hash. The cache is per-handle: bytes that
/// rot on disk *after* a unit verified are not re-detected through the
/// same handle, but a fresh `open` re-verifies everything it reads.
/// Checksums cover the bytes as stored, so on v4 compressed datasets
/// decode only ever runs on CRC-verified input.
pub struct File {
    path: PathBuf,
    handle: RefCell<FsFile>,
    table: ObjectTable,
    /// Size of the data region in bytes (table offset − superblock).
    data_region_bytes: u64,
    version: Version,
    /// Per-dataset bitmap of verify units already hashed clean.
    verified: RefCell<HashMap<String, Vec<bool>>>,
    /// Deterministic injected bit-rot (faultline `dasf.read.corrupt`):
    /// one byte of the data region reads back flipped.
    corruption: Option<crate::faults::Corruption>,
}

impl File {
    /// Open `path`, validating magic, object table, and (v3/v4) the
    /// commit record and its checksums.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<File> {
        let m = crate::metrics::metrics();
        m.open_count.inc();
        let _trace = obs::trace::scope("dasf.open");
        let started = std::time::Instant::now();
        let result = Self::open_impl(path.as_ref());
        m.open_ns.record_duration(started.elapsed());
        result
    }

    /// Open and scrub in one step: [`File::open`] followed by
    /// [`File::verify_all`], failing with the first checksum mismatch.
    ///
    /// This is the verify-on-admit entry point for streaming ingest — a
    /// file only joins the live index after every checksummed unit has
    /// been re-hashed clean. On v2 files (no checksums) the scrub visits
    /// nothing and the open succeeds; torn or truncated files fail the
    /// open itself, so the caller sees exactly one fallible step.
    pub fn open_verified<P: AsRef<Path>>(path: P) -> Result<File> {
        let file = Self::open(path)?;
        let outcome = file.verify_all()?;
        if let Some(fault) = outcome.mismatches.first() {
            return Err(DasfError::ChecksumMismatch {
                path: file.path.display().to_string(),
                dataset: fault.dataset.clone(),
                chunk: fault.chunk,
            });
        }
        Ok(file)
    }

    fn open_impl(path: &Path) -> Result<File> {
        crate::faults::check_open(path)?;
        let path = path.to_path_buf();
        let mut f = FsFile::open(&path)?;
        let file_len = f.metadata()?.len();
        let mut header = [0u8; 16];
        f.read_exact(&mut header).map_err(map_eof)?;
        let version = if &header[..8] == MAGIC {
            Version::V4
        } else if &header[..8] == MAGIC_V3 {
            Version::V3
        } else if &header[..8] == MAGIC_V2 {
            Version::V2
        } else {
            return Err(DasfError::BadMagic);
        };
        let header_offset = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));

        let (table_offset, table_bytes) = match version {
            Version::V2 => {
                // Legacy open: no commit record, no checksums. The
                // in-place superblock patch means an unfinished v2 write
                // is only detectable by its placeholder offset.
                if header_offset < 16 {
                    return Err(DasfError::Corrupt(format!(
                        "object table offset {header_offset} inside superblock (unfinished write?)"
                    )));
                }
                if header_offset > file_len {
                    return Err(DasfError::Truncated);
                }
                f.seek(SeekFrom::Start(header_offset))?;
                let mut tb = Vec::with_capacity((file_len - header_offset) as usize);
                f.read_to_end(&mut tb)?;
                (header_offset, tb)
            }
            Version::V3 | Version::V4 => {
                if file_len < 16 + FOOTER_LEN {
                    return Err(DasfError::Truncated);
                }
                let mut footer = [0u8; FOOTER_LEN as usize];
                f.seek(SeekFrom::End(-(FOOTER_LEN as i64)))?;
                f.read_exact(&mut footer).map_err(map_eof)?;
                if &footer[24..32] != version.commit_magic() {
                    // Torn write: the file ends before the commit record.
                    return Err(DasfError::Truncated);
                }
                let t_off = u64::from_le_bytes(footer[0..8].try_into().expect("8 bytes"));
                let t_len = u64::from_le_bytes(footer[8..16].try_into().expect("8 bytes"));
                let table_crc = u32::from_le_bytes(footer[16..20].try_into().expect("4 bytes"));
                let footer_crc = u32::from_le_bytes(footer[20..24].try_into().expect("4 bytes"));
                // The footer CRC covers the reconstructed superblock
                // plus the record prefix, so flipped bytes in either are
                // distinguishable from truncation.
                let mut covered = Vec::with_capacity(36);
                covered.extend_from_slice(version.magic());
                covered.extend_from_slice(&footer[0..8]);
                covered.extend_from_slice(&footer[..20]);
                if crc32c(&covered) != footer_crc {
                    return Err(metadata_mismatch(&path, "(commit record)"));
                }
                if header_offset != t_off {
                    return Err(metadata_mismatch(&path, "(superblock)"));
                }
                if t_off < 16 {
                    return Err(DasfError::Truncated);
                }
                if t_off
                    .checked_add(t_len)
                    .and_then(|v| v.checked_add(FOOTER_LEN))
                    != Some(file_len)
                {
                    return Err(DasfError::Truncated);
                }
                f.seek(SeekFrom::Start(t_off))?;
                let mut tb = vec![0u8; t_len as usize];
                f.read_exact(&mut tb).map_err(map_eof)?;
                if crc32c(&tb) != table_crc {
                    return Err(metadata_mismatch(&path, "(object table)"));
                }
                (t_off, tb)
            }
        };
        let table = ObjectTable::decode(&table_bytes, version)?;
        let data_region_bytes = table_offset - 16;
        let corruption = crate::faults::payload_corruption(&path, data_region_bytes);
        Ok(File {
            path,
            handle: RefCell::new(f),
            table,
            data_region_bytes,
            version,
            verified: RefCell::new(HashMap::new()),
            corruption,
        })
    }

    /// The path this file was opened from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// On-disk format version ([`Version::V4`] for current files).
    pub fn version(&self) -> Version {
        self.version
    }

    /// The parsed object table.
    pub fn object_table(&self) -> &ObjectTable {
        &self.table
    }

    /// Total bytes of dataset payload in the file.
    pub fn data_region_bytes(&self) -> u64 {
        self.data_region_bytes
    }

    /// Metadata of the dataset at `path`.
    pub fn dataset(&self, path: &str) -> Result<&DatasetMeta> {
        self.table.dataset(path)
    }

    /// All dataset paths, depth-first.
    pub fn dataset_paths(&self) -> Vec<String> {
        self.table.dataset_paths()
    }

    /// Attributes of the object at `path`.
    pub fn attrs(&self, path: &str) -> Result<&BTreeMap<String, Value>> {
        self.table.attrs(path)
    }

    /// One attribute, or `None` when missing.
    pub fn attr(&self, path: &str, key: &str) -> Option<&Value> {
        self.table.attr(path, key)
    }

    fn check_dtype<T: Element>(&self, path: &str, meta: &DatasetMeta) -> Result<()> {
        if meta.dtype != T::DTYPE {
            return Err(DasfError::TypeMismatch {
                path: path.to_string(),
                expected: T::DTYPE.name(),
                actual: meta.dtype.name(),
            });
        }
        Ok(())
    }

    /// Positioned read through the shared handle, with injected bit-rot
    /// applied afterwards so it behaves exactly like a flaky sector.
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        {
            let mut handle = self.handle.borrow_mut();
            handle.seek(SeekFrom::Start(offset))?;
            handle.read_exact(buf).map_err(map_eof)?;
        }
        if let Some(c) = &self.corruption {
            crate::faults::apply_corruption(c, offset, buf);
        }
        Ok(())
    }

    /// This file's expected per-unit checksums for `meta`, or `None`
    /// when the format cannot carry them (v2).
    fn expected_sums<'a>(&self, dataset: &str, meta: &'a DatasetMeta) -> Result<Option<&'a [u32]>> {
        if self.version == Version::V2 {
            return Ok(None);
        }
        if meta.checksums.len() != meta.verify_unit_count() {
            return Err(DasfError::Corrupt(format!(
                "dataset {dataset} carries {} checksums for {} verify units",
                meta.checksums.len(),
                meta.verify_unit_count()
            )));
        }
        if meta.is_compressed() && meta.stored_units.len() != meta.verify_unit_count() {
            return Err(DasfError::Corrupt(format!(
                "dataset {dataset} carries {} unit headers for {} verify units",
                meta.stored_units.len(),
                meta.verify_unit_count()
            )));
        }
        Ok(Some(&meta.checksums))
    }

    /// Decode one checksum-verified stored unit, appending its raw
    /// payload bytes to `raw`, and charge the codec metrics.
    fn decode_stored_unit(
        &self,
        dtype: crate::Dtype,
        u: &UnitHeader,
        stored: &[u8],
        raw: &mut Vec<u8>,
    ) -> Result<()> {
        let m = crate::metrics::metrics();
        let started = std::time::Instant::now();
        codec::decode_unit(u.codec, stored, u.raw_len as usize, dtype, raw)?;
        m.codec_decode_ns.record_duration(started.elapsed());
        m.codec_bytes_raw.add(u.raw_len as u64);
        m.codec_bytes_stored.add(u.stored_len as u64);
        Ok(())
    }

    /// Read, verify, and decode stored units `first..=last` of a
    /// compressed **contiguous** dataset into one pooled raw buffer
    /// (covering raw bytes `[first, last+1) × VERIFY_CHUNK_BYTES` of the
    /// payload). The stored span is fetched with a single positioned
    /// read; each unit is CRC-checked over its stored bytes before it
    /// is decoded.
    fn decode_window(
        &self,
        dataset: &str,
        meta: &DatasetMeta,
        first: usize,
        last: usize,
    ) -> Result<crate::pool::PooledBuf<u8>> {
        let (span_off, _) = meta.stored_unit_range(first);
        let span_len: u64 = meta.stored_units[first..=last]
            .iter()
            .map(|u| u.stored_len as u64)
            .sum();
        let mut stored = crate::pool::bytes().acquire(span_len as usize);
        stored.resize(span_len as usize, 0);
        self.read_at(meta.data_offset + span_off, &mut stored)?;
        let raw_len: u64 = meta.stored_units[first..=last]
            .iter()
            .map(|u| u.raw_len as u64)
            .sum();
        let mut raw = crate::pool::bytes().acquire(raw_len as usize);
        let mut off = 0usize;
        for (unit, u) in meta.stored_units[first..=last].iter().enumerate() {
            let s = &stored[off..off + u.stored_len as usize];
            self.verify_chunk_bytes(dataset, meta, first + unit, s)?;
            self.decode_stored_unit(meta.dtype, u, s, &mut raw)?;
            off += u.stored_len as usize;
        }
        Ok(raw)
    }

    fn mismatch(&self, dataset: &str, chunk: usize) -> DasfError {
        crate::metrics::metrics().verify_mismatch.inc();
        DasfError::ChecksumMismatch {
            path: self.path.display().to_string(),
            dataset: dataset.to_string(),
            chunk,
        }
    }

    fn is_verified(&self, dataset: &str, unit: usize) -> bool {
        self.verified
            .borrow()
            .get(dataset)
            .is_some_and(|v| v.get(unit).copied().unwrap_or(false))
    }

    fn mark_verified(&self, dataset: &str, unit: usize, n_units: usize) {
        let mut map = self.verified.borrow_mut();
        let v = map
            .entry(dataset.to_string())
            .or_insert_with(|| vec![false; n_units]);
        v[unit] = true;
    }

    /// Verify the units covering payload byte range `[lo, hi)` of a
    /// contiguous dataset, reading each unverified unit from disk.
    fn verify_contiguous_range(
        &self,
        dataset: &str,
        meta: &DatasetMeta,
        lo: u64,
        hi: u64,
    ) -> Result<()> {
        let Some(sums) = self.expected_sums(dataset, meta)? else {
            return Ok(());
        };
        if hi <= lo {
            return Ok(());
        }
        let m = crate::metrics::metrics();
        let started = std::time::Instant::now();
        let first = (lo / VERIFY_CHUNK_BYTES) as usize;
        let last = ((hi - 1) / VERIFY_CHUNK_BYTES) as usize;
        let mut buf = Vec::new();
        let result = (|| {
            for unit in first..=last {
                if self.is_verified(dataset, unit) {
                    continue;
                }
                let (start, len) = meta.unit_range(unit);
                buf.resize(len as usize, 0);
                self.read_at(meta.data_offset + start, &mut buf)?;
                m.verify_chunks.inc();
                m.verify_bytes.add(len);
                if crc32c(&buf) != sums[unit] {
                    return Err(self.mismatch(dataset, unit));
                }
                self.mark_verified(dataset, unit, sums.len());
            }
            Ok(())
        })();
        m.verify_ns.record_duration(started.elapsed());
        result
    }

    /// Verify every unit of a contiguous dataset against its full
    /// payload already in memory (zero extra I/O on whole reads).
    fn verify_contiguous_buffer(
        &self,
        dataset: &str,
        meta: &DatasetMeta,
        payload: &[u8],
    ) -> Result<()> {
        let Some(sums) = self.expected_sums(dataset, meta)? else {
            return Ok(());
        };
        let m = crate::metrics::metrics();
        let started = std::time::Instant::now();
        let result = (|| {
            for unit in 0..sums.len() {
                if self.is_verified(dataset, unit) {
                    continue;
                }
                let (start, len) = meta.unit_range(unit);
                let slice = &payload[start as usize..(start + len) as usize];
                m.verify_chunks.inc();
                m.verify_bytes.add(len);
                if crc32c(slice) != sums[unit] {
                    return Err(self.mismatch(dataset, unit));
                }
                self.mark_verified(dataset, unit, sums.len());
            }
            Ok(())
        })();
        m.verify_ns.record_duration(started.elapsed());
        result
    }

    /// Verify one storage chunk of a chunked dataset from bytes already
    /// read off disk.
    fn verify_chunk_bytes(
        &self,
        dataset: &str,
        meta: &DatasetMeta,
        unit: usize,
        bytes: &[u8],
    ) -> Result<()> {
        let Some(sums) = self.expected_sums(dataset, meta)? else {
            return Ok(());
        };
        if self.is_verified(dataset, unit) {
            return Ok(());
        }
        let m = crate::metrics::metrics();
        let started = std::time::Instant::now();
        m.verify_chunks.inc();
        m.verify_bytes.add(bytes.len() as u64);
        let ok = crc32c(bytes) == sums[unit];
        m.verify_ns.record_duration(started.elapsed());
        if !ok {
            return Err(self.mismatch(dataset, unit));
        }
        self.mark_verified(dataset, unit, sums.len());
        Ok(())
    }

    /// Read an entire dataset (one I/O call for contiguous layout, one
    /// per chunk for chunked layout). Verifies every touched unit first.
    pub fn read<T: Element>(&self, path: &str) -> Result<Vec<T>> {
        let mut out = Vec::new();
        self.read_into(path, &mut out)?;
        Ok(out)
    }

    /// [`File::read`] into a caller-supplied vector (cleared first),
    /// returning the element count. Raw bytes stage through the shared
    /// [`crate::pool`], so repeated same-shaped reads recycle buffers
    /// instead of allocating per call; growth of `out` is charged to
    /// `dasf.alloc.bytes` — hand in a pooled buffer to avoid it.
    pub fn read_into<T: Element>(&self, path: &str, out: &mut Vec<T>) -> Result<usize> {
        let meta = self.table.dataset(path)?;
        self.check_dtype::<T>(path, meta)?;
        match &meta.layout {
            Layout::Contiguous => {
                let m = crate::metrics::metrics();
                m.read_count.inc();
                let _trace = obs::trace::scope("dasf.read");
                crate::faults::check_read(&self.path)?;
                let started = std::time::Instant::now();
                let n = meta.len();
                if meta.is_compressed() {
                    let raw = self.decode_window(path, meta, 0, meta.stored_units.len() - 1)?;
                    counting_growth(out, |out| decode_into(&raw, n, out));
                    m.read_bytes.add(raw.len() as u64);
                    m.read_ns.record_duration(started.elapsed());
                    return Ok(n);
                }
                let mut bytes = crate::pool::bytes().acquire(n * meta.dtype.size());
                bytes.resize(n * meta.dtype.size(), 0);
                self.read_at(meta.data_offset, &mut bytes)?;
                self.verify_contiguous_buffer(path, meta, &bytes)?;
                counting_growth(out, |out| decode_into(&bytes, n, out));
                m.read_bytes.add(bytes.len() as u64);
                m.read_ns.record_duration(started.elapsed());
                Ok(n)
            }
            Layout::Chunked { .. } => {
                let full: Vec<(u64, u64)> = meta.dims.iter().map(|&d| (0, d)).collect();
                self.read_hyperslab_into(path, &full, out)
            }
        }
    }

    /// Read a rectangular hyperslab: `selection[d] = (offset, count)` per
    /// dimension. Rows along the innermost dimension are fetched as
    /// contiguous runs; the verify units covering the selection's
    /// bounding byte range are checked before any data is returned.
    pub fn read_hyperslab<T: Element>(
        &self,
        path: &str,
        selection: &[(u64, u64)],
    ) -> Result<Vec<T>> {
        let mut out = Vec::new();
        self.read_hyperslab_into(path, selection, &mut out)?;
        Ok(out)
    }

    /// [`File::read_hyperslab`] into a caller-supplied vector (cleared
    /// first), returning the element count. Stages through the shared
    /// [`crate::pool`] like [`File::read_into`].
    pub fn read_hyperslab_into<T: Element>(
        &self,
        path: &str,
        selection: &[(u64, u64)],
        out: &mut Vec<T>,
    ) -> Result<usize> {
        let m = crate::metrics::metrics();
        m.read_count.inc();
        let _trace = obs::trace::scope("dasf.read");
        let started = std::time::Instant::now();
        let result = self.read_hyperslab_into_impl(path, selection, out);
        if let Ok(n) = &result {
            m.read_bytes.add((n * std::mem::size_of::<T>()) as u64);
        }
        m.read_ns.record_duration(started.elapsed());
        result
    }

    fn read_hyperslab_into_impl<T: Element>(
        &self,
        path: &str,
        selection: &[(u64, u64)],
        out: &mut Vec<T>,
    ) -> Result<usize> {
        crate::faults::check_read(&self.path)?;
        let meta = self.table.dataset(path)?;
        self.check_dtype::<T>(path, meta)?;
        if selection.len() != meta.dims.len() {
            return Err(DasfError::OutOfBounds(format!(
                "selection rank {} != dataset rank {}",
                selection.len(),
                meta.dims.len()
            )));
        }
        for (d, (&(off, cnt), &dim)) in selection.iter().zip(&meta.dims).enumerate() {
            if off + cnt > dim {
                return Err(DasfError::OutOfBounds(format!(
                    "dim {d}: {off}+{cnt} > {dim}"
                )));
            }
        }
        let total: u64 = selection.iter().map(|&(_, c)| c).product();
        if total == 0 {
            out.clear();
            return Ok(0);
        }
        if let Layout::Chunked {
            chunk_dims,
            chunk_offsets,
        } = &meta.layout
        {
            self.read_hyperslab_chunked(
                path,
                meta,
                selection,
                &chunk_dims.clone(),
                &chunk_offsets.clone(),
                out,
            )?;
            return Ok(total as usize);
        }

        // Row-major strides (in elements) of the full dataset.
        let ndim = meta.dims.len();
        let mut strides = vec![1u64; ndim];
        for d in (0..ndim.saturating_sub(1)).rev() {
            strides[d] = strides[d + 1] * meta.dims[d + 1];
        }

        let elem = meta.dtype.size() as u64;
        // Bounding byte range of the selection: every byte a run below
        // touches lies inside it.
        let mut lo_elem = 0u64;
        let mut hi_elem = 0u64;
        for d in 0..ndim {
            lo_elem += selection[d].0 * strides[d];
            hi_elem += (selection[d].0 + selection[d].1 - 1) * strides[d];
        }
        let (lo_byte, hi_byte) = (lo_elem * elem, (hi_elem + 1) * elem);
        // Compressed datasets cannot seek into the middle of a stored
        // unit, so decode the covering units into one raw window up
        // front (verified against their stored-byte checksums) and copy
        // runs out of it. Uncompressed datasets verify the bounding
        // range and then seek per run, exactly as in v3.
        let window = if meta.is_compressed() {
            let first = (lo_byte / VERIFY_CHUNK_BYTES) as usize;
            let last = ((hi_byte - 1) / VERIFY_CHUNK_BYTES) as usize;
            let raw = self.decode_window(path, meta, first, last)?;
            Some((raw, first as u64 * VERIFY_CHUNK_BYTES))
        } else {
            self.verify_contiguous_range(path, meta, lo_byte, hi_byte)?;
            None
        };

        let run_len = selection[ndim - 1].1; // contiguous elements per run
        let mut out_bytes = crate::pool::bytes().acquire((total * elem) as usize);

        // Odometer over all dims except the innermost.
        let mut idx = vec![0u64; ndim.saturating_sub(1)];
        loop {
            let mut elem_offset = selection[ndim - 1].0; // innermost offset
            for d in 0..ndim - 1 {
                elem_offset += (selection[d].0 + idx[d]) * strides[d];
            }
            let start = out_bytes.len();
            out_bytes.resize(start + (run_len * elem) as usize, 0);
            match &window {
                Some((raw, base)) => {
                    let off = (elem_offset * elem - base) as usize;
                    let run_bytes = (run_len * elem) as usize;
                    out_bytes[start..].copy_from_slice(&raw[off..off + run_bytes]);
                }
                None => self.read_at(
                    meta.data_offset + elem_offset * elem,
                    &mut out_bytes[start..],
                )?,
            }

            // Advance the odometer.
            let mut d = ndim.saturating_sub(1);
            loop {
                if d == 0 {
                    counting_growth(out, |out| decode_into(&out_bytes, total as usize, out));
                    return Ok(total as usize);
                }
                d -= 1;
                idx[d] += 1;
                if idx[d] < selection[d].1 {
                    break;
                }
                idx[d] = 0;
            }
        }
    }

    /// Chunked-layout hyperslab: read each intersecting chunk with one
    /// I/O call, verify it, then scatter the overlap into the output.
    #[allow(clippy::too_many_arguments)]
    fn read_hyperslab_chunked<T: Element>(
        &self,
        path: &str,
        meta: &DatasetMeta,
        selection: &[(u64, u64)],
        chunk_dims: &[u64],
        chunk_offsets: &[u64],
        out: &mut Vec<T>,
    ) -> Result<()> {
        let ndim = meta.dims.len();
        if chunk_dims.len() != ndim {
            return Err(DasfError::Corrupt("chunk rank mismatch".into()));
        }
        let grid: Vec<u64> = meta
            .dims
            .iter()
            .zip(chunk_dims)
            .map(|(&d, &c)| d.div_ceil(c.max(1)))
            .collect();
        let expected_chunks: u64 = grid.iter().product();
        if chunk_offsets.len() as u64 != expected_chunks {
            return Err(DasfError::Corrupt(format!(
                "chunk table has {} entries, grid needs {expected_chunks}",
                chunk_offsets.len()
            )));
        }
        // Output strides.
        let out_dims: Vec<u64> = selection.iter().map(|&(_, c)| c).collect();
        let mut out_strides = vec![1u64; ndim];
        for d in (0..ndim.saturating_sub(1)).rev() {
            out_strides[d] = out_strides[d + 1] * out_dims[d + 1];
        }
        let total: u64 = out_dims.iter().product();
        counting_growth(out, |out| {
            out.clear();
            out.resize(total as usize, T::default());
        });

        // Chunk-grid range intersecting the selection, per dimension.
        let lo_chunk: Vec<u64> = selection
            .iter()
            .zip(chunk_dims)
            .map(|(&(off, _), &c)| off / c.max(1))
            .collect();
        let hi_chunk: Vec<u64> = selection
            .iter()
            .zip(chunk_dims)
            .map(|(&(off, cnt), &c)| (off + cnt - 1) / c.max(1))
            .collect();

        let mut gidx = lo_chunk.clone();
        loop {
            // Linear chunk index in the grid.
            let mut flat_chunk = 0u64;
            for d in 0..ndim {
                flat_chunk = flat_chunk * grid[d] + gidx[d];
            }
            // Clipped chunk extent.
            let starts: Vec<u64> = gidx.iter().zip(chunk_dims).map(|(&g, &c)| g * c).collect();
            let lens: Vec<u64> = starts
                .iter()
                .zip(&meta.dims)
                .zip(chunk_dims)
                .map(|((&s, &d), &c)| c.min(d - s))
                .collect();
            let chunk_elems: u64 = lens.iter().product();
            let raw_bytes = chunk_elems as usize * meta.dtype.size();
            let unit = flat_chunk as usize;
            let chunk: Vec<T> = if meta.is_compressed() {
                // One stored unit per chunk: fetch its stored bytes,
                // CRC-check them, then decode into a pooled raw buffer.
                let u = meta.stored_units[unit];
                if u.raw_len as usize != raw_bytes {
                    return Err(DasfError::Corrupt(format!(
                        "chunk {unit} decodes to {} bytes, expected {raw_bytes}",
                        u.raw_len
                    )));
                }
                let mut stored = crate::pool::bytes().acquire(u.stored_len as usize);
                stored.resize(u.stored_len as usize, 0);
                self.read_at(chunk_offsets[unit], &mut stored)?;
                self.verify_chunk_bytes(path, meta, unit, &stored)?;
                let mut raw = crate::pool::bytes().acquire(raw_bytes);
                self.decode_stored_unit(meta.dtype, &u, &stored, &mut raw)?;
                decode_slice(&raw, chunk_elems as usize)
            } else {
                let mut bytes = crate::pool::bytes().acquire(raw_bytes);
                bytes.resize(raw_bytes, 0);
                self.read_at(chunk_offsets[unit], &mut bytes)?;
                self.verify_chunk_bytes(path, meta, unit, &bytes)?;
                decode_slice(&bytes, chunk_elems as usize)
            };
            // Chunk-local strides.
            let mut c_strides = vec![1u64; ndim];
            for d in (0..ndim.saturating_sub(1)).rev() {
                c_strides[d] = c_strides[d + 1] * lens[d + 1];
            }
            // Overlap of selection and chunk, per dimension (global).
            let ov_lo: Vec<u64> = (0..ndim).map(|d| selection[d].0.max(starts[d])).collect();
            let ov_hi: Vec<u64> = (0..ndim)
                .map(|d| (selection[d].0 + selection[d].1).min(starts[d] + lens[d]))
                .collect();
            if (0..ndim).all(|d| ov_lo[d] < ov_hi[d]) {
                // Copy overlap rows (innermost dim contiguous both sides).
                let run = (ov_hi[ndim - 1] - ov_lo[ndim - 1]) as usize;
                let mut idx = ov_lo.clone();
                'copy: loop {
                    let mut src = 0u64;
                    let mut dst = 0u64;
                    for d in 0..ndim {
                        src += (idx[d] - starts[d]) * c_strides[d];
                        dst += (idx[d] - selection[d].0) * out_strides[d];
                    }
                    out[dst as usize..dst as usize + run]
                        .copy_from_slice(&chunk[src as usize..src as usize + run]);
                    let mut d = ndim - 1;
                    loop {
                        if d == 0 {
                            break 'copy;
                        }
                        d -= 1;
                        idx[d] += 1;
                        if idx[d] < ov_hi[d] {
                            break;
                        }
                        idx[d] = ov_lo[d];
                    }
                }
            }
            // Advance chunk-grid odometer within [lo_chunk, hi_chunk].
            let mut d = ndim;
            loop {
                if d == 0 {
                    return Ok(());
                }
                d -= 1;
                gidx[d] += 1;
                if gidx[d] <= hi_chunk[d] {
                    break;
                }
                gidx[d] = lo_chunk[d];
            }
        }
    }

    /// Scrub every dataset: hash all verify units against the object
    /// table and collect mismatches instead of failing on the first one.
    /// I/O errors and reads past EOF still abort with `Err` — the file
    /// is torn, not merely corrupt. v2 datasets (no checksums) are
    /// counted in `unverified_datasets` and otherwise skipped.
    pub fn verify_all(&self) -> Result<VerifyOutcome> {
        let m = crate::metrics::metrics();
        let _trace = obs::trace::scope("dasf.verify");
        let started = std::time::Instant::now();
        let mut out = VerifyOutcome::default();
        let mut buf = Vec::new();
        for path in self.dataset_paths() {
            let meta = self.table.dataset(&path)?;
            out.datasets += 1;
            let Some(sums) = self.expected_sums(&path, meta)? else {
                out.unverified_datasets += 1;
                continue;
            };
            for unit in 0..sums.len() {
                // Checksums cover the *stored* bytes, so the scrub
                // hashes exactly what is on disk and never decodes.
                let (off, len) = match &meta.layout {
                    Layout::Contiguous => {
                        let (start, len) = meta.stored_unit_range(unit);
                        (meta.data_offset + start, len)
                    }
                    Layout::Chunked { chunk_offsets, .. } => {
                        let len = if meta.is_compressed() {
                            meta.stored_units[unit].stored_len as u64
                        } else {
                            meta.chunk_elems(unit) * meta.dtype.size() as u64
                        };
                        (chunk_offsets[unit], len)
                    }
                };
                buf.resize(len as usize, 0);
                self.read_at(off, &mut buf)?;
                m.verify_chunks.inc();
                m.verify_bytes.add(len);
                out.chunks_verified += 1;
                out.bytes_verified += len;
                if crc32c(&buf) == sums[unit] {
                    self.mark_verified(&path, unit, sums.len());
                } else {
                    m.verify_mismatch.inc();
                    out.mismatches.push(ChecksumFault {
                        dataset: path.clone(),
                        chunk: unit,
                    });
                }
            }
        }
        m.verify_ns.record_duration(started.elapsed());
        Ok(out)
    }

    typed_read_aliases! {
        f32 => read_f32, read_hyperslab_f32;
        f64 => read_f64, read_hyperslab_f64;
    }
}

/// Run `f` over `out` and charge any capacity growth to
/// `dasf.alloc.bytes`: pooled buffers come in pre-sized and cost
/// nothing, fresh vectors show up in the allocation ledger.
fn counting_growth<T, R>(out: &mut Vec<T>, f: impl FnOnce(&mut Vec<T>) -> R) -> R {
    let before = out.capacity();
    let result = f(out);
    let grown = out.capacity().saturating_sub(before);
    if grown > 0 {
        crate::metrics::metrics()
            .alloc_bytes
            .add((grown * std::mem::size_of::<T>()) as u64);
    }
    result
}

/// `ChecksumMismatch` for a metadata region of the file.
fn metadata_mismatch(path: &Path, region: &str) -> DasfError {
    crate::metrics::metrics().verify_mismatch.inc();
    DasfError::ChecksumMismatch {
        path: path.display().to_string(),
        dataset: region.to_string(),
        chunk: 0,
    }
}

fn map_eof(e: std::io::Error) -> DasfError {
    if e.kind() == std::io::ErrorKind::UnexpectedEof {
        DasfError::Truncated
    } else {
        DasfError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Writer;
    use std::io::Write as _;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("dasf-reader-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn write_2d(name: &str, rows: u64, cols: u64) -> PathBuf {
        let p = tmp(name);
        let mut w = Writer::create(&p).unwrap();
        let data: Vec<f32> = (0..rows * cols).map(|i| i as f32).collect();
        w.write_dataset_f32("/data", &[rows, cols], &data).unwrap();
        w.finish().unwrap();
        p
    }

    #[test]
    fn whole_read_round_trip() {
        let p = write_2d("whole.dasf", 5, 7);
        let f = File::open(&p).unwrap();
        assert_eq!(f.version(), crate::Version::V4);
        let v = f.read_f32("/data").unwrap();
        assert_eq!(v.len(), 35);
        assert_eq!(v[0], 0.0);
        assert_eq!(v[34], 34.0);
    }

    #[test]
    fn hyperslab_matches_manual_slice() {
        let (rows, cols) = (6u64, 8u64);
        let p = write_2d("slab.dasf", rows, cols);
        let f = File::open(&p).unwrap();
        let sub = f.read_hyperslab_f32("/data", &[(2, 3), (1, 4)]).unwrap();
        let mut expect = Vec::new();
        for r in 2..5u64 {
            for c in 1..5u64 {
                expect.push((r * cols + c) as f32);
            }
        }
        assert_eq!(sub, expect);
    }

    #[test]
    fn hyperslab_full_extent_equals_read() {
        let p = write_2d("full.dasf", 4, 4);
        let f = File::open(&p).unwrap();
        assert_eq!(
            f.read_hyperslab_f32("/data", &[(0, 4), (0, 4)]).unwrap(),
            f.read_f32("/data").unwrap()
        );
    }

    #[test]
    fn hyperslab_1d_and_3d() {
        let p = tmp("nd.dasf");
        let mut w = Writer::create(&p).unwrap();
        w.write_dataset_f64(
            "/one",
            &[10],
            &(0..10).map(|i| i as f64).collect::<Vec<_>>(),
        )
        .unwrap();
        let d3: Vec<f64> = (0..2 * 3 * 4).map(|i| i as f64).collect();
        w.write_dataset_f64("/three", &[2, 3, 4], &d3).unwrap();
        w.finish().unwrap();
        let f = File::open(&p).unwrap();
        assert_eq!(
            f.read_hyperslab_f64("/one", &[(3, 4)]).unwrap(),
            vec![3.0, 4.0, 5.0, 6.0]
        );
        // three[1, 0..2, 1..3]
        let sub = f
            .read_hyperslab_f64("/three", &[(1, 1), (0, 2), (1, 2)])
            .unwrap();
        let expect: Vec<f64> = vec![
            (12 + 1) as f64,
            (12 + 2) as f64,
            (12 + 4 + 1) as f64,
            (12 + 4 + 2) as f64,
        ];
        assert_eq!(sub, expect);
    }

    #[test]
    fn empty_selection_returns_empty() {
        let p = write_2d("emptysel.dasf", 4, 4);
        let f = File::open(&p).unwrap();
        assert!(f
            .read_hyperslab_f32("/data", &[(0, 0), (0, 4)])
            .unwrap()
            .is_empty());
    }

    #[test]
    fn out_of_bounds_rejected() {
        let p = write_2d("oob.dasf", 4, 4);
        let f = File::open(&p).unwrap();
        assert!(matches!(
            f.read_hyperslab_f32("/data", &[(2, 3), (0, 4)]),
            Err(DasfError::OutOfBounds(_))
        ));
        assert!(matches!(
            f.read_hyperslab_f32("/data", &[(0, 4)]),
            Err(DasfError::OutOfBounds(_))
        ));
    }

    #[test]
    fn type_mismatch_rejected() {
        let p = write_2d("type.dasf", 2, 2);
        let f = File::open(&p).unwrap();
        assert!(matches!(
            f.read_f64("/data"),
            Err(DasfError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn bad_magic_rejected() {
        let p = tmp("notdasf.bin");
        std::fs::File::create(&p)
            .unwrap()
            .write_all(b"GARBAGE!xxxxxxxx")
            .unwrap();
        assert!(matches!(File::open(&p), Err(DasfError::BadMagic)));
    }

    #[test]
    fn truncated_header_rejected() {
        let p = tmp("short.bin");
        std::fs::File::create(&p)
            .unwrap()
            .write_all(b"DASF")
            .unwrap();
        assert!(matches!(File::open(&p), Err(DasfError::Truncated)));
    }

    #[test]
    fn unfinished_write_leaves_no_file() {
        // The crash-consistent writer never exposes a torn file: an
        // unfinished write means there is nothing at the final path.
        let p = tmp("unfinished.dasf");
        std::fs::remove_file(&p).ok(); // stale runs of older suites
        {
            let mut w = Writer::create(&p).unwrap();
            w.write_dataset_f32("/d", &[2], &[1.0, 2.0]).unwrap();
            // no finish()
        }
        assert!(!p.exists());
        assert!(matches!(File::open(&p), Err(DasfError::Io(_))));
    }

    #[test]
    fn truncated_file_detected_at_open() {
        let p = write_2d("truncpay.dasf", 8, 8);
        let bytes = std::fs::read(&p).unwrap();
        let mut cut = bytes.clone();
        cut.truncate(bytes.len() - 10);
        let p2 = tmp("truncpay2.dasf");
        std::fs::write(&p2, &cut).unwrap();
        assert!(matches!(File::open(&p2), Err(DasfError::Truncated)));
    }

    #[test]
    fn verify_all_reports_clean_round_trip() {
        let p = write_2d("scrub.dasf", 8, 8);
        let f = File::open(&p).unwrap();
        let v = f.verify_all().unwrap();
        assert!(v.is_clean());
        assert_eq!(v.datasets, 1);
        assert_eq!(v.chunks_verified, 1);
        assert_eq!(v.bytes_verified, 8 * 8 * 4);
        assert_eq!(v.unverified_datasets, 0);
    }

    #[test]
    fn attrs_survive_round_trip() {
        let p = tmp("attrs.dasf");
        let mut w = Writer::create(&p).unwrap();
        w.set_attr(
            "/",
            "TimeStamp(yymmddhhmmss)",
            Value::Str("170620100545".into()),
        )
        .unwrap();
        w.create_group("/Measurement").unwrap();
        w.write_dataset_f32("/Measurement/d", &[1], &[9.0]).unwrap();
        w.set_attr(
            "/Measurement/d",
            "Number of raw data values",
            Value::Int(45),
        )
        .unwrap();
        w.finish().unwrap();
        let f = File::open(&p).unwrap();
        assert_eq!(
            f.attr("/", "TimeStamp(yymmddhhmmss)")
                .and_then(|v| v.as_str()),
            Some("170620100545")
        );
        assert_eq!(
            f.attr("/Measurement/d", "Number of raw data values")
                .and_then(|v| v.as_int()),
            Some(45)
        );
        assert_eq!(f.attr("/", "nope"), None);
    }
}
