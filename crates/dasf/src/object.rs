//! The object table: a tree of groups and datasets with attributes.
//!
//! The whole table serializes into the file footer; `File::open` reads
//! only the superblock and this table, so metadata-only operations (the
//! backbone of VCA construction and `das_search`) never touch array data.

use crate::codec::{self, Codec};
use crate::error::DasfError;
use crate::value::{check_len, get_string, put_string, Value};
use crate::{Dtype, Result, Version, VERIFY_CHUNK_BYTES};
use bytes::{Buf, BufMut};
use std::collections::BTreeMap;

/// Per-verify-unit codec record of a v4 compressed dataset: how unit
/// `i` is stored on disk. `raw_len` is the decoded payload size of the
/// unit; `stored_len` is its on-disk size; the unit's CRC32C (in
/// [`DatasetMeta::checksums`]) covers the stored bytes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnitHeader {
    /// Codec this unit was actually stored with (`Raw` when the
    /// requested codec did not shrink this particular unit).
    pub codec: Codec,
    /// Decoded (raw payload) length in bytes.
    pub raw_len: u32,
    /// On-disk (stored) length in bytes.
    pub stored_len: u32,
}

/// Metadata of one stored dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetMeta {
    /// Element type.
    pub dtype: Dtype,
    /// Extent per dimension, row-major.
    pub dims: Vec<u64>,
    /// Byte offset of the payload within the file (contiguous layout;
    /// for chunked layout, offset of the first chunk).
    pub data_offset: u64,
    /// Storage layout.
    pub layout: Layout,
    /// Attributes attached to the dataset.
    pub attrs: BTreeMap<String, Value>,
    /// CRC32C per verify unit: [`VERIFY_CHUNK_BYTES`]-sized slices of
    /// the payload for contiguous layout, one per storage chunk for
    /// chunked layout. Empty for datasets read from v2 files, which
    /// carry no checksums and are never verified. On compressed v4
    /// datasets each CRC covers the **stored** bytes of its unit.
    pub checksums: Vec<u32>,
    /// Per-unit codec headers (v4 only). Empty means the dataset is
    /// stored uncompressed, byte-identical to the v3 layout; non-empty
    /// means unit `i` occupies `stored_units[i].stored_len` bytes on
    /// disk and decodes to `stored_units[i].raw_len` payload bytes.
    pub stored_units: Vec<UnitHeader>,
}

/// Dataset storage layout, mirroring HDF5's contiguous vs chunked
/// distinction.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Layout {
    /// One row-major run of elements at `data_offset`.
    #[default]
    Contiguous,
    /// A grid of fixed-size chunks, each stored as its own row-major
    /// run. `chunk_offsets[i]` is the file offset of the i-th chunk in
    /// row-major chunk-grid order.
    Chunked {
        /// Chunk extent per dimension.
        chunk_dims: Vec<u64>,
        /// File offset of each chunk.
        chunk_offsets: Vec<u64>,
    },
}

impl DatasetMeta {
    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.dims.iter().product::<u64>() as usize
    }

    /// True when any dimension is zero.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Payload size in bytes.
    pub fn byte_len(&self) -> u64 {
        self.len() as u64 * self.dtype.size() as u64
    }

    /// Number of verify units this dataset's checksum vector must have.
    pub fn verify_unit_count(&self) -> usize {
        match &self.layout {
            Layout::Contiguous => self.byte_len().div_ceil(VERIFY_CHUNK_BYTES) as usize,
            Layout::Chunked { chunk_offsets, .. } => chunk_offsets.len(),
        }
    }

    /// Clipped element count of storage chunk `flat` (row-major
    /// chunk-grid order). Zero for contiguous layout or out-of-range
    /// indices.
    pub fn chunk_elems(&self, flat: usize) -> u64 {
        let Layout::Chunked { chunk_dims, .. } = &self.layout else {
            return 0;
        };
        let grid: Vec<u64> = self
            .dims
            .iter()
            .zip(chunk_dims)
            .map(|(&d, &c)| d.div_ceil(c.max(1)))
            .collect();
        if grid.iter().product::<u64>() <= flat as u64 {
            return 0;
        }
        // Decompose `flat` into per-dimension grid coordinates.
        let mut rem = flat as u64;
        let mut elems = 1u64;
        for d in (0..grid.len()).rev() {
            let g = rem % grid[d];
            rem /= grid[d];
            let start = g * chunk_dims[d];
            elems *= chunk_dims[d].min(self.dims[d] - start);
        }
        elems
    }

    /// Byte range `(offset, len)` of verify unit `unit`, relative to the
    /// start of this dataset's contiguous payload.
    pub fn unit_range(&self, unit: usize) -> (u64, u64) {
        let start = unit as u64 * VERIFY_CHUNK_BYTES;
        (start, VERIFY_CHUNK_BYTES.min(self.byte_len() - start))
    }

    /// True when this dataset carries per-unit codec headers, i.e. its
    /// on-disk bytes go through a decode stage.
    pub fn is_compressed(&self) -> bool {
        !self.stored_units.is_empty()
    }

    /// The codec this dataset was written with: the first non-`Raw`
    /// unit codec, or `Raw` for uncompressed datasets (and compressed
    /// datasets where every unit fell back to raw storage).
    pub fn codec(&self) -> Codec {
        self.stored_units
            .iter()
            .map(|u| u.codec)
            .find(|c| *c != Codec::Raw)
            .unwrap_or(Codec::Raw)
    }

    /// On-disk payload size in bytes: the sum of stored unit lengths
    /// for compressed datasets, [`DatasetMeta::byte_len`] otherwise.
    pub fn stored_byte_len(&self) -> u64 {
        if self.stored_units.is_empty() {
            self.byte_len()
        } else {
            self.stored_units.iter().map(|u| u.stored_len as u64).sum()
        }
    }

    /// Stored byte range `(offset, len)` of verify unit `unit` relative
    /// to the start of this dataset's **contiguous** payload. Equals
    /// [`DatasetMeta::unit_range`] for uncompressed datasets. Chunked
    /// layouts locate stored units via their `chunk_offsets` instead.
    pub fn stored_unit_range(&self, unit: usize) -> (u64, u64) {
        if self.stored_units.is_empty() {
            return self.unit_range(unit);
        }
        let off: u64 = self.stored_units[..unit]
            .iter()
            .map(|u| u.stored_len as u64)
            .sum();
        (off, self.stored_units[unit].stored_len as u64)
    }
}

/// A node in the object tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// An interior group with attributes and named children.
    Group {
        attrs: BTreeMap<String, Value>,
        children: BTreeMap<String, Node>,
    },
    /// A leaf dataset.
    Dataset(DatasetMeta),
}

impl Node {
    /// An empty group.
    pub fn empty_group() -> Node {
        Node::Group {
            attrs: BTreeMap::new(),
            children: BTreeMap::new(),
        }
    }

    fn attrs(&self) -> &BTreeMap<String, Value> {
        match self {
            Node::Group { attrs, .. } => attrs,
            Node::Dataset(d) => &d.attrs,
        }
    }

    fn attrs_mut(&mut self) -> &mut BTreeMap<String, Value> {
        match self {
            Node::Group { attrs, .. } => attrs,
            Node::Dataset(d) => &mut d.attrs,
        }
    }
}

/// The full object tree of a file, rooted at `/`.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectTable {
    root: Node,
}

/// Split `/a/b/c` into components, rejecting empty segments.
fn split_path(path: &str) -> Result<Vec<&str>> {
    let trimmed = path.trim_start_matches('/').trim_end_matches('/');
    if trimmed.is_empty() {
        return Ok(Vec::new());
    }
    let parts: Vec<&str> = trimmed.split('/').collect();
    if parts.iter().any(|p| p.is_empty()) {
        return Err(DasfError::NoSuchObject(format!("malformed path: {path}")));
    }
    Ok(parts)
}

impl Default for ObjectTable {
    fn default() -> Self {
        Self::new()
    }
}

impl ObjectTable {
    /// A table containing only the empty root group.
    pub fn new() -> Self {
        ObjectTable {
            root: Node::empty_group(),
        }
    }

    /// Look up the node at `path` (`"/"` is the root).
    pub fn get(&self, path: &str) -> Result<&Node> {
        let mut node = &self.root;
        for part in split_path(path)? {
            match node {
                Node::Group { children, .. } => {
                    node = children
                        .get(part)
                        .ok_or_else(|| DasfError::NoSuchObject(path.to_string()))?;
                }
                Node::Dataset(_) => return Err(DasfError::NoSuchObject(path.to_string())),
            }
        }
        Ok(node)
    }

    fn get_mut(&mut self, path: &str) -> Result<&mut Node> {
        let mut node = &mut self.root;
        for part in split_path(path)? {
            match node {
                Node::Group { children, .. } => {
                    node = children
                        .get_mut(part)
                        .ok_or_else(|| DasfError::NoSuchObject(path.to_string()))?;
                }
                Node::Dataset(_) => return Err(DasfError::NoSuchObject(path.to_string())),
            }
        }
        Ok(node)
    }

    /// Dataset metadata at `path`.
    pub fn dataset(&self, path: &str) -> Result<&DatasetMeta> {
        match self.get(path)? {
            Node::Dataset(d) => Ok(d),
            Node::Group { .. } => Err(DasfError::WrongKind(path.to_string())),
        }
    }

    /// All attributes of the object at `path`.
    pub fn attrs(&self, path: &str) -> Result<&BTreeMap<String, Value>> {
        Ok(self.get(path)?.attrs())
    }

    /// One attribute, or `None`.
    pub fn attr(&self, path: &str, key: &str) -> Option<&Value> {
        self.get(path).ok().and_then(|n| n.attrs().get(key))
    }

    /// Set an attribute on an existing object.
    pub fn set_attr(&mut self, path: &str, key: &str, value: Value) -> Result<()> {
        self.get_mut(path)?
            .attrs_mut()
            .insert(key.to_string(), value);
        Ok(())
    }

    /// Create an (empty) group; parents must already exist.
    pub fn create_group(&mut self, path: &str) -> Result<()> {
        let parts = split_path(path)?;
        let (name, parent_parts) = match parts.split_last() {
            Some((n, p)) => (*n, p),
            None => return Err(DasfError::AlreadyExists("/".to_string())),
        };
        let parent = self.get_mut_by_parts(parent_parts, path)?;
        match parent {
            Node::Group { children, .. } => {
                if children.contains_key(name) {
                    return Err(DasfError::AlreadyExists(path.to_string()));
                }
                children.insert(name.to_string(), Node::empty_group());
                Ok(())
            }
            Node::Dataset(_) => Err(DasfError::WrongKind(path.to_string())),
        }
    }

    /// Insert a dataset; parents must already exist.
    pub fn insert_dataset(&mut self, path: &str, meta: DatasetMeta) -> Result<()> {
        let parts = split_path(path)?;
        let (name, parent_parts) = parts
            .split_last()
            .map(|(n, p)| (*n, p))
            .ok_or_else(|| DasfError::WrongKind("/".to_string()))?;
        let parent = self.get_mut_by_parts(parent_parts, path)?;
        match parent {
            Node::Group { children, .. } => {
                if children.contains_key(name) {
                    return Err(DasfError::AlreadyExists(path.to_string()));
                }
                children.insert(name.to_string(), Node::Dataset(meta));
                Ok(())
            }
            Node::Dataset(_) => Err(DasfError::WrongKind(path.to_string())),
        }
    }

    fn get_mut_by_parts(&mut self, parts: &[&str], full: &str) -> Result<&mut Node> {
        let mut node = &mut self.root;
        for part in parts {
            match node {
                Node::Group { children, .. } => {
                    node = children
                        .get_mut(*part)
                        .ok_or_else(|| DasfError::NoSuchObject(full.to_string()))?;
                }
                Node::Dataset(_) => return Err(DasfError::NoSuchObject(full.to_string())),
            }
        }
        Ok(node)
    }

    /// Depth-first listing of all dataset paths.
    pub fn dataset_paths(&self) -> Vec<String> {
        let mut out = Vec::new();
        fn walk(node: &Node, prefix: &str, out: &mut Vec<String>) {
            if let Node::Group { children, .. } = node {
                for (name, child) in children {
                    let path = format!("{prefix}/{name}");
                    match child {
                        Node::Dataset(_) => out.push(path),
                        Node::Group { .. } => walk(child, &path, out),
                    }
                }
            }
        }
        walk(&self.root, "", &mut out);
        out
    }

    // ---- serialization -------------------------------------------------

    /// Serialize the whole tree in the current (v4) layout.
    pub fn encode(&self) -> Vec<u8> {
        self.encode_versioned(Version::V4)
    }

    /// Serialize the whole tree in a specific format version. V3 drops
    /// the per-unit codec headers and V2 additionally drops the
    /// checksum vectors (their node layouts have no slot for them);
    /// they exist for fixtures and compatibility tests.
    pub fn encode_versioned(&self, version: Version) -> Vec<u8> {
        let mut out = Vec::new();
        encode_node(&self.root, &mut out, version);
        out
    }

    /// Deserialize a tree; must consume `bytes` exactly.
    pub fn decode(bytes: &[u8], version: Version) -> Result<Self> {
        let mut slice = bytes;
        let root = decode_node(&mut slice, version)?;
        if !slice.is_empty() {
            return Err(DasfError::Corrupt(
                "trailing bytes after object table".into(),
            ));
        }
        match root {
            Node::Group { .. } => Ok(ObjectTable { root }),
            Node::Dataset(_) => Err(DasfError::Corrupt("root must be a group".into())),
        }
    }
}

const NODE_GROUP: u8 = 1;
const NODE_DATASET: u8 = 2;
const LAYOUT_CONTIGUOUS: u8 = 1;
const LAYOUT_CHUNKED: u8 = 2;

fn encode_attrs(attrs: &BTreeMap<String, Value>, out: &mut Vec<u8>) {
    out.put_u32_le(attrs.len() as u32);
    for (k, v) in attrs {
        put_string(out, k);
        v.encode(out);
    }
}

fn decode_attrs(buf: &mut &[u8]) -> Result<BTreeMap<String, Value>> {
    check_len(buf, 4)?;
    let n = buf.get_u32_le() as usize;
    let mut attrs = BTreeMap::new();
    for _ in 0..n {
        let k = get_string(buf)?;
        let v = Value::decode(buf)?;
        attrs.insert(k, v);
    }
    Ok(attrs)
}

fn encode_node(node: &Node, out: &mut Vec<u8>, version: Version) {
    match node {
        Node::Group { attrs, children } => {
            out.put_u8(NODE_GROUP);
            encode_attrs(attrs, out);
            out.put_u32_le(children.len() as u32);
            for (name, child) in children {
                put_string(out, name);
                encode_node(child, out, version);
            }
        }
        Node::Dataset(d) => {
            out.put_u8(NODE_DATASET);
            out.put_u8(d.dtype as u8);
            out.put_u32_le(d.dims.len() as u32);
            for &dim in &d.dims {
                out.put_u64_le(dim);
            }
            out.put_u64_le(d.data_offset);
            match &d.layout {
                Layout::Contiguous => out.put_u8(LAYOUT_CONTIGUOUS),
                Layout::Chunked {
                    chunk_dims,
                    chunk_offsets,
                } => {
                    out.put_u8(LAYOUT_CHUNKED);
                    out.put_u32_le(chunk_dims.len() as u32);
                    for &cd in chunk_dims {
                        out.put_u64_le(cd);
                    }
                    out.put_u32_le(chunk_offsets.len() as u32);
                    for &co in chunk_offsets {
                        out.put_u64_le(co);
                    }
                }
            }
            if version != Version::V2 {
                out.put_u32_le(d.checksums.len() as u32);
                for &c in &d.checksums {
                    out.put_u32_le(c);
                }
            }
            if version == Version::V4 {
                out.put_u32_le(d.stored_units.len() as u32);
                for u in &d.stored_units {
                    out.put_u8(u.codec.tag());
                    if let Codec::Quant { bound } = u.codec {
                        out.put_f64_le(bound);
                    }
                    out.put_u32_le(u.raw_len);
                    out.put_u32_le(u.stored_len);
                }
            }
            encode_attrs(&d.attrs, out);
        }
    }
}

fn decode_node(buf: &mut &[u8], version: Version) -> Result<Node> {
    check_len(buf, 1)?;
    match buf.get_u8() {
        NODE_GROUP => {
            let attrs = decode_attrs(buf)?;
            check_len(buf, 4)?;
            let n = buf.get_u32_le() as usize;
            let mut children = BTreeMap::new();
            for _ in 0..n {
                let name = get_string(buf)?;
                let child = decode_node(buf, version)?;
                children.insert(name, child);
            }
            Ok(Node::Group { attrs, children })
        }
        NODE_DATASET => {
            check_len(buf, 1 + 4)?;
            let code = buf.get_u8();
            let dtype = Dtype::from_code(code)
                .ok_or_else(|| DasfError::Corrupt(format!("unknown dtype code {code}")))?;
            let ndim = buf.get_u32_le() as usize;
            if ndim > 32 {
                return Err(DasfError::Corrupt(format!("absurd rank {ndim}")));
            }
            check_len(buf, ndim * 8 + 8 + 1)?;
            let dims = (0..ndim).map(|_| buf.get_u64_le()).collect();
            let data_offset = buf.get_u64_le();
            let layout = match buf.get_u8() {
                LAYOUT_CONTIGUOUS => Layout::Contiguous,
                LAYOUT_CHUNKED => {
                    check_len(buf, 4)?;
                    let ncd = buf.get_u32_le() as usize;
                    if ncd > 32 {
                        return Err(DasfError::Corrupt(format!("absurd chunk rank {ncd}")));
                    }
                    check_len(buf, ncd * 8 + 4)?;
                    let chunk_dims: Vec<u64> = (0..ncd).map(|_| buf.get_u64_le()).collect();
                    let nco = buf.get_u32_le() as usize;
                    check_len(buf, nco * 8)?;
                    let chunk_offsets = (0..nco).map(|_| buf.get_u64_le()).collect();
                    Layout::Chunked {
                        chunk_dims,
                        chunk_offsets,
                    }
                }
                other => return Err(DasfError::Corrupt(format!("unknown layout tag {other}"))),
            };
            let checksums: Vec<u32> = if version != Version::V2 {
                check_len(buf, 4)?;
                let n = buf.get_u32_le() as usize;
                check_len(buf, n * 4)?;
                (0..n).map(|_| buf.get_u32_le()).collect()
            } else {
                Vec::new()
            };
            let stored_units = if version == Version::V4 {
                check_len(buf, 4)?;
                let n = buf.get_u32_le() as usize;
                if n > checksums.len() {
                    return Err(DasfError::Corrupt(format!(
                        "{n} unit headers for {} checksums",
                        checksums.len()
                    )));
                }
                let mut units = Vec::with_capacity(n);
                for _ in 0..n {
                    check_len(buf, 1)?;
                    let codec = match buf.get_u8() {
                        codec::TAG_RAW => Codec::Raw,
                        codec::TAG_SHUFFLE_LZ => Codec::ShuffleLz,
                        codec::TAG_QUANT => {
                            check_len(buf, 8)?;
                            let bound = buf.get_f64_le();
                            if !(bound.is_finite() && bound > 0.0) {
                                return Err(DasfError::Corrupt(format!("bad quant bound {bound}")));
                            }
                            Codec::Quant { bound }
                        }
                        other => {
                            return Err(DasfError::Corrupt(format!("unknown codec tag {other}")))
                        }
                    };
                    check_len(buf, 8)?;
                    units.push(UnitHeader {
                        codec,
                        raw_len: buf.get_u32_le(),
                        stored_len: buf.get_u32_le(),
                    });
                }
                units
            } else {
                Vec::new()
            };
            let attrs = decode_attrs(buf)?;
            Ok(Node::Dataset(DatasetMeta {
                dtype,
                dims,
                data_offset,
                layout,
                attrs,
                checksums,
                stored_units,
            }))
        }
        other => Err(DasfError::Corrupt(format!("unknown node tag {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> ObjectTable {
        let mut t = ObjectTable::new();
        t.set_attr("/", "SamplingFrequency(HZ)", Value::Int(500))
            .unwrap();
        t.create_group("/Measurement").unwrap();
        t.set_attr("/Measurement", "note", Value::Str("west sac".into()))
            .unwrap();
        t.insert_dataset(
            "/Measurement/data",
            DatasetMeta {
                dtype: Dtype::F32,
                dims: vec![4, 6],
                data_offset: 16,
                layout: Layout::Contiguous,
                attrs: BTreeMap::new(),
                checksums: vec![0xDEAD_BEEF],
                stored_units: Vec::new(),
            },
        )
        .unwrap();
        t
    }

    #[test]
    fn encode_decode_round_trip() {
        let t = sample_table();
        let bytes = t.encode();
        let back = ObjectTable::decode(&bytes, Version::V4).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn unit_headers_round_trip_in_v4_only() {
        let mut t = sample_table();
        t.insert_dataset(
            "/Measurement/packed",
            DatasetMeta {
                dtype: Dtype::F32,
                dims: vec![2, 3],
                data_offset: 200,
                layout: Layout::Contiguous,
                attrs: BTreeMap::new(),
                checksums: vec![7],
                stored_units: vec![UnitHeader {
                    codec: Codec::Quant { bound: 0.25 },
                    raw_len: 24,
                    stored_len: 9,
                }],
            },
        )
        .unwrap();
        let back = ObjectTable::decode(&t.encode(), Version::V4).unwrap();
        assert_eq!(back, t);
        let d = back.dataset("/Measurement/packed").unwrap();
        assert!(d.is_compressed());
        assert_eq!(d.codec(), Codec::Quant { bound: 0.25 });
        assert_eq!(d.stored_byte_len(), 9);
        assert_eq!(d.stored_unit_range(0), (0, 9));
        // A v3 encoding has no slot for unit headers: the table encodes
        // and decodes, but the headers are gone.
        let v3 = ObjectTable::decode(&t.encode_versioned(Version::V3), Version::V3).unwrap();
        assert!(!v3.dataset("/Measurement/packed").unwrap().is_compressed());
    }

    #[test]
    fn v2_encoding_round_trips_without_checksums() {
        let t = sample_table();
        let bytes = t.encode_versioned(Version::V2);
        let back = ObjectTable::decode(&bytes, Version::V2).unwrap();
        // Identical except the checksum vector, which v2 cannot carry.
        let mut expect = t.clone();
        if let Node::Group { children, .. } = &mut expect.root {
            if let Some(Node::Group { children, .. }) = children.get_mut("Measurement") {
                if let Some(Node::Dataset(d)) = children.get_mut("data") {
                    d.checksums.clear();
                }
            }
        }
        assert_eq!(back, expect);
        // And the v2 bytes are strictly smaller (no checksum slot).
        assert!(bytes.len() < t.encode().len());
    }

    #[test]
    fn path_lookup() {
        let t = sample_table();
        assert!(t.get("/").is_ok());
        assert!(t.get("/Measurement").is_ok());
        assert!(t.dataset("/Measurement/data").is_ok());
        assert!(matches!(
            t.dataset("/Measurement"),
            Err(DasfError::WrongKind(_))
        ));
        assert!(matches!(t.get("/nope"), Err(DasfError::NoSuchObject(_))));
        assert!(matches!(
            t.get("/Measurement/data/deeper"),
            Err(DasfError::NoSuchObject(_))
        ));
    }

    #[test]
    fn trailing_slashes_tolerated() {
        let t = sample_table();
        assert!(t.get("/Measurement/").is_ok());
        assert!(t.get("Measurement").is_ok());
    }

    #[test]
    fn duplicate_creation_rejected() {
        let mut t = sample_table();
        assert!(matches!(
            t.create_group("/Measurement"),
            Err(DasfError::AlreadyExists(_))
        ));
        let meta = t.dataset("/Measurement/data").unwrap().clone();
        assert!(matches!(
            t.insert_dataset("/Measurement/data", meta),
            Err(DasfError::AlreadyExists(_))
        ));
    }

    #[test]
    fn dataset_paths_listing() {
        let mut t = sample_table();
        t.create_group("/aux").unwrap();
        t.insert_dataset(
            "/aux/extra",
            DatasetMeta {
                dtype: Dtype::I64,
                dims: vec![3],
                data_offset: 999,
                layout: Layout::Chunked {
                    chunk_dims: vec![2],
                    chunk_offsets: vec![999, 1015],
                },
                attrs: BTreeMap::new(),
                checksums: vec![1, 2],
                stored_units: Vec::new(),
            },
        )
        .unwrap();
        let mut paths = t.dataset_paths();
        paths.sort();
        assert_eq!(paths, vec!["/Measurement/data", "/aux/extra"]);
    }

    #[test]
    fn corrupt_bytes_rejected() {
        for v in [Version::V2, Version::V3, Version::V4] {
            assert!(ObjectTable::decode(&[], v).is_err());
            assert!(ObjectTable::decode(&[77], v).is_err());
        }
        let mut bytes = sample_table().encode();
        bytes.push(0); // trailing garbage
        assert!(ObjectTable::decode(&bytes, Version::V4).is_err());
    }

    #[test]
    fn dataset_meta_len() {
        let m = DatasetMeta {
            dtype: Dtype::F64,
            dims: vec![10, 20],
            data_offset: 0,
            layout: Layout::Contiguous,
            attrs: BTreeMap::new(),
            checksums: Vec::new(),
            stored_units: Vec::new(),
        };
        assert_eq!(m.len(), 200);
        assert_eq!(m.byte_len(), 1600);
        assert!(!m.is_empty());
    }
}
