//! Error type for dasf I/O.

use std::fmt;

/// Everything that can go wrong reading or writing a dasf file.
#[derive(Debug)]
pub enum DasfError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file does not start with the dasf magic.
    BadMagic,
    /// The file ends before a structure it promises (including a v3
    /// file whose trailing commit record is missing or torn).
    Truncated,
    /// Structural corruption with a description.
    Corrupt(String),
    /// Stored bytes no longer hash to their recorded CRC32C. `dataset`
    /// is the dataset path, or `"(object table)"` / `"(superblock)"` /
    /// `"(commit record)"` for metadata regions; `chunk` is the verify
    /// unit within the dataset (0 for metadata regions).
    ChecksumMismatch {
        path: String,
        dataset: String,
        chunk: usize,
    },
    /// A path names no object.
    NoSuchObject(String),
    /// An object exists but has the wrong kind (group vs dataset).
    WrongKind(String),
    /// A dataset was read with the wrong element type.
    TypeMismatch {
        path: String,
        expected: &'static str,
        actual: &'static str,
    },
    /// A hyperslab selection falls outside the dataset extent.
    OutOfBounds(String),
    /// Attempted to create an object that already exists.
    AlreadyExists(String),
    /// Data length does not match the declared dims.
    ShapeMismatch { expected: usize, actual: usize },
}

impl fmt::Display for DasfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DasfError::Io(e) => write!(f, "I/O error: {e}"),
            DasfError::BadMagic => write!(f, "not a dasf file (bad magic)"),
            DasfError::Truncated => write!(f, "file truncated"),
            DasfError::Corrupt(msg) => write!(f, "corrupt file: {msg}"),
            DasfError::ChecksumMismatch {
                path,
                dataset,
                chunk,
            } => {
                write!(
                    f,
                    "checksum mismatch in {path}: dataset {dataset}, chunk {chunk}"
                )
            }
            DasfError::NoSuchObject(p) => write!(f, "no such object: {p}"),
            DasfError::WrongKind(p) => write!(f, "object has wrong kind: {p}"),
            DasfError::TypeMismatch {
                path,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "type mismatch at {path}: expected {expected}, stored {actual}"
                )
            }
            DasfError::OutOfBounds(msg) => write!(f, "selection out of bounds: {msg}"),
            DasfError::AlreadyExists(p) => write!(f, "object already exists: {p}"),
            DasfError::ShapeMismatch { expected, actual } => {
                write!(
                    f,
                    "shape mismatch: dims require {expected} elements, got {actual}"
                )
            }
        }
    }
}

impl std::error::Error for DasfError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DasfError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DasfError {
    fn from(e: std::io::Error) -> Self {
        DasfError::Io(e)
    }
}
