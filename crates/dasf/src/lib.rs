//! `dasf` — a hierarchical array file format (HDF5 substrate).
//!
//! The DASSA paper stores DAS data in HDF5: each one-minute recording is a
//! file holding a 2-D `channel × time` array plus two levels of key-value
//! metadata (Figure 4). DASSA's storage engine relies on exactly three
//! HDF5 capabilities:
//!
//! 1. named n-dimensional datasets inside a group hierarchy,
//! 2. typed key-value attributes attached to any object,
//! 3. *hyperslab* reads — rectangular sub-regions fetched without
//!    loading the whole dataset.
//!
//! This crate implements those three capabilities from scratch in a
//! compact little-endian format, preserving the performance character
//! that matters to the paper: opening a file touches only the superblock
//! and object table (cheap metadata-only opens make VCA construction
//! fast), while dataset reads seek directly to contiguous row-major
//! runs.
//!
//! # File layout
//!
//! ```text
//! [ 0.. 8)  magic "DASF0002"
//! [ 8..16)  u64: offset of the object table
//! [16.. X)  raw dataset payloads, contiguous row-major
//! [ X.. Y)  object table: root group tree w/ attributes
//! ```
//!
//! # Example
//! ```
//! use dasf::{File, Value, Writer};
//! let dir = std::env::temp_dir().join("dasf-doc");
//! std::fs::create_dir_all(&dir).unwrap();
//! let path = dir.join("example.dasf");
//!
//! let mut w = Writer::create(&path).unwrap();
//! w.set_attr("/", "SamplingFrequency(HZ)", Value::Int(500)).unwrap();
//! w.create_group("/Measurement").unwrap();
//! w.write_dataset_f32("/Measurement/data", &[4, 6], &vec![1.5f32; 24]).unwrap();
//! w.finish().unwrap();
//!
//! let f = File::open(&path).unwrap();
//! assert_eq!(f.attr("/", "SamplingFrequency(HZ)"), Some(&Value::Int(500)));
//! let d = f.dataset("/Measurement/data").unwrap();
//! assert_eq!(d.dims, vec![4, 6]);
//! // Hyperslab: rows 1..3, cols 2..5.
//! let sub = f.read_hyperslab_f32("/Measurement/data", &[(1, 2), (2, 3)]).unwrap();
//! assert_eq!(sub.len(), 6);
//! ```

mod element;
mod error;
mod faults;
pub mod metrics;
mod object;
mod reader;
mod value;
mod writer;

pub use element::{Dtype, Element};
pub use error::DasfError;
pub use object::{DatasetMeta, Layout, Node, ObjectTable};
pub use reader::File;
pub use value::Value;
pub use writer::Writer;

/// Magic bytes at the start of every dasf file.
pub const MAGIC: &[u8; 8] = b"DASF0002";

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, DasfError>;
