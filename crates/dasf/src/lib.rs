//! `dasf` — a hierarchical array file format (HDF5 substrate).
//!
//! The DASSA paper stores DAS data in HDF5: each one-minute recording is a
//! file holding a 2-D `channel × time` array plus two levels of key-value
//! metadata (Figure 4). DASSA's storage engine relies on exactly three
//! HDF5 capabilities:
//!
//! 1. named n-dimensional datasets inside a group hierarchy,
//! 2. typed key-value attributes attached to any object,
//! 3. *hyperslab* reads — rectangular sub-regions fetched without
//!    loading the whole dataset.
//!
//! This crate implements those three capabilities from scratch in a
//! compact little-endian format, preserving the performance character
//! that matters to the paper: opening a file touches only the superblock
//! and object table (cheap metadata-only opens make VCA construction
//! fast), while dataset reads seek directly to contiguous row-major
//! runs.
//!
//! # File layout (v4, `DASF0004`)
//!
//! ```text
//! [ 0.. 8)  magic "DASF0004"
//! [ 8..16)  u64: offset of the object table
//! [16.. X)  dataset payloads: per-unit *stored* bytes (raw, or
//!           codec-compressed; see [`Codec`]), contiguous row-major
//! [ X.. Y)  object table: root group tree w/ attributes, per-dataset
//!           chunked CRC32C checksums, and per-unit codec headers
//!           `{codec, raw_len, stored_len}` for compressed datasets
//! [ Y..EOF) 32-byte commit record:
//!             u64 table offset · u64 table length ·
//!             u32 CRC32C(table) · u32 CRC32C(superblock ∥ record) ·
//!             8-byte commit magic "DASF4END"
//! ```
//!
//! Every dataset payload is checksummed in units (64 KiB of raw payload
//! for contiguous layout, one unit per storage chunk for chunked
//! layout). v4 adds an optional codec stage *under* the checksums: each
//! unit may be stored compressed, and its CRC32C covers the **stored**
//! bytes, so scrubbing (`verify_all`, `das_fsck`) hashes exactly what
//! is on disk and never pays a decode. The reader verifies the units a
//! read touches, decodes them into pooled buffers, and caches the
//! verified set, so repeated reads do not re-hash. A flipped byte
//! anywhere — payload, object table, or superblock — surfaces as
//! [`DasfError::ChecksumMismatch`], and a file truncated before its
//! commit record is complete is always [`DasfError::Truncated`], never
//! half-readable. Writers are crash-consistent: bytes stream to
//! `<name>.tmp`, which is fsynced and atomically renamed into place by
//! [`Writer::finish`]; an unfinished writer removes its temp file on
//! drop. Version-3 files (`DASF0003`, checksums but no codec stage) and
//! version-2 files (`DASF0002`, no checksums, no commit record) still
//! open through the same read path.
//!
//! # Example
//! ```
//! use dasf::{File, Value, Writer};
//! let dir = std::env::temp_dir().join("dasf-doc");
//! std::fs::create_dir_all(&dir).unwrap();
//! let path = dir.join("example.dasf");
//!
//! let mut w = Writer::create(&path).unwrap();
//! w.set_attr("/", "SamplingFrequency(HZ)", Value::Int(500)).unwrap();
//! w.create_group("/Measurement").unwrap();
//! w.write_dataset_f32("/Measurement/data", &[4, 6], &vec![1.5f32; 24]).unwrap();
//! w.finish().unwrap();
//!
//! let f = File::open(&path).unwrap();
//! assert_eq!(f.attr("/", "SamplingFrequency(HZ)"), Some(&Value::Int(500)));
//! let d = f.dataset("/Measurement/data").unwrap();
//! assert_eq!(d.dims, vec![4, 6]);
//! // Hyperslab: rows 1..3, cols 2..5.
//! let sub = f.read_hyperslab_f32("/Measurement/data", &[(1, 2), (2, 3)]).unwrap();
//! assert_eq!(sub.len(), 6);
//! ```

pub mod codec;
pub mod crc;
mod element;
mod error;
mod faults;
pub mod metrics;
mod object;
pub mod pool;
mod reader;
mod value;
mod writer;

pub use codec::Codec;
pub use element::{Dtype, Element};
pub use error::DasfError;
pub use object::{DatasetMeta, Layout, Node, ObjectTable, UnitHeader};
pub use pool::{BufferPool, PooledBuf};
pub use reader::{ChecksumFault, File, VerifyOutcome};
pub use value::Value;
pub use writer::Writer;

/// Magic bytes at the start of every current (v4) dasf file.
pub const MAGIC: &[u8; 8] = b"DASF0004";

/// Magic of the v3 format (checksums, no codec stage), still fully
/// readable.
pub const MAGIC_V3: &[u8; 8] = b"DASF0003";

/// Magic of the legacy v2 format, still opened read-only.
pub const MAGIC_V2: &[u8; 8] = b"DASF0002";

/// Trailing bytes of the v4 commit record; a file that does not end
/// with them was interrupted before `finish` completed.
pub const COMMIT_MAGIC: &[u8; 8] = b"DASF4END";

/// Trailing bytes of a v3 commit record.
pub const COMMIT_MAGIC_V3: &[u8; 8] = b"DASF3END";

/// Size of the v3/v4 commit record at the end of the file.
pub const FOOTER_LEN: u64 = 32;

/// Checksum granularity for contiguous-layout payloads: one CRC32C per
/// this many **raw** payload bytes (chunked layouts checksum per storage
/// chunk). On v4 compressed datasets each such raw unit maps to one
/// stored unit and the CRC covers the stored bytes.
pub const VERIFY_CHUNK_BYTES: u64 = 64 * 1024;

/// On-disk format version of an open file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Version {
    /// `DASF0002`: no checksums, no commit record. Read-only legacy.
    V2,
    /// `DASF0003`: chunked CRC32C checksums + trailing commit record.
    V3,
    /// `DASF0004`: v3 plus a per-unit codec stage under the checksums.
    V4,
}

impl Version {
    /// The 8-byte magic this version opens with.
    pub fn magic(self) -> &'static [u8; 8] {
        match self {
            Version::V2 => MAGIC_V2,
            Version::V3 => MAGIC_V3,
            Version::V4 => MAGIC,
        }
    }

    /// The 8-byte commit-record trailer of this version. v2 has no
    /// commit record; callers only reach this for v3/v4 files.
    pub(crate) fn commit_magic(self) -> &'static [u8; 8] {
        match self {
            Version::V2 => unreachable!("v2 files have no commit record"),
            Version::V3 => COMMIT_MAGIC_V3,
            Version::V4 => COMMIT_MAGIC,
        }
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, DasfError>;
