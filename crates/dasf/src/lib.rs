//! `dasf` — a hierarchical array file format (HDF5 substrate).
//!
//! The DASSA paper stores DAS data in HDF5: each one-minute recording is a
//! file holding a 2-D `channel × time` array plus two levels of key-value
//! metadata (Figure 4). DASSA's storage engine relies on exactly three
//! HDF5 capabilities:
//!
//! 1. named n-dimensional datasets inside a group hierarchy,
//! 2. typed key-value attributes attached to any object,
//! 3. *hyperslab* reads — rectangular sub-regions fetched without
//!    loading the whole dataset.
//!
//! This crate implements those three capabilities from scratch in a
//! compact little-endian format, preserving the performance character
//! that matters to the paper: opening a file touches only the superblock
//! and object table (cheap metadata-only opens make VCA construction
//! fast), while dataset reads seek directly to contiguous row-major
//! runs.
//!
//! # File layout (v3, `DASF0003`)
//!
//! ```text
//! [ 0.. 8)  magic "DASF0003"
//! [ 8..16)  u64: offset of the object table
//! [16.. X)  raw dataset payloads, contiguous row-major
//! [ X.. Y)  object table: root group tree w/ attributes and
//!           per-dataset chunked CRC32C checksums
//! [ Y..EOF) 32-byte commit record:
//!             u64 table offset · u64 table length ·
//!             u32 CRC32C(table) · u32 CRC32C(superblock ∥ record) ·
//!             8-byte commit magic "DASF3END"
//! ```
//!
//! Every dataset payload is checksummed in chunks (64 KiB units for
//! contiguous layout, one unit per storage chunk for chunked layout);
//! the reader verifies the units a read touches and caches the verified
//! set, so repeated reads do not re-hash. A flipped byte anywhere —
//! payload, object table, or superblock — surfaces as
//! [`DasfError::ChecksumMismatch`], and a file truncated before its
//! commit record is complete is always [`DasfError::Truncated`], never
//! half-readable. Writers are crash-consistent: bytes stream to
//! `<name>.tmp`, which is fsynced and atomically renamed into place by
//! [`Writer::finish`]; an unfinished writer removes its temp file on
//! drop. Version-2 files (`DASF0002`, no checksums, no commit record)
//! still open read-only.
//!
//! # Example
//! ```
//! use dasf::{File, Value, Writer};
//! let dir = std::env::temp_dir().join("dasf-doc");
//! std::fs::create_dir_all(&dir).unwrap();
//! let path = dir.join("example.dasf");
//!
//! let mut w = Writer::create(&path).unwrap();
//! w.set_attr("/", "SamplingFrequency(HZ)", Value::Int(500)).unwrap();
//! w.create_group("/Measurement").unwrap();
//! w.write_dataset_f32("/Measurement/data", &[4, 6], &vec![1.5f32; 24]).unwrap();
//! w.finish().unwrap();
//!
//! let f = File::open(&path).unwrap();
//! assert_eq!(f.attr("/", "SamplingFrequency(HZ)"), Some(&Value::Int(500)));
//! let d = f.dataset("/Measurement/data").unwrap();
//! assert_eq!(d.dims, vec![4, 6]);
//! // Hyperslab: rows 1..3, cols 2..5.
//! let sub = f.read_hyperslab_f32("/Measurement/data", &[(1, 2), (2, 3)]).unwrap();
//! assert_eq!(sub.len(), 6);
//! ```

pub mod crc;
mod element;
mod error;
mod faults;
pub mod metrics;
mod object;
pub mod pool;
mod reader;
mod value;
mod writer;

pub use element::{Dtype, Element};
pub use error::DasfError;
pub use object::{DatasetMeta, Layout, Node, ObjectTable};
pub use pool::{BufferPool, PooledBuf};
pub use reader::{ChecksumFault, File, VerifyOutcome};
pub use value::Value;
pub use writer::Writer;

/// Magic bytes at the start of every current (v3) dasf file.
pub const MAGIC: &[u8; 8] = b"DASF0003";

/// Magic of the legacy v2 format, still opened read-only.
pub const MAGIC_V2: &[u8; 8] = b"DASF0002";

/// Trailing bytes of the v3 commit record; a file that does not end
/// with them was interrupted before `finish` completed.
pub const COMMIT_MAGIC: &[u8; 8] = b"DASF3END";

/// Size of the v3 commit record at the end of the file.
pub const FOOTER_LEN: u64 = 32;

/// Checksum granularity for contiguous-layout payloads: one CRC32C per
/// this many payload bytes (chunked layouts checksum per storage chunk).
pub const VERIFY_CHUNK_BYTES: u64 = 64 * 1024;

/// On-disk format version of an open file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Version {
    /// `DASF0002`: no checksums, no commit record. Read-only legacy.
    V2,
    /// `DASF0003`: chunked CRC32C checksums + trailing commit record.
    V3,
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, DasfError>;
