//! Per-unit compression codecs — the stage *under* the checksum layer.
//!
//! A v4 dataset stores each verify unit (64 KiB of contiguous payload,
//! or one storage chunk) through a codec, and the unit's CRC32C covers
//! the **stored** bytes. That ordering is what keeps `das_fsck`, the
//! corruption sweeps, and the chaos digests working unchanged: a scrub
//! hashes exactly what is on disk, and decode only ever runs on bytes
//! that already passed their checksum.
//!
//! Three codecs, all zero-dependency:
//!
//! * [`Codec::Raw`] — identity; the unit is stored as its little-endian
//!   payload bytes. Every other codec falls back to `Raw` *per unit*
//!   whenever encoding would not shrink that unit, so a compressed
//!   dataset never stores more than its raw form.
//! * [`Codec::ShuffleLz`] — byte-shuffle by element width (grouping the
//!   slowly-varying high-order bytes of neighbouring samples), then a
//!   greedy LZ with RLE-capable overlapping matches. Lossless and
//!   bit-exact.
//! * [`Codec::Quant`] — controlled-lossy: quantise each float to an
//!   integer grid of step `2 × bound` (so `|x − x̂| ≤ bound`), then
//!   compress the integers losslessly as above, à la DASPack. Units
//!   holding non-finite or out-of-range samples fall back to the
//!   lossless path rather than corrupt them.
//!
//! The LZ token stream is byte-oriented: a control byte `0x00..=0x7F`
//! introduces a literal run of `ctrl + 1` bytes; `0x80..=0xFF` is a
//! match of length `(ctrl & 0x7F) + 4` at a little-endian u16 distance
//! (1..=65535) behind the output cursor. Distance 1 with a long length
//! is a byte RLE; overlapping copies are resolved byte-at-a-time.

use crate::error::DasfError;
use crate::{Dtype, Result};

/// Compression codec of one stored unit (or requested for a dataset).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Codec {
    /// Identity: stored bytes are the raw little-endian payload.
    Raw,
    /// Byte-shuffle by element width, then LZ/RLE. Lossless.
    ShuffleLz,
    /// Quantise floats to a grid of step `2 × bound`, then compress the
    /// integers losslessly. Guarantees `|x − x̂| ≤ bound` element-wise.
    Quant {
        /// Maximum absolute error permitted per sample.
        bound: f64,
    },
}

/// On-disk codec tags (one byte in the v4 unit header).
pub(crate) const TAG_RAW: u8 = 0;
pub(crate) const TAG_SHUFFLE_LZ: u8 = 1;
pub(crate) const TAG_QUANT: u8 = 2;

impl Codec {
    /// Parse a user-facing codec spec: `raw`, `shuffle-lz`, or
    /// `quant:<bound>` with a finite positive error bound.
    pub fn parse(s: &str) -> Option<Codec> {
        match s {
            "raw" => Some(Codec::Raw),
            "shuffle-lz" => Some(Codec::ShuffleLz),
            _ => s
                .strip_prefix("quant:")
                .and_then(|b| b.parse::<f64>().ok())
                .filter(|b| b.is_finite() && *b > 0.0)
                .map(|bound| Codec::Quant { bound }),
        }
    }

    /// The spec string [`Codec::parse`] accepts for this codec.
    pub fn label(&self) -> String {
        match self {
            Codec::Raw => "raw".into(),
            Codec::ShuffleLz => "shuffle-lz".into(),
            Codec::Quant { bound } => format!("quant:{bound}"),
        }
    }

    pub(crate) fn tag(&self) -> u8 {
        match self {
            Codec::Raw => TAG_RAW,
            Codec::ShuffleLz => TAG_SHUFFLE_LZ,
            Codec::Quant { .. } => TAG_QUANT,
        }
    }
}

// ---------------------------------------------------------------------
// Byte shuffle
// ---------------------------------------------------------------------

/// Transpose `data` (n elements of `elem` bytes) into `elem` byte
/// planes: plane k holds byte k of every element. Neighbouring DAS
/// samples differ mostly in their low-order bytes, so the planes of the
/// high-order bytes become long near-constant runs the LZ stage eats.
fn shuffle(data: &[u8], elem: usize) -> Vec<u8> {
    let n = data.len() / elem;
    let mut out = vec![0u8; data.len()];
    for k in 0..elem {
        let plane = &mut out[k * n..(k + 1) * n];
        for (i, slot) in plane.iter_mut().enumerate() {
            *slot = data[i * elem + k];
        }
    }
    out
}

/// Inverse of [`shuffle`]: gather each element's bytes back from the
/// planes, appending to `out`.
fn unshuffle_into(planes: &[u8], elem: usize, out: &mut Vec<u8>) {
    let n = planes.len() / elem;
    let base = out.len();
    out.resize(base + planes.len(), 0);
    let dst = &mut out[base..];
    for k in 0..elem {
        let plane = &planes[k * n..(k + 1) * n];
        for (i, &b) in plane.iter().enumerate() {
            dst[i * elem + k] = b;
        }
    }
}

// ---------------------------------------------------------------------
// LZ with RLE-capable overlapping matches
// ---------------------------------------------------------------------

const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = 131; // (0x7F) + MIN_MATCH
const MAX_LITERAL_RUN: usize = 128;
const MAX_DISTANCE: usize = u16::MAX as usize;
const HASH_BITS: u32 = 16;

fn hash4(window: &[u8]) -> usize {
    let v = u32::from_le_bytes([window[0], window[1], window[2], window[3]]);
    (v.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize
}

fn flush_literals(out: &mut Vec<u8>, mut lits: &[u8]) {
    while !lits.is_empty() {
        let run = lits.len().min(MAX_LITERAL_RUN);
        out.push((run - 1) as u8);
        out.extend_from_slice(&lits[..run]);
        lits = &lits[run..];
    }
}

fn lz_compress(src: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(src.len() / 2 + 16);
    let mut head = vec![u32::MAX; 1 << HASH_BITS];
    let n = src.len();
    let mut lit_start = 0usize;
    let mut i = 0usize;
    while i + MIN_MATCH <= n {
        let h = hash4(&src[i..]);
        let cand = head[h] as usize;
        head[h] = i as u32;
        if cand != u32::MAX as usize
            && i - cand <= MAX_DISTANCE
            && src[cand..cand + MIN_MATCH] == src[i..i + MIN_MATCH]
        {
            let max = (n - i).min(MAX_MATCH);
            let mut len = MIN_MATCH;
            while len < max && src[cand + len] == src[i + len] {
                len += 1;
            }
            flush_literals(&mut out, &src[lit_start..i]);
            out.push(0x80 | (len - MIN_MATCH) as u8);
            out.extend_from_slice(&((i - cand) as u16).to_le_bytes());
            // Seed the hash table through the matched span so the next
            // match can anchor anywhere inside it.
            let end = i + len;
            i += 1;
            while i < end && i + MIN_MATCH <= n {
                head[hash4(&src[i..])] = i as u32;
                i += 1;
            }
            i = end;
            lit_start = end;
        } else {
            i += 1;
        }
    }
    flush_literals(&mut out, &src[lit_start..]);
    out
}

fn token_err(why: &str) -> DasfError {
    DasfError::Corrupt(format!("codec: bad LZ token stream ({why})"))
}

fn lz_decompress(src: &[u8], raw_len: usize) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(raw_len);
    let mut i = 0usize;
    while i < src.len() {
        let ctrl = src[i];
        i += 1;
        if ctrl < 0x80 {
            let run = ctrl as usize + 1;
            if i + run > src.len() {
                return Err(token_err("literal run past end"));
            }
            out.extend_from_slice(&src[i..i + run]);
            i += run;
        } else {
            let len = (ctrl & 0x7F) as usize + MIN_MATCH;
            if i + 2 > src.len() {
                return Err(token_err("match distance past end"));
            }
            let dist = u16::from_le_bytes([src[i], src[i + 1]]) as usize;
            i += 2;
            if dist == 0 || dist > out.len() {
                return Err(token_err("match distance before start"));
            }
            let start = out.len() - dist;
            // Byte-at-a-time: overlapping copies (dist < len) are the
            // RLE case and must read bytes the copy itself produced.
            for k in 0..len {
                let b = out[start + k];
                out.push(b);
            }
        }
        if out.len() > raw_len {
            return Err(token_err("output overruns raw_len"));
        }
    }
    if out.len() != raw_len {
        return Err(token_err("output shorter than raw_len"));
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Quantise / dequantise
// ---------------------------------------------------------------------

/// Quantise a float unit to little-endian integers on a grid of step
/// `2 × bound`. Returns `None` (caller falls back to lossless) when the
/// unit holds non-finite samples, a quantum overflows its integer
/// width, or the dtype is not a float type.
fn quantise(raw: &[u8], dtype: Dtype, bound: f64) -> Option<Vec<u8>> {
    if !(bound.is_finite() && bound > 0.0) {
        return None;
    }
    let step = 2.0 * bound;
    let mut out = Vec::with_capacity(raw.len());
    match dtype {
        Dtype::F32 => {
            for c in raw.chunks_exact(4) {
                let x = f32::from_le_bytes([c[0], c[1], c[2], c[3]]) as f64;
                let q = (x / step).round();
                if !q.is_finite() || q.abs() > i32::MAX as f64 {
                    return None;
                }
                out.extend_from_slice(&(q as i32).to_le_bytes());
            }
        }
        Dtype::F64 => {
            for c in raw.chunks_exact(8) {
                let x = f64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]);
                let q = (x / step).round();
                // Stay safely inside f64-exact i64 territory.
                if !q.is_finite() || q.abs() >= 9.0e18 {
                    return None;
                }
                out.extend_from_slice(&(q as i64).to_le_bytes());
            }
        }
        _ => return None,
    }
    Some(out)
}

/// Reconstruct float bytes from quantised integers, appending to `out`.
fn dequantise_into(quanta: &[u8], dtype: Dtype, bound: f64, out: &mut Vec<u8>) -> Result<()> {
    let step = 2.0 * bound;
    match dtype {
        Dtype::F32 => {
            for c in quanta.chunks_exact(4) {
                let q = i32::from_le_bytes([c[0], c[1], c[2], c[3]]);
                out.extend_from_slice(&((q as f64 * step) as f32).to_le_bytes());
            }
        }
        Dtype::F64 => {
            for c in quanta.chunks_exact(8) {
                let q = i64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]);
                out.extend_from_slice(&(q as f64 * step).to_le_bytes());
            }
        }
        other => {
            return Err(DasfError::Corrupt(format!(
                "codec: quant unit with non-float dtype {}",
                other.name()
            )))
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Unit encode / decode
// ---------------------------------------------------------------------

/// Element width the shuffle stage uses for a unit of `dtype` under
/// `codec`. Quant replaces floats with same-width integers, so the
/// width never changes.
fn shuffle_width(dtype: Dtype) -> usize {
    dtype.size().max(1)
}

/// Encode one unit's raw payload bytes under `codec`. Returns `None`
/// when the unit should be stored raw — either the codec is `Raw`, or
/// encoding failed to shrink the unit (incompressible data, or a quant
/// fallback that still did not pay for itself). `Some((codec, bytes))`
/// reports the codec *actually* used, which may be the lossless
/// `ShuffleLz` when `Quant` could not quantise the unit.
pub(crate) fn encode_unit(codec: Codec, raw: &[u8], dtype: Dtype) -> Option<(Codec, Vec<u8>)> {
    let lossless = |raw: &[u8]| {
        let enc = lz_compress(&shuffle(raw, shuffle_width(dtype)));
        (enc.len() < raw.len()).then_some((Codec::ShuffleLz, enc))
    };
    match codec {
        Codec::Raw => None,
        Codec::ShuffleLz => lossless(raw),
        Codec::Quant { bound } => match quantise(raw, dtype, bound) {
            Some(quanta) => {
                let enc = lz_compress(&shuffle(&quanta, shuffle_width(dtype)));
                (enc.len() < raw.len()).then_some((Codec::Quant { bound }, enc))
            }
            None => lossless(raw),
        },
    }
}

/// Decode one stored unit, appending exactly `raw_len` raw payload
/// bytes to `out`. `stored` must already have passed its checksum; a
/// malformed token stream here means the writer or the object table is
/// wrong, surfaced as [`DasfError::Corrupt`].
pub(crate) fn decode_unit(
    codec: Codec,
    stored: &[u8],
    raw_len: usize,
    dtype: Dtype,
    out: &mut Vec<u8>,
) -> Result<()> {
    match codec {
        Codec::Raw => {
            if stored.len() != raw_len {
                return Err(token_err("raw unit length mismatch"));
            }
            out.extend_from_slice(stored);
        }
        Codec::ShuffleLz => {
            let planes = lz_decompress(stored, raw_len)?;
            unshuffle_into(&planes, shuffle_width(dtype), out);
        }
        Codec::Quant { bound } => {
            let planes = lz_decompress(stored, raw_len)?;
            let mut quanta = Vec::with_capacity(raw_len);
            unshuffle_into(&planes, shuffle_width(dtype), &mut quanta);
            dequantise_into(&quanta, dtype, bound, out)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lz_round_trip(data: &[u8]) {
        let enc = lz_compress(data);
        let dec = lz_decompress(&enc, data.len()).unwrap();
        assert_eq!(dec, data);
    }

    #[test]
    fn lz_round_trips_edge_shapes() {
        lz_round_trip(&[]);
        lz_round_trip(&[7]);
        lz_round_trip(&[1, 2, 3]);
        lz_round_trip(&vec![0u8; 100_000]); // long RLE
        lz_round_trip(&(0..=255u8).collect::<Vec<_>>()); // pure literals
        let mut mixed = Vec::new();
        for i in 0..5000u32 {
            mixed.extend_from_slice(&(i / 7).to_le_bytes());
        }
        lz_round_trip(&mixed);
        // Pseudo-random: mostly incompressible.
        let mut x = 0x9e3779b97f4a7c15u64;
        let noise: Vec<u8> = (0..10_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 32) as u8
            })
            .collect();
        lz_round_trip(&noise);
    }

    #[test]
    fn lz_compresses_runs() {
        let data = vec![42u8; 64 * 1024];
        let enc = lz_compress(&data);
        // Format ceiling: 3-byte tokens for 131-byte matches ≈ 43×.
        assert!(enc.len() < data.len() / 40, "RLE should crush constants");
    }

    #[test]
    fn lz_decoder_rejects_malformed_streams() {
        // Literal run past end.
        assert!(lz_decompress(&[5, 1, 2], 6).is_err());
        // Match with nothing behind it.
        assert!(lz_decompress(&[0x80, 1, 0], 4).is_err());
        // Zero distance.
        assert!(lz_decompress(&[0, 9, 0x80, 0, 0], 5).is_err());
        // Declared raw_len shorter than the stream decodes to.
        assert!(lz_decompress(&[3, 1, 2, 3, 4], 2).is_err());
        // Declared raw_len longer.
        assert!(lz_decompress(&[3, 1, 2, 3, 4], 9).is_err());
    }

    #[test]
    fn shuffle_round_trips() {
        for elem in [1usize, 2, 4, 8] {
            let data: Vec<u8> = (0..(elem * 37) as u32).map(|i| (i * 17) as u8).collect();
            let planes = shuffle(&data, elem);
            let mut back = Vec::new();
            unshuffle_into(&planes, elem, &mut back);
            assert_eq!(back, data, "elem width {elem}");
        }
    }

    #[test]
    fn encode_unit_is_lossless_for_shuffle_lz() {
        let samples: Vec<f32> = (0..4096).map(|i| (i as f32 * 0.01).sin()).collect();
        let raw: Vec<u8> = samples.iter().flat_map(|v| v.to_le_bytes()).collect();
        let (codec, stored) = encode_unit(Codec::ShuffleLz, &raw, Dtype::F32).unwrap();
        assert_eq!(codec, Codec::ShuffleLz);
        assert!(stored.len() < raw.len());
        let mut back = Vec::new();
        decode_unit(codec, &stored, raw.len(), Dtype::F32, &mut back).unwrap();
        assert_eq!(back, raw, "lossless codecs must be bit-exact");
    }

    #[test]
    fn encode_unit_falls_back_to_raw_on_noise() {
        let mut x = 0x243f6a8885a308d3u64;
        let raw: Vec<u8> = (0..4096)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                (x >> 33) as u8
            })
            .collect();
        assert!(encode_unit(Codec::ShuffleLz, &raw, Dtype::U8).is_none());
    }

    #[test]
    fn quant_respects_the_error_bound() {
        let bound = 1e-3;
        let samples: Vec<f32> = (0..2048).map(|i| (i as f32 * 0.37).cos() * 5.0).collect();
        let raw: Vec<u8> = samples.iter().flat_map(|v| v.to_le_bytes()).collect();
        let (codec, stored) = encode_unit(Codec::Quant { bound }, &raw, Dtype::F32).unwrap();
        assert_eq!(codec, Codec::Quant { bound });
        let mut back = Vec::new();
        decode_unit(codec, &stored, raw.len(), Dtype::F32, &mut back).unwrap();
        for (c, orig) in back.chunks_exact(4).zip(&samples) {
            let x = f32::from_le_bytes([c[0], c[1], c[2], c[3]]);
            let err = (x as f64 - *orig as f64).abs();
            // Small slack for the final f64→f32 cast of the midpoint.
            assert!(
                err <= bound + (x.abs() as f64) * 2.0 * f32::EPSILON as f64,
                "|{orig} - {x}| = {err} > {bound}"
            );
        }
    }

    #[test]
    fn quant_falls_back_to_lossless_on_non_finite() {
        let samples = [1.0f32, f32::NAN, 3.0, 3.0, 3.0, 3.0, 3.0, 3.0, 3.0, 3.0];
        let raw: Vec<u8> = samples.iter().flat_map(|v| v.to_le_bytes()).collect();
        // Too small to compress either way is fine; what matters is that
        // a successful encode is NOT the quant codec.
        if let Some((codec, stored)) = encode_unit(Codec::Quant { bound: 0.5 }, &raw, Dtype::F32) {
            assert_eq!(codec, Codec::ShuffleLz);
            let mut back = Vec::new();
            decode_unit(codec, &stored, raw.len(), Dtype::F32, &mut back).unwrap();
            assert_eq!(back, raw);
        }
    }

    #[test]
    fn parse_and_label_round_trip() {
        assert_eq!(Codec::parse("raw"), Some(Codec::Raw));
        assert_eq!(Codec::parse("shuffle-lz"), Some(Codec::ShuffleLz));
        assert_eq!(
            Codec::parse("quant:0.001"),
            Some(Codec::Quant { bound: 0.001 })
        );
        assert_eq!(Codec::parse("quant:0"), None);
        assert_eq!(Codec::parse("quant:-1"), None);
        assert_eq!(Codec::parse("quant:inf"), None);
        assert_eq!(Codec::parse("zstd"), None);
        for c in [Codec::Raw, Codec::ShuffleLz, Codec::Quant { bound: 0.001 }] {
            assert_eq!(Codec::parse(&c.label()), Some(c));
        }
    }
}
