//! Instrumentation handles into the global `obs` registry.
//!
//! dasf is the I/O bottom of every DASSA pipeline, so it publishes the
//! counters the paper's storage analysis is phrased in: how many file
//! opens (VCA merge cost is open-dominated), how many dataset reads, and
//! how many bytes moved. Handles are created once and cached; recording
//! is two relaxed atomic ops.

use obs::{Counter, Histogram};
use std::sync::OnceLock;

/// Metric names exported by this crate.
pub mod names {
    /// Count of [`crate::File::open`] calls (successful or not).
    pub const OPEN_COUNT: &str = "dasf.open.count";
    /// Histogram of per-open wall time in nanoseconds.
    pub const OPEN_NS: &str = "dasf.open.ns";
    /// Count of dataset read calls (whole reads and hyperslabs).
    pub const READ_COUNT: &str = "dasf.read.count";
    /// Total payload bytes returned by reads.
    pub const READ_BYTES: &str = "dasf.read.bytes";
    /// Histogram of per-read wall time in nanoseconds.
    pub const READ_NS: &str = "dasf.read.ns";
    /// Count of dataset writes.
    pub const WRITE_COUNT: &str = "dasf.write.count";
    /// Total payload bytes written.
    pub const WRITE_BYTES: &str = "dasf.write.bytes";
    /// Histogram of per-write wall time in nanoseconds.
    pub const WRITE_NS: &str = "dasf.write.ns";
    /// Count of faults injected by an active `faultline` plan (errors,
    /// latency stalls, and corrupted-byte applications).
    pub const FAULTS_INJECTED: &str = "dasf.faults.injected";
    /// Count of verify units (64 KiB slices / storage chunks) hashed.
    pub const VERIFY_CHUNKS: &str = "dasf.verify.chunks";
    /// Total payload bytes hashed during verification.
    pub const VERIFY_BYTES: &str = "dasf.verify.bytes";
    /// Count of checksum mismatches detected (payload units and
    /// metadata regions).
    pub const VERIFY_MISMATCH: &str = "dasf.verify.mismatch";
    /// Histogram of per-call verification wall time in nanoseconds.
    pub const VERIFY_NS: &str = "dasf.verify.ns";
    /// Fresh heap capacity (bytes) the read path had to allocate:
    /// buffer-pool misses plus growth of caller-supplied output
    /// vectors. Pool hits keep this flat — the ci pipeline gate
    /// watches it for regressions.
    pub const ALLOC_BYTES: &str = "dasf.alloc.bytes";
    /// Histogram of per-dataset codec encode wall time in nanoseconds.
    pub const CODEC_ENCODE_NS: &str = "dasf.codec.encode_ns";
    /// Histogram of per-read codec decode wall time in nanoseconds.
    pub const CODEC_DECODE_NS: &str = "dasf.codec.decode_ns";
    /// Raw (decoded) payload bytes that flowed through a codec on
    /// either side. `bytes_raw / bytes_stored` is the live compression
    /// ratio `das_top` derives from windowed deltas; uncompressed
    /// datasets touch neither counter.
    pub const CODEC_BYTES_RAW: &str = "dasf.codec.bytes_raw";
    /// Stored (on-disk) bytes corresponding to [`CODEC_BYTES_RAW`].
    pub const CODEC_BYTES_STORED: &str = "dasf.codec.bytes_stored";
}

pub(crate) struct Metrics {
    pub open_count: Counter,
    pub open_ns: Histogram,
    pub read_count: Counter,
    pub read_bytes: Counter,
    pub read_ns: Histogram,
    pub write_count: Counter,
    pub write_bytes: Counter,
    pub write_ns: Histogram,
    pub faults_injected: Counter,
    pub verify_chunks: Counter,
    pub verify_bytes: Counter,
    pub verify_mismatch: Counter,
    pub verify_ns: Histogram,
    pub alloc_bytes: Counter,
    pub codec_encode_ns: Histogram,
    pub codec_decode_ns: Histogram,
    pub codec_bytes_raw: Counter,
    pub codec_bytes_stored: Counter,
}

pub(crate) fn metrics() -> &'static Metrics {
    static METRICS: OnceLock<Metrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = obs::global();
        Metrics {
            open_count: reg.counter(names::OPEN_COUNT),
            open_ns: reg.histogram(names::OPEN_NS),
            read_count: reg.counter(names::READ_COUNT),
            read_bytes: reg.counter(names::READ_BYTES),
            read_ns: reg.histogram(names::READ_NS),
            write_count: reg.counter(names::WRITE_COUNT),
            write_bytes: reg.counter(names::WRITE_BYTES),
            write_ns: reg.histogram(names::WRITE_NS),
            faults_injected: reg.counter(names::FAULTS_INJECTED),
            verify_chunks: reg.counter(names::VERIFY_CHUNKS),
            verify_bytes: reg.counter(names::VERIFY_BYTES),
            verify_mismatch: reg.counter(names::VERIFY_MISMATCH),
            verify_ns: reg.histogram(names::VERIFY_NS),
            alloc_bytes: reg.counter(names::ALLOC_BYTES),
            codec_encode_ns: reg.histogram(names::CODEC_ENCODE_NS),
            codec_decode_ns: reg.histogram(names::CODEC_DECODE_NS),
            codec_bytes_raw: reg.counter(names::CODEC_BYTES_RAW),
            codec_bytes_stored: reg.counter(names::CODEC_BYTES_STORED),
        }
    })
}
