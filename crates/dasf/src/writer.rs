//! Writing dasf files (v4, crash-consistent).
//!
//! Bytes stream into `<name>.tmp`; `finish` writes the object table and
//! commit record, fsyncs, and atomically renames the temp file into
//! place. Until that rename, the final path either does not exist or
//! still holds its previous (complete) content — a crash mid-write can
//! never leave a torn file under the final name. Dropping an unfinished
//! writer removes the temp file.
//!
//! A writer carries a [`Codec`] (default [`Codec::Raw`]); with a
//! non-raw codec each verify unit is encoded before it is written and
//! checksummed, so the CRC covers the stored bytes. Units the codec
//! cannot shrink are stored raw per unit — a compressed dataset never
//! grows past its raw size. The crash-consistency protocol is untouched
//! either way.

use crate::codec::{self, Codec};
use crate::crc::crc32c;
use crate::element::{encode_slice, Element};
use crate::error::DasfError;
use crate::object::{DatasetMeta, Layout, ObjectTable, UnitHeader};
use crate::value::Value;
use crate::{Result, Version, VERIFY_CHUNK_BYTES};
use std::collections::BTreeMap;
use std::fs::{File as FsFile, OpenOptions};
use std::io::{BufWriter, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Streaming writer: datasets append to the data region as they arrive;
/// `finish` writes the object table, commit record, and superblock, then
/// publishes the file with an atomic rename.
pub struct Writer {
    /// Open handle on the temp file; `None` only transiently inside
    /// `finish` and `Drop`.
    file: Option<BufWriter<FsFile>>,
    final_path: PathBuf,
    tmp_path: PathBuf,
    table: ObjectTable,
    /// Next free byte in the data region.
    cursor: u64,
    finished: bool,
    version: Version,
    /// Codec requested for subsequently written datasets.
    codec: Codec,
}

/// Per-unit encodings of one dataset, ready to hit the disk.
struct EncodedUnits {
    checksums: Vec<u32>,
    stored_units: Vec<UnitHeader>,
    /// Concatenated stored bytes of every unit.
    stored: Vec<u8>,
}

/// Encode `raw` unit-by-unit (`unit_len`-sized raw slices) under
/// `requested`, charging the codec metrics. Units the codec cannot
/// shrink are stored raw with a `Raw` unit header.
fn encode_units(
    requested: Codec,
    raw: &[u8],
    dtype: crate::Dtype,
    unit_len: usize,
) -> EncodedUnits {
    let mut out = EncodedUnits {
        checksums: Vec::new(),
        stored_units: Vec::new(),
        stored: Vec::with_capacity(raw.len()),
    };
    let mut encode_spent = Duration::ZERO;
    for unit in raw.chunks(unit_len) {
        let started = Instant::now();
        let encoded = codec::encode_unit(requested, unit, dtype);
        encode_spent += started.elapsed();
        match encoded {
            Some((used, enc)) => {
                out.checksums.push(crc32c(&enc));
                out.stored_units.push(UnitHeader {
                    codec: used,
                    raw_len: unit.len() as u32,
                    stored_len: enc.len() as u32,
                });
                out.stored.extend_from_slice(&enc);
            }
            None => {
                out.checksums.push(crc32c(unit));
                out.stored_units.push(UnitHeader {
                    codec: Codec::Raw,
                    raw_len: unit.len() as u32,
                    stored_len: unit.len() as u32,
                });
                out.stored.extend_from_slice(unit);
            }
        }
    }
    let m = crate::metrics::metrics();
    m.codec_encode_ns.record_duration(encode_spent);
    m.codec_bytes_raw.add(raw.len() as u64);
    m.codec_bytes_stored.add(out.stored.len() as u64);
    out
}

/// `<path>.tmp` — the staging name a writer streams into.
fn tmp_path_for(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    PathBuf::from(os)
}

impl Writer {
    /// Start writing the file that will appear at `path` once `finish`
    /// succeeds. Creates (truncates) `path.tmp` and writes the
    /// superblock there; `path` itself is untouched until the final
    /// atomic rename.
    pub fn create<P: AsRef<Path>>(path: P) -> Result<Writer> {
        Writer::create_versioned(path, Version::V4)
    }

    /// [`Writer::create`] for an explicit format version — v3 for
    /// compatibility fixtures, v4 otherwise. v2 files are read-only.
    pub fn create_versioned<P: AsRef<Path>>(path: P, version: Version) -> Result<Writer> {
        if version == Version::V2 {
            return Err(DasfError::Corrupt("v2 files are read-only".into()));
        }
        let final_path = path.as_ref().to_path_buf();
        let tmp_path = tmp_path_for(&final_path);
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp_path)?;
        let mut w = BufWriter::new(file);
        w.write_all(version.magic())?;
        w.write_all(&0u64.to_le_bytes())?; // placeholder table offset
        Ok(Writer {
            file: Some(w),
            final_path,
            tmp_path,
            table: ObjectTable::new(),
            cursor: 16,
            finished: false,
            version,
            codec: Codec::Raw,
        })
    }

    /// Set the codec for datasets written after this call. Non-raw
    /// codecs need the v4 unit-header slot, so a v3 writer rejects
    /// them.
    pub fn set_codec(&mut self, codec: Codec) -> Result<()> {
        if self.version != Version::V4 && codec != Codec::Raw {
            return Err(DasfError::Corrupt(format!(
                "codec {} needs a v4 file; this writer targets {:?}",
                codec.label(),
                self.version
            )));
        }
        self.codec = codec;
        Ok(())
    }

    fn fh(&mut self) -> &mut BufWriter<FsFile> {
        self.file.as_mut().expect("writer file open")
    }

    /// Create a group (parents must exist). Root `/` always exists.
    pub fn create_group(&mut self, path: &str) -> Result<()> {
        self.table.create_group(path)
    }

    /// Attach an attribute to an existing object.
    pub fn set_attr(&mut self, path: &str, key: &str, value: Value) -> Result<()> {
        self.table.set_attr(path, key, value)
    }

    /// Write a dataset of any supported element type.
    ///
    /// `dims` is the row-major extent; `data.len()` must equal the product
    /// of `dims`. The payload is checksummed in [`VERIFY_CHUNK_BYTES`]
    /// units as it is encoded.
    pub fn write_dataset<T: Element>(
        &mut self,
        path: &str,
        dims: &[u64],
        data: &[T],
    ) -> Result<()> {
        let expected: u64 = dims.iter().product();
        if expected as usize != data.len() {
            return Err(DasfError::ShapeMismatch {
                expected: expected as usize,
                actual: data.len(),
            });
        }
        let bytes = encode_slice(data);
        let (checksums, stored_units, stored) = if self.codec == Codec::Raw {
            // Byte-identical to the uncompressed layout: checksums over
            // the raw units, no unit headers.
            let sums = bytes
                .chunks(VERIFY_CHUNK_BYTES as usize)
                .map(crc32c)
                .collect();
            (sums, Vec::new(), None)
        } else {
            let enc = encode_units(self.codec, &bytes, T::DTYPE, VERIFY_CHUNK_BYTES as usize);
            (enc.checksums, enc.stored_units, Some(enc.stored))
        };
        let meta = DatasetMeta {
            dtype: T::DTYPE,
            dims: dims.to_vec(),
            data_offset: self.cursor,
            layout: Layout::Contiguous,
            attrs: BTreeMap::new(),
            checksums,
            stored_units,
        };
        // Register first so path errors surface before any bytes move.
        self.table.insert_dataset(path, meta)?;
        crate::faults::check_write(&self.final_path, path)?;
        let started = Instant::now();
        let on_disk = stored.as_deref().unwrap_or(&bytes);
        self.fh().write_all(on_disk)?;
        self.cursor += on_disk.len() as u64;
        let m = crate::metrics::metrics();
        m.write_count.inc();
        m.write_bytes.add(bytes.len() as u64);
        m.write_ns.record_duration(started.elapsed());
        Ok(())
    }

    /// Write a dataset in chunked layout (HDF5-style): the array is
    /// split on a `chunk_dims` grid and each chunk is stored as its own
    /// contiguous run, so later hyperslab reads touch only the chunks
    /// they intersect. Edge chunks are clipped to the dataset extent.
    /// Each stored chunk carries its own CRC32C.
    pub fn write_dataset_chunked<T: Element>(
        &mut self,
        path: &str,
        dims: &[u64],
        chunk_dims: &[u64],
        data: &[T],
    ) -> Result<()> {
        let expected: u64 = dims.iter().product();
        if expected as usize != data.len() {
            return Err(DasfError::ShapeMismatch {
                expected: expected as usize,
                actual: data.len(),
            });
        }
        if chunk_dims.len() != dims.len() || chunk_dims.contains(&0) {
            return Err(DasfError::Corrupt(format!(
                "chunk dims {chunk_dims:?} invalid for dataset dims {dims:?}"
            )));
        }
        crate::faults::check_write(&self.final_path, path)?;
        let started = Instant::now();
        let grid: Vec<u64> = dims
            .iter()
            .zip(chunk_dims)
            .map(|(&d, &c)| d.div_ceil(c))
            .collect();
        let n_chunks: u64 = grid.iter().product();
        // Each storage chunk is one verify unit; unit headers address it
        // with u32 lengths, so huge chunks disable compression wholesale
        // rather than truncate.
        let max_chunk_bytes = chunk_dims.iter().product::<u64>() * std::mem::size_of::<T>() as u64;
        let chunk_codec = if max_chunk_bytes <= u32::MAX as u64 {
            self.codec
        } else {
            Codec::Raw
        };

        // Row-major strides of the full dataset (in elements).
        let ndim = dims.len();
        let mut strides = vec![1u64; ndim];
        for d in (0..ndim.saturating_sub(1)).rev() {
            strides[d] = strides[d + 1] * dims[d + 1];
        }

        let mut chunk_offsets = Vec::with_capacity(n_chunks as usize);
        let mut checksums = Vec::with_capacity(n_chunks as usize);
        let mut stored_units = Vec::new();
        let mut grid_idx = vec![0u64; ndim];
        for _ in 0..n_chunks {
            // Clipped extent of this chunk.
            let starts: Vec<u64> = grid_idx
                .iter()
                .zip(chunk_dims)
                .map(|(&g, &c)| g * c)
                .collect();
            let lens: Vec<u64> = starts
                .iter()
                .zip(dims)
                .zip(chunk_dims)
                .map(|((&s, &d), &c)| c.min(d - s))
                .collect();
            // Gather the chunk's elements row-major.
            let chunk_elems: u64 = lens.iter().product();
            let mut chunk = Vec::with_capacity(chunk_elems as usize);
            let mut idx = vec![0u64; ndim];
            'gather: loop {
                let mut flat = 0u64;
                for d in 0..ndim {
                    flat += (starts[d] + idx[d]) * strides[d];
                }
                // Innermost dim run is contiguous in the source.
                let run = lens[ndim - 1] as usize;
                chunk.extend_from_slice(&data[flat as usize..flat as usize + run]);
                // Odometer over all but the innermost dim.
                let mut d = ndim - 1;
                loop {
                    if d == 0 {
                        break 'gather;
                    }
                    d -= 1;
                    idx[d] += 1;
                    if idx[d] < lens[d] {
                        break;
                    }
                    idx[d] = 0;
                }
            }
            chunk_offsets.push(self.cursor);
            let bytes = encode_slice(&chunk);
            if chunk_codec == Codec::Raw {
                checksums.push(crc32c(&bytes));
                self.fh().write_all(&bytes)?;
                self.cursor += bytes.len() as u64;
            } else {
                let enc = encode_units(chunk_codec, &bytes, T::DTYPE, bytes.len().max(1));
                checksums.extend(enc.checksums);
                stored_units.extend(enc.stored_units);
                self.fh().write_all(&enc.stored)?;
                self.cursor += enc.stored.len() as u64;
            }
            // Advance the chunk-grid odometer.
            for d in (0..ndim).rev() {
                grid_idx[d] += 1;
                if grid_idx[d] < grid[d] {
                    break;
                }
                grid_idx[d] = 0;
            }
        }
        let meta = DatasetMeta {
            dtype: T::DTYPE,
            dims: dims.to_vec(),
            data_offset: chunk_offsets.first().copied().unwrap_or(self.cursor),
            layout: Layout::Chunked {
                chunk_dims: chunk_dims.to_vec(),
                chunk_offsets,
            },
            attrs: BTreeMap::new(),
            checksums,
            stored_units,
        };
        self.table.insert_dataset(path, meta)?;
        let m = crate::metrics::metrics();
        m.write_count.inc();
        m.write_bytes
            .add(expected * std::mem::size_of::<T>() as u64);
        m.write_ns.record_duration(started.elapsed());
        Ok(())
    }

    /// Convenience wrapper for `f32` data (the DAS amplitude type).
    pub fn write_dataset_f32(&mut self, path: &str, dims: &[u64], data: &[f32]) -> Result<()> {
        self.write_dataset(path, dims, data)
    }

    /// Convenience wrapper for `f64` data.
    pub fn write_dataset_f64(&mut self, path: &str, dims: &[u64], data: &[f64]) -> Result<()> {
        self.write_dataset(path, dims, data)
    }

    /// Bytes of dataset payload written so far — stored (on-disk)
    /// bytes, which with a non-raw codec can be fewer than the raw
    /// payload bytes.
    pub fn data_bytes_written(&self) -> u64 {
        self.cursor - 16
    }

    /// Write the object table and commit record, patch the superblock,
    /// fsync, and atomically rename the temp file to its final path.
    /// Consumes the writer; dropping without calling this removes the
    /// temp file and leaves the final path untouched.
    pub fn finish(mut self) -> Result<()> {
        let table_offset = self.cursor;
        let table_bytes = self.table.encode_versioned(self.version);

        // 32-byte commit record. Its own CRC covers the reconstructed
        // superblock plus the record prefix, so a flipped byte in either
        // the stored superblock or the record itself is detectable.
        let mut footer = Vec::with_capacity(32);
        footer.extend_from_slice(&table_offset.to_le_bytes());
        footer.extend_from_slice(&(table_bytes.len() as u64).to_le_bytes());
        footer.extend_from_slice(&crc32c(&table_bytes).to_le_bytes());
        let mut covered = Vec::with_capacity(36);
        covered.extend_from_slice(self.version.magic());
        covered.extend_from_slice(&table_offset.to_le_bytes());
        covered.extend_from_slice(&footer[..20]);
        footer.extend_from_slice(&crc32c(&covered).to_le_bytes());
        footer.extend_from_slice(self.version.commit_magic());
        debug_assert_eq!(footer.len(), 32);

        let w = self.fh();
        w.write_all(&table_bytes)?;
        w.write_all(&footer)?;
        w.flush()?;
        let mut inner = self
            .file
            .take()
            .expect("writer file open")
            .into_inner()
            .map_err(|e| DasfError::Io(e.into_error()))?;
        inner.seek(SeekFrom::Start(8))?;
        inner.write_all(&table_offset.to_le_bytes())?;
        inner.sync_all().ok(); // best effort; tmpfs test dirs may refuse
        drop(inner);
        std::fs::rename(&self.tmp_path, &self.final_path)?;
        // Persist the rename itself (best effort, same rationale).
        if let Some(dir) = self.final_path.parent() {
            if let Ok(d) = FsFile::open(dir) {
                d.sync_all().ok();
            }
        }
        self.finished = true;
        Ok(())
    }
}

impl Drop for Writer {
    fn drop(&mut self) {
        if !self.finished {
            // Close the handle before unlinking, then abort the write.
            drop(self.file.take());
            std::fs::remove_file(&self.tmp_path).ok();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::File;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("dasf-writer-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn shape_mismatch_rejected() {
        let mut w = Writer::create(tmp("shape.dasf")).unwrap();
        let err = w.write_dataset_f32("/d", &[2, 3], &[0.0; 5]).unwrap_err();
        assert!(matches!(
            err,
            DasfError::ShapeMismatch {
                expected: 6,
                actual: 5
            }
        ));
    }

    #[test]
    fn dataset_into_missing_group_rejected() {
        let mut w = Writer::create(tmp("missing.dasf")).unwrap();
        let err = w.write_dataset_f32("/g/d", &[1], &[0.0]).unwrap_err();
        assert!(matches!(err, DasfError::NoSuchObject(_)));
    }

    #[test]
    fn empty_file_round_trips() {
        let p = tmp("empty.dasf");
        Writer::create(&p).unwrap().finish().unwrap();
        let f = File::open(&p).unwrap();
        assert!(f.dataset_paths().is_empty());
    }

    #[test]
    fn data_bytes_written_tracks_payload() {
        let mut w = Writer::create(tmp("count.dasf")).unwrap();
        assert_eq!(w.data_bytes_written(), 0);
        w.write_dataset_f64("/a", &[8], &[0.0; 8]).unwrap();
        assert_eq!(w.data_bytes_written(), 64);
    }

    #[test]
    fn unfinished_writer_leaves_no_file_behind() {
        let p = tmp("aborted.dasf");
        let staging = tmp_path_for(&p);
        {
            let mut w = Writer::create(&p).unwrap();
            w.write_dataset_f32("/d", &[2], &[1.0, 2.0]).unwrap();
            assert!(staging.exists(), "writer streams into the temp file");
            assert!(!p.exists(), "final path untouched before finish");
            // no finish()
        }
        assert!(!staging.exists(), "drop removes the temp file");
        assert!(!p.exists());
    }

    #[test]
    fn finish_replaces_previous_content_atomically() {
        let p = tmp("replace.dasf");
        let mut w = Writer::create(&p).unwrap();
        w.write_dataset_f32("/d", &[1], &[1.0]).unwrap();
        w.finish().unwrap();

        // While a second writer is mid-flight, the old file is intact.
        let mut w2 = Writer::create(&p).unwrap();
        w2.write_dataset_f32("/d", &[1], &[2.0]).unwrap();
        assert_eq!(File::open(&p).unwrap().read_f32("/d").unwrap(), vec![1.0]);
        w2.finish().unwrap();
        assert_eq!(File::open(&p).unwrap().read_f32("/d").unwrap(), vec![2.0]);
        assert!(!tmp_path_for(&p).exists());
    }

    #[test]
    fn contiguous_checksums_cover_every_unit() {
        let p = tmp("sums.dasf");
        let mut w = Writer::create(&p).unwrap();
        // 3 × 64 KiB units: 40k f32 = 160_000 bytes → units of 65536,
        // 65536, 28928 bytes.
        let data: Vec<f32> = (0..40_000).map(|i| i as f32).collect();
        w.write_dataset_f32("/big", &[40_000], &data).unwrap();
        w.write_dataset_chunked("/ch", &[4, 4], &[2, 3], &data[..16])
            .unwrap();
        w.finish().unwrap();
        let f = File::open(&p).unwrap();
        let big = f.dataset("/big").unwrap();
        assert_eq!(big.checksums.len(), 3);
        assert_eq!(big.checksums.len(), big.verify_unit_count());
        let ch = f.dataset("/ch").unwrap();
        // Grid 2×2 → 4 chunks, one checksum each.
        assert_eq!(ch.checksums.len(), 4);
        assert_eq!(ch.checksums.len(), ch.verify_unit_count());
    }
}
