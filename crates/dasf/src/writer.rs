//! Writing dasf files.

use crate::element::{encode_slice, Element};
use crate::error::DasfError;
use crate::object::{DatasetMeta, Layout, ObjectTable};
use crate::value::Value;
use crate::{Result, MAGIC};
use std::collections::BTreeMap;
use std::fs::{File as FsFile, OpenOptions};
use std::io::{BufWriter, Seek, SeekFrom, Write};
use std::path::Path;

/// Streaming writer: datasets append to the data region as they arrive;
/// `finish` writes the object table footer and patches the superblock.
pub struct Writer {
    file: BufWriter<FsFile>,
    path: std::path::PathBuf,
    table: ObjectTable,
    /// Next free byte in the data region.
    cursor: u64,
}

impl Writer {
    /// Create (truncate) `path` and write the superblock.
    pub fn create<P: AsRef<Path>>(path: P) -> Result<Writer> {
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path.as_ref())?;
        let mut w = BufWriter::new(file);
        w.write_all(MAGIC)?;
        w.write_all(&0u64.to_le_bytes())?; // placeholder table offset
        Ok(Writer {
            file: w,
            path: path.as_ref().to_path_buf(),
            table: ObjectTable::new(),
            cursor: 16,
        })
    }

    /// Create a group (parents must exist). Root `/` always exists.
    pub fn create_group(&mut self, path: &str) -> Result<()> {
        self.table.create_group(path)
    }

    /// Attach an attribute to an existing object.
    pub fn set_attr(&mut self, path: &str, key: &str, value: Value) -> Result<()> {
        self.table.set_attr(path, key, value)
    }

    /// Write a dataset of any supported element type.
    ///
    /// `dims` is the row-major extent; `data.len()` must equal the product
    /// of `dims`.
    pub fn write_dataset<T: Element>(
        &mut self,
        path: &str,
        dims: &[u64],
        data: &[T],
    ) -> Result<()> {
        let expected: u64 = dims.iter().product();
        if expected as usize != data.len() {
            return Err(DasfError::ShapeMismatch {
                expected: expected as usize,
                actual: data.len(),
            });
        }
        let meta = DatasetMeta {
            dtype: T::DTYPE,
            dims: dims.to_vec(),
            data_offset: self.cursor,
            layout: Layout::Contiguous,
            attrs: BTreeMap::new(),
        };
        // Register first so path errors surface before any bytes move.
        self.table.insert_dataset(path, meta)?;
        crate::faults::check_write(&self.path, path)?;
        let started = std::time::Instant::now();
        let bytes = encode_slice(data);
        self.file.write_all(&bytes)?;
        self.cursor += bytes.len() as u64;
        let m = crate::metrics::metrics();
        m.write_count.inc();
        m.write_bytes.add(bytes.len() as u64);
        m.write_ns.record_duration(started.elapsed());
        Ok(())
    }

    /// Write a dataset in chunked layout (HDF5-style): the array is
    /// split on a `chunk_dims` grid and each chunk is stored as its own
    /// contiguous run, so later hyperslab reads touch only the chunks
    /// they intersect. Edge chunks are clipped to the dataset extent.
    pub fn write_dataset_chunked<T: Element>(
        &mut self,
        path: &str,
        dims: &[u64],
        chunk_dims: &[u64],
        data: &[T],
    ) -> Result<()> {
        let expected: u64 = dims.iter().product();
        if expected as usize != data.len() {
            return Err(DasfError::ShapeMismatch {
                expected: expected as usize,
                actual: data.len(),
            });
        }
        if chunk_dims.len() != dims.len() || chunk_dims.contains(&0) {
            return Err(DasfError::Corrupt(format!(
                "chunk dims {chunk_dims:?} invalid for dataset dims {dims:?}"
            )));
        }
        crate::faults::check_write(&self.path, path)?;
        let started = std::time::Instant::now();
        let grid: Vec<u64> = dims
            .iter()
            .zip(chunk_dims)
            .map(|(&d, &c)| d.div_ceil(c))
            .collect();
        let n_chunks: u64 = grid.iter().product();

        // Row-major strides of the full dataset (in elements).
        let ndim = dims.len();
        let mut strides = vec![1u64; ndim];
        for d in (0..ndim.saturating_sub(1)).rev() {
            strides[d] = strides[d + 1] * dims[d + 1];
        }

        let mut chunk_offsets = Vec::with_capacity(n_chunks as usize);
        let mut grid_idx = vec![0u64; ndim];
        for _ in 0..n_chunks {
            // Clipped extent of this chunk.
            let starts: Vec<u64> = grid_idx
                .iter()
                .zip(chunk_dims)
                .map(|(&g, &c)| g * c)
                .collect();
            let lens: Vec<u64> = starts
                .iter()
                .zip(dims)
                .zip(chunk_dims)
                .map(|((&s, &d), &c)| c.min(d - s))
                .collect();
            // Gather the chunk's elements row-major.
            let chunk_elems: u64 = lens.iter().product();
            let mut chunk = Vec::with_capacity(chunk_elems as usize);
            let mut idx = vec![0u64; ndim];
            'gather: loop {
                let mut flat = 0u64;
                for d in 0..ndim {
                    flat += (starts[d] + idx[d]) * strides[d];
                }
                // Innermost dim run is contiguous in the source.
                let run = lens[ndim - 1] as usize;
                chunk.extend_from_slice(&data[flat as usize..flat as usize + run]);
                // Odometer over all but the innermost dim.
                let mut d = ndim - 1;
                loop {
                    if d == 0 {
                        break 'gather;
                    }
                    d -= 1;
                    idx[d] += 1;
                    if idx[d] < lens[d] {
                        break;
                    }
                    idx[d] = 0;
                }
            }
            chunk_offsets.push(self.cursor);
            let bytes = encode_slice(&chunk);
            self.file.write_all(&bytes)?;
            self.cursor += bytes.len() as u64;
            // Advance the chunk-grid odometer.
            for d in (0..ndim).rev() {
                grid_idx[d] += 1;
                if grid_idx[d] < grid[d] {
                    break;
                }
                grid_idx[d] = 0;
            }
        }
        let meta = DatasetMeta {
            dtype: T::DTYPE,
            dims: dims.to_vec(),
            data_offset: chunk_offsets.first().copied().unwrap_or(self.cursor),
            layout: Layout::Chunked {
                chunk_dims: chunk_dims.to_vec(),
                chunk_offsets,
            },
            attrs: BTreeMap::new(),
        };
        self.table.insert_dataset(path, meta)?;
        let m = crate::metrics::metrics();
        m.write_count.inc();
        m.write_bytes
            .add(expected * std::mem::size_of::<T>() as u64);
        m.write_ns.record_duration(started.elapsed());
        Ok(())
    }

    /// Convenience wrapper for `f32` data (the DAS amplitude type).
    pub fn write_dataset_f32(&mut self, path: &str, dims: &[u64], data: &[f32]) -> Result<()> {
        self.write_dataset(path, dims, data)
    }

    /// Convenience wrapper for `f64` data.
    pub fn write_dataset_f64(&mut self, path: &str, dims: &[u64], data: &[f64]) -> Result<()> {
        self.write_dataset(path, dims, data)
    }

    /// Bytes of dataset payload written so far.
    pub fn data_bytes_written(&self) -> u64 {
        self.cursor - 16
    }

    /// Write the object table and patch the superblock. Consumes the
    /// writer; dropping without calling this leaves an unreadable file.
    pub fn finish(mut self) -> Result<()> {
        let table_bytes = self.table.encode();
        self.file.write_all(&table_bytes)?;
        self.file.flush()?;
        let mut inner = self
            .file
            .into_inner()
            .map_err(|e| DasfError::Io(e.into_error()))?;
        inner.seek(SeekFrom::Start(8))?;
        inner.write_all(&self.cursor.to_le_bytes())?;
        inner.sync_data().ok(); // best effort; tmpfs test dirs may refuse
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::File;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("dasf-writer-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn shape_mismatch_rejected() {
        let mut w = Writer::create(tmp("shape.dasf")).unwrap();
        let err = w.write_dataset_f32("/d", &[2, 3], &[0.0; 5]).unwrap_err();
        assert!(matches!(
            err,
            DasfError::ShapeMismatch {
                expected: 6,
                actual: 5
            }
        ));
    }

    #[test]
    fn dataset_into_missing_group_rejected() {
        let mut w = Writer::create(tmp("missing.dasf")).unwrap();
        let err = w.write_dataset_f32("/g/d", &[1], &[0.0]).unwrap_err();
        assert!(matches!(err, DasfError::NoSuchObject(_)));
    }

    #[test]
    fn empty_file_round_trips() {
        let p = tmp("empty.dasf");
        Writer::create(&p).unwrap().finish().unwrap();
        let f = File::open(&p).unwrap();
        assert!(f.dataset_paths().is_empty());
    }

    #[test]
    fn data_bytes_written_tracks_payload() {
        let mut w = Writer::create(tmp("count.dasf")).unwrap();
        assert_eq!(w.data_bytes_written(), 0);
        w.write_dataset_f64("/a", &[8], &[0.0; 8]).unwrap();
        assert_eq!(w.data_bytes_written(), 64);
    }
}
