//! Property tests for ArrayUDF: the distributed engine must equal the
//! serial one for arbitrary shapes, rank counts, ghost sizes, and
//! strides.

use arrayudf::dist::{gather_rows, partition};
use arrayudf::{apply, apply_mt, Array2, Ghost, Stencil, Stride};
use proptest::prelude::*;

fn array(rows: usize, cols: usize, seed: u64) -> Array2<f64> {
    Array2::from_fn(rows, cols, |r, c| {
        let mut z = seed
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(((r * 10_007 + c) as u64).wrapping_mul(0xBF58476D1CE4E5B9));
        z ^= z >> 30;
        z = z.wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 27;
        (z % 1000) as f64 / 100.0 - 5.0
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn apply_mt_equals_apply(rows in 1usize..12, cols in 1usize..24,
                             threads in 1usize..6, seed in any::<u64>()) {
        let a = array(rows, cols, seed);
        let udf = |s: &Stencil<f64>| s.at(-1, 0) + 2.0 * s.value() - s.at(1, 1);
        let serial = apply(&a, Ghost::both(1, 1), Stride::unit(), udf);
        let mt = apply_mt(&a, Ghost::both(1, 1), Stride::unit(), threads, udf);
        prop_assert_eq!(serial, mt);
    }

    #[test]
    fn dist_equals_serial_for_random_geometry(
        rows in 1usize..16,
        cols in 2usize..20,
        ranks in 1usize..6,
        ghost in 1usize..4,
        seed in any::<u64>(),
    ) {
        // Single-hop halo exchange requires ghost <= smallest partition.
        prop_assume!(ghost <= rows / ranks.max(1) && rows >= ranks);
        let a = array(rows, cols, seed);
        let g = Ghost::both(ghost, ghost);
        // UDF reach stays within the declared ghost.
        let reach = ghost as isize;
        let udf = move |s: &Stencil<f64>| {
            s.at(-reach, -reach) + s.value() * 3.0 + s.at(reach, reach)
        };
        let serial = apply(&a, g, Stride::unit(), udf);
        let gathered = minimpi::run(ranks, |comm| {
            let own = partition(rows, comm.size(), comm.rank());
            let local = a.row_block(own.start, own.end);
            let out = arrayudf::dist::apply_dist(comm, &local, rows, g, Stride::unit(), 2, udf);
            gather_rows(comm, out)
        });
        prop_assert_eq!(gathered[0].clone().expect("root"), serial);
    }

    #[test]
    fn strided_time_dims(rows in 1usize..10, cols in 1usize..40,
                         stride_t in 1usize..7, seed in any::<u64>()) {
        let a = array(rows, cols, seed);
        let st = Stride { time: stride_t, channel: 1 };
        let out = apply(&a, Ghost::none(), st, |s| s.value());
        prop_assert_eq!(out.rows(), rows);
        prop_assert_eq!(out.cols(), cols.div_ceil(stride_t));
        // Each output samples the right input cell.
        for r in 0..out.rows() {
            for c in 0..out.cols() {
                prop_assert_eq!(out.get(r, c), a.get(r, c * stride_t));
            }
        }
    }

    #[test]
    fn partition_is_total_and_balanced(total in 0usize..300, size in 1usize..20) {
        let mut covered = 0usize;
        let mut min_len = usize::MAX;
        let mut max_len = 0usize;
        for rank in 0..size {
            let r = partition(total, size, rank);
            prop_assert_eq!(r.start, covered, "contiguous");
            covered = r.end;
            min_len = min_len.min(r.len());
            max_len = max_len.max(r.len());
        }
        prop_assert_eq!(covered, total, "complete");
        prop_assert!(max_len - min_len <= 1, "balanced within one row");
    }

    #[test]
    fn halo_exchange_provides_true_neighbours(
        rows in 2usize..20,
        cols in 1usize..8,
        ranks in 2usize..5,
        ghost in 1usize..4,
        seed in any::<u64>(),
    ) {
        prop_assume!(ghost <= rows / ranks);
        let a = array(rows, cols, seed);
        minimpi::run(ranks, |comm| {
            let own = partition(rows, comm.size(), comm.rank());
            let local = a.row_block(own.start, own.end);
            let (ext, offset) = arrayudf::dist::exchange_halo(comm, &local, rows, ghost);
            // Every row of the extended block matches the global array.
            let global_start = own.start - offset;
            for r in 0..ext.rows() {
                assert_eq!(ext.row(r), a.row(global_start + r), "rank {} row {r}", comm.rank());
            }
        });
    }
}
