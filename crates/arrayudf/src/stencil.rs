//! The `Stencil` abstraction: relative neighbourhood access for UDFs.

use crate::array::Array2;

/// A movable window over an [`Array2`], handed to user-defined functions.
///
/// Follows the paper's notation: the array is `channel × time`, and a
/// stencil access `S(dt, dc)` takes a **time offset** `dt` and a
/// **channel offset** `dc` relative to the current cell, so the paper's
/// `S(-M:M, 0)` becomes [`Stencil::window`]`(-M, M, 0)`.
///
/// Out-of-range accesses clamp to the array edge (replicate padding).
/// Interior blocks produced by the ghost-zone exchange never hit the
/// clamp: the halo provides real neighbour data, which is exactly how
/// ArrayUDF avoids communication during execution.
pub struct Stencil<'a, T> {
    array: &'a Array2<T>,
    /// Current channel (row).
    channel: usize,
    /// Current time sample (column).
    time: usize,
}

impl<'a, T: Copy> Stencil<'a, T> {
    /// Create a stencil positioned at `(channel, time)`.
    pub fn new(array: &'a Array2<T>, channel: usize, time: usize) -> Stencil<'a, T> {
        debug_assert!(channel < array.rows() && time < array.cols());
        Stencil {
            array,
            channel,
            time,
        }
    }

    /// The current channel index within the local block.
    pub fn channel(&self) -> usize {
        self.channel
    }

    /// The current time index within the local block.
    pub fn time(&self) -> usize {
        self.time
    }

    /// Number of time samples per channel in the local block.
    pub fn time_len(&self) -> usize {
        self.array.cols()
    }

    /// Number of channels in the local block.
    pub fn channel_len(&self) -> usize {
        self.array.rows()
    }

    #[inline]
    fn clamp_channel(&self, dc: isize) -> usize {
        let c = self.channel as isize + dc;
        c.clamp(0, self.array.rows() as isize - 1) as usize
    }

    #[inline]
    fn clamp_time(&self, dt: isize) -> usize {
        let t = self.time as isize + dt;
        t.clamp(0, self.array.cols() as isize - 1) as usize
    }

    /// Value at time offset `dt`, channel offset `dc` — the paper's
    /// `S(dt, dc)`. `at(0, 0)` is the current cell.
    #[inline]
    pub fn at(&self, dt: isize, dc: isize) -> T {
        self.array.get(self.clamp_channel(dc), self.clamp_time(dt))
    }

    /// The current cell's value.
    #[inline]
    pub fn value(&self) -> T {
        self.at(0, 0)
    }

    /// The paper's `S(t_lo : t_hi, dc)`: time samples `t_lo..=t_hi`
    /// (inclusive, relative) on the channel at offset `dc`. Edge-clamped.
    pub fn window(&self, t_lo: isize, t_hi: isize, dc: isize) -> Vec<T> {
        debug_assert!(t_lo <= t_hi);
        (t_lo..=t_hi).map(|dt| self.at(dt, dc)).collect()
    }

    /// Zero-copy variant of [`Stencil::window`] available when the whole
    /// window lies in bounds: a contiguous slice of the channel's time
    /// series. Returns `None` when clamping would be required.
    pub fn window_slice(&self, t_lo: isize, t_hi: isize, dc: isize) -> Option<&'a [T]> {
        let c = self.channel as isize + dc;
        if c < 0 || c >= self.array.rows() as isize {
            return None;
        }
        let lo = self.time as isize + t_lo;
        let hi = self.time as isize + t_hi;
        if lo < 0 || hi >= self.array.cols() as isize || lo > hi {
            return None;
        }
        let row = self.array.row(c as usize);
        Some(&row[lo as usize..=hi as usize])
    }

    /// The full time series of the channel at offset `dc` (the paper's
    /// `S(0 : W−1, 0)` pattern in Algorithm 3, with `W` the row length).
    pub fn channel_series(&self, dc: isize) -> &'a [T] {
        self.array.row(self.clamp_channel(dc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Array2<i64> {
        // 4 channels × 5 samples; value = ch*100 + t.
        Array2::from_fn(4, 5, |r, c| (r * 100 + c) as i64)
    }

    #[test]
    fn at_relative_addressing() {
        let a = grid();
        let s = Stencil::new(&a, 2, 3);
        assert_eq!(s.value(), 203);
        assert_eq!(s.at(-1, 0), 202);
        assert_eq!(s.at(1, 0), 204);
        assert_eq!(s.at(0, -1), 103);
        assert_eq!(s.at(0, 1), 303);
        assert_eq!(s.at(-2, -2), 1);
    }

    #[test]
    fn edges_clamp() {
        let a = grid();
        let s = Stencil::new(&a, 0, 0);
        assert_eq!(s.at(-1, 0), 0, "time clamps at start");
        assert_eq!(s.at(0, -1), 0, "channel clamps at start");
        let e = Stencil::new(&a, 3, 4);
        assert_eq!(e.at(1, 0), 304, "time clamps at end");
        assert_eq!(e.at(0, 1), 304, "channel clamps at end");
    }

    #[test]
    fn window_inclusive_range() {
        let a = grid();
        let s = Stencil::new(&a, 1, 2);
        assert_eq!(s.window(-1, 1, 0), vec![101, 102, 103]);
        assert_eq!(s.window(-1, 1, 1), vec![201, 202, 203]);
        assert_eq!(s.window(0, 0, 0), vec![102]);
    }

    #[test]
    fn window_slice_zero_copy_when_in_bounds() {
        let a = grid();
        let s = Stencil::new(&a, 1, 2);
        assert_eq!(s.window_slice(-1, 1, 0).unwrap(), &[101, 102, 103]);
        assert!(s.window_slice(-3, 1, 0).is_none(), "needs clamping");
        assert!(s.window_slice(-1, 1, 5).is_none(), "channel OOB");
    }

    #[test]
    fn channel_series_is_full_row() {
        let a = grid();
        let s = Stencil::new(&a, 2, 0);
        assert_eq!(s.channel_series(0), a.row(2));
        assert_eq!(s.channel_series(-1), a.row(1));
        assert_eq!(s.channel_series(10), a.row(3), "clamped");
    }

    #[test]
    fn geometry_accessors() {
        let a = grid();
        let s = Stencil::new(&a, 1, 2);
        assert_eq!(s.channel(), 1);
        assert_eq!(s.time(), 2);
        assert_eq!(s.channel_len(), 4);
        assert_eq!(s.time_len(), 5);
    }
}
