//! `Apply`: run a UDF over every (strided) cell of an array.
//!
//! [`apply`] is the sequential engine; [`apply_mt`] is the DASSA paper's
//! Algorithm 1 — the multithreaded Apply of the Hybrid ArrayUDF Execution
//! Engine, with per-thread result vectors merged by a prefix scan.

use crate::array::Array2;
use crate::stencil::Stencil;
use omp::SharedSlice;
use std::sync::Mutex;

/// Declared stencil reach. Not used for bounds (the stencil clamps) but
/// for the distributed halo exchange, which must ship this many ghost
/// channels; kept on the apply signature so the serial, threaded, and
/// distributed engines take identical arguments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Ghost {
    /// Maximum |time offset| the UDF will access.
    pub time: usize,
    /// Maximum |channel offset| the UDF will access.
    pub channel: usize,
}

impl Ghost {
    /// No neighbourhood (pointwise UDF).
    pub fn none() -> Ghost {
        Ghost::default()
    }

    /// Time-only reach (e.g. a moving average along one channel).
    pub fn time(t: usize) -> Ghost {
        Ghost {
            time: t,
            channel: 0,
        }
    }

    /// Reach in both dimensions.
    pub fn both(time: usize, channel: usize) -> Ghost {
        Ghost { time, channel }
    }
}

/// Output stride: the UDF runs on every `time`-th sample of every
/// `channel`-th channel (ArrayUDF's strip size; the paper's stacking
/// operations use a third-dimension strip the same way).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stride {
    /// Step between evaluated time samples.
    pub time: usize,
    /// Step between evaluated channels.
    pub channel: usize,
}

impl Stride {
    /// Evaluate at every cell.
    pub fn unit() -> Stride {
        Stride {
            time: 1,
            channel: 1,
        }
    }

    /// Evaluate once per channel (whole-row UDFs like Algorithm 3): the
    /// stencil is pinned at `time == 0` and steps one channel at a time.
    pub fn per_channel(time_len: usize) -> Stride {
        Stride {
            time: time_len.max(1),
            channel: 1,
        }
    }
}

/// Output grid dimensions for an input of `rows × cols` under `stride`.
fn output_dims(rows: usize, cols: usize, stride: Stride) -> (usize, usize) {
    assert!(
        stride.time >= 1 && stride.channel >= 1,
        "stride must be >= 1"
    );
    (rows.div_ceil(stride.channel), cols.div_ceil(stride.time))
}

/// `B = Apply(A, f)` — sequential reference engine.
///
/// `f` sees a [`Stencil`] centred on each evaluated cell; its return
/// values form the output array (shape `ceil(rows/stride.channel) ×
/// ceil(cols/stride.time)`).
pub fn apply<T, R, F>(input: &Array2<T>, ghost: Ghost, stride: Stride, f: F) -> Array2<R>
where
    T: Copy,
    R: Copy + Default,
    F: Fn(&Stencil<T>) -> R,
{
    let _ = ghost; // reach is only needed by the distributed engine
    let (out_rows, out_cols) = output_dims(input.rows(), input.cols(), stride);
    let mut out = Vec::with_capacity(out_rows * out_cols);
    for r in (0..input.rows()).step_by(stride.channel) {
        for c in (0..input.cols()).step_by(stride.time) {
            let s = Stencil::new(input, r, c);
            out.push(f(&s));
        }
    }
    Array2::from_vec(out_rows, out_cols, out)
}

/// Algorithm 1: multithreaded Apply (`ApplyMT`).
///
/// Faithful to the paper's structure: an OpenMP parallel region; a
/// `schedule(static)` worksharing loop appending to a **per-thread**
/// result vector `Rp`; a barrier; a `single` block computing the prefix
/// displacement of each thread's chunk; and a concurrent scatter
/// `R[p[h-1] : p[h]] = Rp` into the shared result.
///
/// Because the static schedule hands each thread a contiguous block of
/// flattened indices, the merged result is identical to [`apply`]'s —
/// asserted by tests and usable as a differential oracle.
pub fn apply_mt<T, R, F>(
    input: &Array2<T>,
    ghost: Ghost,
    stride: Stride,
    threads: usize,
    f: F,
) -> Array2<R>
where
    T: Copy + Sync,
    R: Copy + Default + Send + Sync,
    F: Fn(&Stencil<T>) -> R + Sync,
{
    let _ = ghost;
    let m = crate::metrics::metrics();
    m.apply_calls.inc();
    let (out_rows, out_cols) = output_dims(input.rows(), input.cols(), stride);
    let total = out_rows * out_cols;
    let result: SharedSlice<R> = SharedSlice::from_vec(vec![R::default(); total]);
    // p[h] = number of results thread h produced (then prefix-scanned).
    let prefix = Mutex::new(vec![0usize; threads.max(1) + 1]);

    // omp workers are fresh threads: forward the caller's rank tag so
    // their trace events land on the right process row of the timeline.
    let rank = obs::trace::current_rank();
    omp::parallel(threads, |ctx| {
        obs::trace::set_rank(rank);
        // -- #pragma omp for schedule(static): private result vector Rp.
        let compute_trace = obs::trace::scope("arrayudf.compute");
        let compute_started = std::time::Instant::now();
        let mut rp: Vec<R> = Vec::new();
        ctx.for_static(0..total, |i| {
            let (orow, ocol) = (i / out_cols, i % out_cols);
            let s = Stencil::new(input, orow * stride.channel, ocol * stride.time);
            rp.push(f(&s));
        });
        m.apply_thread_ns.record_duration(compute_started.elapsed());
        drop(compute_trace);
        // -- p[h] = Rp.size()
        prefix.lock().expect("prefix lock")[ctx.thread_num() + 1] = rp.len();
        // -- #pragma omp barrier
        ctx.barrier();
        // -- #pragma omp single: exclusive prefix scan of p.
        ctx.single(|| {
            let mut p = prefix.lock().expect("prefix lock");
            for h in 1..p.len() {
                p[h] += p[h - 1];
            }
        });
        // -- R[p[h-1] : p[h]] = Rp (disjoint by construction).
        let _merge_trace = obs::trace::scope("arrayudf.merge");
        let merge_started = std::time::Instant::now();
        let offset = prefix.lock().expect("prefix lock")[ctx.thread_num()];
        // SAFETY: prefix offsets partition 0..total disjointly across
        // threads, and all threads passed the barrier before writing.
        unsafe { result.write_slice(offset, &rp) };
        m.apply_merge_ns.record_duration(merge_started.elapsed());
    });

    Array2::from_vec(out_rows, out_cols, result.into_vec())
}

/// Convenience: run one UDF invocation per channel (Algorithm 3's
/// shape), returning one `R` per channel.
pub fn apply_with<T, R, F>(input: &Array2<T>, threads: usize, f: F) -> Vec<R>
where
    T: Copy + Sync,
    R: Copy + Default + Send + Sync,
    F: Fn(&Stencil<T>) -> R + Sync,
{
    let stride = Stride::per_channel(input.cols());
    apply_mt(input, Ghost::none(), stride, threads, f).into_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(rows: usize, cols: usize) -> Array2<f64> {
        Array2::from_fn(rows, cols, |r, c| (r * 1000 + c) as f64)
    }

    #[test]
    fn pointwise_apply() {
        let a = grid(3, 4);
        let b = apply(&a, Ghost::none(), Stride::unit(), |s| s.value() * 2.0);
        assert_eq!(b.rows(), 3);
        assert_eq!(b.cols(), 4);
        assert_eq!(b.get(2, 3), 2.0 * 2003.0);
    }

    #[test]
    fn moving_average_interior_exact() {
        let a = Array2::from_fn(1, 10, |_, c| c as f64);
        let b = apply(&a, Ghost::time(1), Stride::unit(), |s| {
            (s.at(-1, 0) + s.at(0, 0) + s.at(1, 0)) / 3.0
        });
        for t in 1..9 {
            assert!((b.get(0, t) - t as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn strided_apply_dims() {
        let a = grid(10, 21);
        let b = apply(
            &a,
            Ghost::none(),
            Stride {
                time: 5,
                channel: 3,
            },
            |s| s.value(),
        );
        assert_eq!(b.rows(), 4); // ceil(10/3)
        assert_eq!(b.cols(), 5); // ceil(21/5)
        assert_eq!(b.get(1, 2), a.get(3, 10));
    }

    #[test]
    fn per_channel_stride_runs_once_per_row() {
        let a = grid(5, 32);
        let out = apply_with(&a, 2, |s| s.channel_series(0)[0]);
        assert_eq!(out, vec![0.0, 1000.0, 2000.0, 3000.0, 4000.0]);
    }

    #[test]
    fn apply_mt_matches_serial_all_thread_counts() {
        let a = grid(7, 13);
        let udf = |s: &Stencil<f64>| s.at(-1, 0) + 2.0 * s.at(0, 0) + s.at(0, 1);
        let serial = apply(&a, Ghost::both(1, 1), Stride::unit(), udf);
        for threads in [1usize, 2, 3, 4, 8] {
            let mt = apply_mt(&a, Ghost::both(1, 1), Stride::unit(), threads, udf);
            assert_eq!(mt, serial, "threads={threads}");
        }
    }

    #[test]
    fn apply_mt_strided_matches_serial() {
        let a = grid(9, 30);
        let stride = Stride {
            time: 7,
            channel: 2,
        };
        let udf = |s: &Stencil<f64>| s.value() + s.at(1, 0);
        let serial = apply(&a, Ghost::time(1), stride, udf);
        let mt = apply_mt(&a, Ghost::time(1), stride, 4, udf);
        assert_eq!(mt, serial);
    }

    #[test]
    fn apply_mt_more_threads_than_work() {
        let a = grid(1, 3);
        let mt = apply_mt(&a, Ghost::none(), Stride::unit(), 16, |s| s.value());
        assert_eq!(mt.as_slice(), &[0.0, 1.0, 2.0]);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let a = Array2::<f64>::zeroed(0, 8);
        let b = apply(&a, Ghost::none(), Stride::unit(), |s| s.value());
        assert_eq!(b.rows(), 0);
        let mt = apply_mt(&a, Ghost::none(), Stride::unit(), 3, |s| s.value());
        assert_eq!(mt.rows(), 0);
    }

    #[test]
    #[should_panic(expected = "stride must be >= 1")]
    fn zero_stride_rejected() {
        let a = grid(2, 2);
        apply(
            &a,
            Ghost::none(),
            Stride {
                time: 0,
                channel: 1,
            },
            |s| s.value(),
        );
    }
}
