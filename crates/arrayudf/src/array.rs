//! Dense row-major 2-D arrays.

/// A dense 2-D array stored row-major.
///
/// In DASSA convention, `rows` indexes channels and `cols` indexes time
/// samples, so a row is one channel's contiguous time series — the layout
/// both DasLib kernels and dasf hyperslab reads want.
#[derive(Debug, Clone, PartialEq)]
pub struct Array2<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Copy> Array2<T> {
    /// Build from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, f: impl Fn(usize, usize) -> T) -> Array2<T> {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Array2 { rows, cols, data }
    }

    /// Wrap an existing row-major buffer.
    ///
    /// # Panics
    /// Panics when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Array2<T> {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length must equal rows*cols"
        );
        Array2 { rows, cols, data }
    }

    /// A constant-filled array.
    pub fn filled(rows: usize, cols: usize, value: T) -> Array2<T> {
        Array2 {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Number of rows (channels).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (time samples).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the array holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element at `(row, col)`.
    ///
    /// # Panics
    /// Panics out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> T {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row},{col}) out of bounds"
        );
        self.data[row * self.cols + col]
    }

    /// Set element at `(row, col)`.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: T) {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row},{col}) out of bounds"
        );
        self.data[row * self.cols + col] = value;
    }

    /// One row (a channel's full time series) as a contiguous slice.
    pub fn row(&self, row: usize) -> &[T] {
        assert!(row < self.rows, "row {row} out of bounds");
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// The whole buffer, row-major.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable access to the whole buffer, row-major.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume into the underlying buffer.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Copy a contiguous band of rows `r0..r1` into a new array.
    pub fn row_block(&self, r0: usize, r1: usize) -> Array2<T> {
        assert!(
            r0 <= r1 && r1 <= self.rows,
            "row block {r0}..{r1} out of bounds"
        );
        Array2 {
            rows: r1 - r0,
            cols: self.cols,
            data: self.data[r0 * self.cols..r1 * self.cols].to_vec(),
        }
    }

    /// Paste a borrowed tile at `(r0, c0)`, row by row.
    ///
    /// The zero-copy assembly primitive for the planner/executor read
    /// path: tiles stay in their pooled buffers and only the final
    /// placement into the destination array copies bytes.
    ///
    /// # Panics
    /// Panics when the tile does not fit at `(r0, c0)`.
    pub fn paste(&mut self, r0: usize, c0: usize, tile: TileView<'_, T>) {
        assert!(
            r0 + tile.rows <= self.rows && c0 + tile.cols <= self.cols,
            "tile {}x{} does not fit at ({r0},{c0}) in {}x{}",
            tile.rows,
            tile.cols,
            self.rows,
            self.cols
        );
        for r in 0..tile.rows {
            let dst = (r0 + r) * self.cols + c0;
            self.data[dst..dst + tile.cols].copy_from_slice(tile.row(r));
        }
    }

    /// Stack arrays vertically (same column count).
    pub fn vstack(blocks: &[Array2<T>]) -> Array2<T> {
        assert!(!blocks.is_empty(), "vstack needs at least one block");
        let cols = blocks[0].cols;
        assert!(
            blocks.iter().all(|b| b.cols == cols),
            "column mismatch in vstack"
        );
        let rows = blocks.iter().map(|b| b.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for b in blocks {
            data.extend_from_slice(&b.data);
        }
        Array2 { rows, cols, data }
    }
}

impl<T: Copy + Default> Array2<T> {
    /// A default-initialized array.
    pub fn zeroed(rows: usize, cols: usize) -> Array2<T> {
        Array2 {
            rows,
            cols,
            data: vec![T::default(); rows * cols],
        }
    }
}

/// A borrowed, row-major window over someone else's buffer.
///
/// Tiles produced by the I/O planner reference pooled read buffers; a
/// `TileView` lets [`Array2::paste`] assemble the destination array
/// straight from those buffers without an intermediate `Array2` per
/// tile. Rows are `stride` elements apart in the backing slice, so a
/// view can select a row band out of a wider buffer.
#[derive(Debug, Clone, Copy)]
pub struct TileView<'a, T> {
    rows: usize,
    cols: usize,
    stride: usize,
    data: &'a [T],
}

impl<'a, T: Copy> TileView<'a, T> {
    /// View `rows × cols` elements of `data`, rows `stride` apart.
    ///
    /// # Panics
    /// Panics when the last row would run past the end of `data` or
    /// `stride < cols`.
    pub fn with_stride(rows: usize, cols: usize, stride: usize, data: &'a [T]) -> TileView<'a, T> {
        assert!(stride >= cols, "stride {stride} narrower than cols {cols}");
        if rows > 0 {
            let need = (rows - 1) * stride + cols;
            assert!(
                data.len() >= need,
                "tile view {rows}x{cols} (stride {stride}) needs {need} elements, got {}",
                data.len()
            );
        }
        TileView {
            rows,
            cols,
            stride,
            data,
        }
    }

    /// View a dense row-major `rows × cols` slice.
    pub fn new(rows: usize, cols: usize, data: &'a [T]) -> TileView<'a, T> {
        TileView::with_stride(rows, cols, cols, data)
    }

    /// Number of rows in the view.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns in the view.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// One row of the view as a contiguous slice.
    pub fn row(&self, r: usize) -> &'a [T] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.data[r * self.stride..r * self.stride + self.cols]
    }
}

impl<'a, T: Copy> From<&'a Array2<T>> for TileView<'a, T> {
    fn from(a: &'a Array2<T>) -> TileView<'a, T> {
        TileView::new(a.rows, a.cols, &a.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_layout_is_row_major() {
        let a = Array2::from_fn(2, 3, |r, c| (r * 10 + c) as i32);
        assert_eq!(a.as_slice(), &[0, 1, 2, 10, 11, 12]);
        assert_eq!(a.get(1, 2), 12);
        assert_eq!(a.row(1), &[10, 11, 12]);
    }

    #[test]
    fn set_and_get() {
        let mut a = Array2::<f64>::zeroed(3, 3);
        a.set(2, 1, 7.5);
        assert_eq!(a.get(2, 1), 7.5);
        assert_eq!(a.get(0, 0), 0.0);
    }

    #[test]
    fn row_block_extracts_band() {
        let a = Array2::from_fn(5, 2, |r, c| r * 2 + c);
        let b = a.row_block(1, 4);
        assert_eq!(b.rows(), 3);
        assert_eq!(b.row(0), a.row(1));
        assert_eq!(b.row(2), a.row(3));
    }

    #[test]
    fn paste_assembles_from_strided_views() {
        let src = Array2::from_fn(4, 5, |r, c| (r * 5 + c) as i32);
        let mut dst = Array2::<i32>::zeroed(4, 8);
        // Whole array at an offset column.
        dst.paste(0, 3, TileView::from(&src));
        assert_eq!(dst.get(2, 3 + 4), src.get(2, 4));
        assert_eq!(dst.get(3, 0), 0);
        // A row band out of the wider buffer, strided.
        let band = TileView::with_stride(2, 5, 5, &src.as_slice()[5..]);
        let mut dst2 = Array2::<i32>::zeroed(2, 5);
        dst2.paste(0, 0, band);
        assert_eq!(dst2.row(0), src.row(1));
        assert_eq!(dst2.row(1), src.row(2));
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn paste_out_of_bounds_panics() {
        let src = Array2::<u8>::filled(2, 2, 1);
        let mut dst = Array2::<u8>::zeroed(2, 2);
        dst.paste(1, 1, TileView::from(&src));
    }

    #[test]
    fn vstack_reassembles_blocks() {
        let a = Array2::from_fn(4, 3, |r, c| (r, c));
        let blocks = [a.row_block(0, 2), a.row_block(2, 3), a.row_block(3, 4)];
        assert_eq!(Array2::vstack(&blocks), a);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_get_panics() {
        Array2::<u8>::zeroed(2, 2).get(2, 0);
    }

    #[test]
    #[should_panic(expected = "rows*cols")]
    fn bad_from_vec_panics() {
        Array2::from_vec(2, 3, vec![0u8; 5]);
    }

    #[test]
    fn empty_array() {
        let a = Array2::<f32>::zeroed(0, 5);
        assert!(a.is_empty());
        assert_eq!(a.len(), 0);
    }
}
