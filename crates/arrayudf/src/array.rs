//! Dense row-major 2-D arrays.

/// A dense 2-D array stored row-major.
///
/// In DASSA convention, `rows` indexes channels and `cols` indexes time
/// samples, so a row is one channel's contiguous time series — the layout
/// both DasLib kernels and dasf hyperslab reads want.
#[derive(Debug, Clone, PartialEq)]
pub struct Array2<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Copy> Array2<T> {
    /// Build from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, f: impl Fn(usize, usize) -> T) -> Array2<T> {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Array2 { rows, cols, data }
    }

    /// Wrap an existing row-major buffer.
    ///
    /// # Panics
    /// Panics when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Array2<T> {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length must equal rows*cols"
        );
        Array2 { rows, cols, data }
    }

    /// A constant-filled array.
    pub fn filled(rows: usize, cols: usize, value: T) -> Array2<T> {
        Array2 {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Number of rows (channels).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (time samples).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the array holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element at `(row, col)`.
    ///
    /// # Panics
    /// Panics out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> T {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row},{col}) out of bounds"
        );
        self.data[row * self.cols + col]
    }

    /// Set element at `(row, col)`.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: T) {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row},{col}) out of bounds"
        );
        self.data[row * self.cols + col] = value;
    }

    /// One row (a channel's full time series) as a contiguous slice.
    pub fn row(&self, row: usize) -> &[T] {
        assert!(row < self.rows, "row {row} out of bounds");
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// The whole buffer, row-major.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable access to the whole buffer, row-major.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume into the underlying buffer.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Copy a contiguous band of rows `r0..r1` into a new array.
    pub fn row_block(&self, r0: usize, r1: usize) -> Array2<T> {
        assert!(
            r0 <= r1 && r1 <= self.rows,
            "row block {r0}..{r1} out of bounds"
        );
        Array2 {
            rows: r1 - r0,
            cols: self.cols,
            data: self.data[r0 * self.cols..r1 * self.cols].to_vec(),
        }
    }

    /// Stack arrays vertically (same column count).
    pub fn vstack(blocks: &[Array2<T>]) -> Array2<T> {
        assert!(!blocks.is_empty(), "vstack needs at least one block");
        let cols = blocks[0].cols;
        assert!(
            blocks.iter().all(|b| b.cols == cols),
            "column mismatch in vstack"
        );
        let rows = blocks.iter().map(|b| b.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for b in blocks {
            data.extend_from_slice(&b.data);
        }
        Array2 { rows, cols, data }
    }
}

impl<T: Copy + Default> Array2<T> {
    /// A default-initialized array.
    pub fn zeroed(rows: usize, cols: usize) -> Array2<T> {
        Array2 {
            rows,
            cols,
            data: vec![T::default(); rows * cols],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_layout_is_row_major() {
        let a = Array2::from_fn(2, 3, |r, c| (r * 10 + c) as i32);
        assert_eq!(a.as_slice(), &[0, 1, 2, 10, 11, 12]);
        assert_eq!(a.get(1, 2), 12);
        assert_eq!(a.row(1), &[10, 11, 12]);
    }

    #[test]
    fn set_and_get() {
        let mut a = Array2::<f64>::zeroed(3, 3);
        a.set(2, 1, 7.5);
        assert_eq!(a.get(2, 1), 7.5);
        assert_eq!(a.get(0, 0), 0.0);
    }

    #[test]
    fn row_block_extracts_band() {
        let a = Array2::from_fn(5, 2, |r, c| r * 2 + c);
        let b = a.row_block(1, 4);
        assert_eq!(b.rows(), 3);
        assert_eq!(b.row(0), a.row(1));
        assert_eq!(b.row(2), a.row(3));
    }

    #[test]
    fn vstack_reassembles_blocks() {
        let a = Array2::from_fn(4, 3, |r, c| (r, c));
        let blocks = [a.row_block(0, 2), a.row_block(2, 3), a.row_block(3, 4)];
        assert_eq!(Array2::vstack(&blocks), a);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_get_panics() {
        Array2::<u8>::zeroed(2, 2).get(2, 0);
    }

    #[test]
    #[should_panic(expected = "rows*cols")]
    fn bad_from_vec_panics() {
        Array2::from_vec(2, 3, vec![0u8; 5]);
    }

    #[test]
    fn empty_array() {
        let a = Array2::<f32>::zeroed(0, 5);
        assert!(a.is_empty());
        assert_eq!(a.len(), 0);
    }
}
