//! Instrumentation handles into the global `obs` registry.
//!
//! The hybrid engine's cost model (paper §V-B) splits Apply time into
//! per-thread compute, ghost-zone exchange, and the prefix-scan merge.
//! These histograms expose that breakdown for every Apply in the
//! process, feeding `das_pipeline --metrics` and perfmodel calibration.

use obs::{Counter, Histogram};
use std::sync::OnceLock;

/// Metric names exported by this crate.
pub mod names {
    /// Count of multithreaded Apply invocations (`apply_mt` + `apply_dist`).
    pub const APPLY_CALLS: &str = "arrayudf.apply.calls";
    /// Histogram of per-thread compute time (UDF evaluation loop), ns.
    pub const APPLY_THREAD_NS: &str = "arrayudf.apply.thread_ns";
    /// Histogram of per-thread merge (scatter into shared result), ns.
    pub const APPLY_MERGE_NS: &str = "arrayudf.apply.merge_ns";
    /// Count of ghost-zone halo exchanges (per rank).
    pub const HALO_EXCHANGES: &str = "arrayudf.halo.exchanges";
    /// Histogram of per-exchange wall time, ns.
    pub const HALO_NS: &str = "arrayudf.halo.ns";
    /// Total halo payload bytes received across exchanges.
    pub const HALO_BYTES: &str = "arrayudf.halo.bytes";
}

pub(crate) struct Metrics {
    pub apply_calls: Counter,
    pub apply_thread_ns: Histogram,
    pub apply_merge_ns: Histogram,
    pub halo_exchanges: Counter,
    pub halo_ns: Histogram,
    pub halo_bytes: Counter,
}

pub(crate) fn metrics() -> &'static Metrics {
    static METRICS: OnceLock<Metrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = obs::global();
        Metrics {
            apply_calls: reg.counter(names::APPLY_CALLS),
            apply_thread_ns: reg.histogram(names::APPLY_THREAD_NS),
            apply_merge_ns: reg.histogram(names::APPLY_MERGE_NS),
            halo_exchanges: reg.counter(names::HALO_EXCHANGES),
            halo_ns: reg.histogram(names::HALO_NS),
            halo_bytes: reg.counter(names::HALO_BYTES),
        }
    })
}
