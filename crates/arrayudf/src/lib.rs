//! `arrayudf` — user-defined functions over multidimensional arrays with
//! structural locality.
//!
//! This crate reimplements the **ArrayUDF** system (Dong et al., HPDC'17)
//! that DASSA builds on, plus the multithreaded extension the DASSA paper
//! contributes (Algorithm 1):
//!
//! * [`Array2`] — a dense row-major 2-D array. DAS data is
//!   `channel × time`: row `c` is channel `c`'s time series.
//! * [`Stencil`] — the abstraction UDFs are written against: relative
//!   access to a cell's neighbourhood, `S(dt, dc)` with a *time* offset
//!   and a *channel* offset, matching the paper's `S(-M:M, +K)` notation.
//! * [`apply`] — run a UDF over every cell (optionally strided), like
//!   `B = Apply(A, f)`.
//! * [`apply_mt`] — Algorithm 1's `ApplyMT`: OpenMP-team execution with
//!   per-thread result vectors merged by a prefix scan.
//! * [`dist`] — MPI-style distribution: row-block partitioning and ghost
//!   zone (halo) exchange so per-rank applies need no communication
//!   during execution.
//!
//! # Example: three-point moving average
//! ```
//! use arrayudf::{apply, Array2, Ghost, Stride, Stencil};
//! let a = Array2::from_fn(1, 8, |_, t| t as f64);
//! let b = apply(&a, Ghost::time(1), Stride::unit(), |s: &Stencil<f64>| {
//!     (s.at(-1, 0) + s.at(0, 0) + s.at(1, 0)) / 3.0
//! });
//! assert_eq!(b.get(0, 4), 4.0); // interior: exact average
//! ```

mod apply;
mod array;
mod array3;
pub mod dist;
pub mod metrics;
mod stencil;

pub use apply::{apply, apply_mt, apply_with, Ghost, Stride};
pub use array::{Array2, TileView};
pub use array3::Array3;
pub use stencil::Stencil;
