//! Distributed execution: row-block partitioning, ghost-zone exchange,
//! and an MPI-parallel Apply.
//!
//! ArrayUDF's execution model (paper §II-B): the array is partitioned
//! across MPI processes, each partition is extended with a ghost zone of
//! neighbour rows, and the UDF then runs with **no communication during
//! execution**. The hybrid engine (§V-B) keeps one rank per node and
//! fans the rank's partition across OpenMP threads.

use crate::apply::{Ghost, Stride};
use crate::array::Array2;
use crate::stencil::Stencil;
use minimpi::Comm;
use omp::SharedSlice;
use std::ops::Range;
use std::sync::Mutex;

/// Balanced contiguous row partition: the first `total % size` ranks own
/// one extra row.
pub fn partition(total: usize, size: usize, rank: usize) -> Range<usize> {
    assert!(rank < size, "rank {rank} out of range for size {size}");
    let base = total / size;
    let extra = total % size;
    let start = rank * base + rank.min(extra);
    let len = base + usize::from(rank < extra);
    start..(start + len).min(total)
}

/// Tag space for halo messages (below minimpi's internal collective tags).
const TAG_HALO_UP: u32 = 0x7001; // data flowing to rank−1
const TAG_HALO_DOWN: u32 = 0x7002; // data flowing to rank+1

/// Exchange ghost rows with neighbouring ranks.
///
/// `local` is this rank's owned row block of a `total_rows`-row global
/// array partitioned with [`partition`]. Returns the extended block
/// (halo + owned + halo) and the offset of the first owned row within
/// it.
pub fn exchange_halo<T: Copy + Default + Send + 'static>(
    comm: &Comm,
    local: &Array2<T>,
    total_rows: usize,
    ghost_channels: usize,
) -> (Array2<T>, usize) {
    let (rank, size) = (comm.rank(), comm.size());
    let own = partition(total_rows, size, rank);
    assert_eq!(
        local.rows(),
        own.len(),
        "local block does not match partition({total_rows}, {size}, {rank})"
    );
    if ghost_channels == 0 || size == 1 {
        return (local.clone(), 0);
    }
    let m = crate::metrics::metrics();
    m.halo_exchanges.inc();
    let _trace = obs::trace::scope_in(comm.registry(), "arrayudf.halo");
    let halo_started = std::time::Instant::now();
    // Single-hop exchange: each rank's halo comes from its immediate
    // neighbours only, so the declared reach must fit inside the
    // smallest partition (the classic ghost-zone constraint; ArrayUDF
    // shares it). The smallest partition is the last rank's.
    let min_len = partition(total_rows, size, size - 1).len();
    assert!(
        ghost_channels <= min_len,
        "ghost reach {ghost_channels} exceeds the smallest rank partition ({min_len} rows); \
         use fewer ranks or a smaller stencil reach"
    );

    // How many rows each side can actually contribute.
    let up_avail = if rank > 0 {
        partition(total_rows, size, rank - 1)
            .len()
            .min(ghost_channels)
    } else {
        0
    };
    let down_avail = if rank + 1 < size {
        partition(total_rows, size, rank + 1)
            .len()
            .min(ghost_channels)
    } else {
        0
    };
    // Rows we must ship: our top rows to rank−1, bottom rows to rank+1.
    let send_up = if rank > 0 {
        local.rows().min(ghost_channels)
    } else {
        0
    };
    let send_down = if rank + 1 < size {
        local.rows().min(ghost_channels)
    } else {
        0
    };

    // Post sends first (eager buffered), then receive: no deadlock.
    if send_up > 0 {
        let block = local.row_block(0, send_up);
        comm.send_vec(rank - 1, TAG_HALO_UP, block.into_vec());
    }
    if send_down > 0 {
        let block = local.row_block(local.rows() - send_down, local.rows());
        comm.send_vec(rank + 1, TAG_HALO_DOWN, block.into_vec());
    }
    let top: Vec<T> = if up_avail > 0 {
        comm.recv(rank - 1, TAG_HALO_DOWN)
    } else {
        Vec::new()
    };
    let bottom: Vec<T> = if down_avail > 0 {
        comm.recv(rank + 1, TAG_HALO_UP)
    } else {
        Vec::new()
    };

    m.halo_bytes
        .add(((top.len() + bottom.len()) * std::mem::size_of::<T>()) as u64);
    m.halo_ns.record_duration(halo_started.elapsed());

    let cols = local.cols();
    let top_rows = top.len() / cols.max(1);
    let bottom_rows = bottom.len() / cols.max(1);
    let mut data = Vec::with_capacity((top_rows + local.rows() + bottom_rows) * cols);
    data.extend_from_slice(&top);
    data.extend_from_slice(local.as_slice());
    data.extend_from_slice(&bottom);
    (
        Array2::from_vec(top_rows + local.rows() + bottom_rows, cols, data),
        top_rows,
    )
}

/// Distributed `Apply`: each rank evaluates the UDF on its owned rows of
/// a `total_rows × cols` global array, using `threads` OpenMP-style
/// threads per rank (the hybrid engine; `threads = 1` reproduces the
/// original pure-MPI ArrayUDF).
///
/// Returns this rank's block of the output array. Results across ranks
/// concatenate (in rank order) to exactly the serial
/// [`crate::apply`] output as long as `ghost.channel` covers the UDF's
/// true channel reach and `stride.channel == 1`.
pub fn apply_dist<T, R, F>(
    comm: &Comm,
    local: &Array2<T>,
    total_rows: usize,
    ghost: Ghost,
    stride: Stride,
    threads: usize,
    f: F,
) -> Array2<R>
where
    T: Copy + Default + Send + Sync + 'static,
    R: Copy + Default + Send + Sync + 'static,
    F: Fn(&Stencil<T>) -> R + Sync,
{
    assert!(
        stride.time >= 1 && stride.channel >= 1,
        "stride must be >= 1"
    );
    let own = partition(total_rows, comm.size(), comm.rank());
    let (extended, offset) = exchange_halo(comm, local, total_rows, ghost.channel);

    // Global rows this rank evaluates (global stride grid ∩ owned range).
    let eval_rows: Vec<usize> = (own.start..own.end)
        .filter(|g| g % stride.channel == 0)
        .collect();
    let out_cols = local.cols().div_ceil(stride.time);
    let total_cells = eval_rows.len() * out_cols;
    let result: SharedSlice<R> = SharedSlice::from_vec(vec![R::default(); total_cells]);
    let prefix = Mutex::new(vec![0usize; threads.max(1) + 1]);

    let m = crate::metrics::metrics();
    m.apply_calls.inc();
    // Forward this rank's tag into the fresh omp worker threads so their
    // compute/merge spans are attributed to the right rank row.
    let rank_tag = obs::trace::current_rank();
    omp::parallel(threads, |ctx| {
        obs::trace::set_rank(rank_tag);
        let compute_trace = obs::trace::scope("arrayudf.compute");
        let compute_started = std::time::Instant::now();
        let mut rp: Vec<R> = Vec::new();
        ctx.for_static(0..total_cells, |i| {
            let (ri, ci) = (i / out_cols, i % out_cols);
            let local_row = eval_rows[ri] - own.start + offset;
            let s = Stencil::new(&extended, local_row, ci * stride.time);
            rp.push(f(&s));
        });
        m.apply_thread_ns.record_duration(compute_started.elapsed());
        drop(compute_trace);
        prefix.lock().expect("prefix lock")[ctx.thread_num() + 1] = rp.len();
        ctx.barrier();
        ctx.single(|| {
            let mut p = prefix.lock().expect("prefix lock");
            for h in 1..p.len() {
                p[h] += p[h - 1];
            }
        });
        let _merge_trace = obs::trace::scope("arrayudf.merge");
        let merge_started = std::time::Instant::now();
        let off = prefix.lock().expect("prefix lock")[ctx.thread_num()];
        // SAFETY: prefix offsets partition the output disjointly.
        unsafe { result.write_slice(off, &rp) };
        m.apply_merge_ns.record_duration(merge_started.elapsed());
    });

    Array2::from_vec(eval_rows.len(), out_cols, result.into_vec())
}

/// Gather per-rank output blocks to `root`, stacked in rank order.
pub fn gather_rows<R: Copy + Default + Send + 'static>(
    comm: &Comm,
    local_out: Array2<R>,
) -> Option<Array2<R>> {
    let cols = local_out.cols();
    let blocks = comm.gather(0, local_out.into_vec())?;
    let arrays: Vec<Array2<R>> = blocks
        .into_iter()
        .map(|v| {
            let rows = v.len().checked_div(cols).unwrap_or(0);
            Array2::from_vec(rows, cols, v)
        })
        .collect();
    Some(Array2::vstack(&arrays))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply;

    #[test]
    fn partition_covers_disjointly() {
        for total in [0usize, 1, 7, 100, 101] {
            for size in [1usize, 2, 3, 7, 13] {
                let mut next = 0;
                for rank in 0..size {
                    let r = partition(total, size, rank);
                    assert_eq!(r.start, next, "gap at rank {rank}");
                    next = r.end;
                }
                assert_eq!(next, total);
            }
        }
    }

    #[test]
    fn partition_is_balanced() {
        for rank in 0..4 {
            let len = partition(10, 4, rank).len();
            assert!(len == 2 || len == 3);
        }
    }

    #[test]
    fn halo_exchange_brings_neighbour_rows() {
        let total = 12;
        let cols = 4;
        let global = Array2::from_fn(total, cols, |r, c| (r * 10 + c) as i64);
        minimpi::run(3, |comm| {
            let own = partition(total, comm.size(), comm.rank());
            let local = global.row_block(own.start, own.end);
            let (ext, offset) = exchange_halo(comm, &local, total, 2);
            // Owned rows present at the offset.
            for (i, g) in (own.start..own.end).enumerate() {
                assert_eq!(ext.row(offset + i), global.row(g));
            }
            // Halo rows are real neighbour data.
            if comm.rank() > 0 {
                assert_eq!(offset, 2);
                assert_eq!(ext.row(0), global.row(own.start - 2));
                assert_eq!(ext.row(1), global.row(own.start - 1));
            } else {
                assert_eq!(offset, 0);
            }
            if comm.rank() + 1 < comm.size() {
                assert_eq!(ext.row(ext.rows() - 1), global.row(own.end + 1));
            }
        });
    }

    #[test]
    fn halo_zero_ghost_is_identity() {
        let global = Array2::from_fn(6, 3, |r, c| (r + c) as i64);
        minimpi::run(2, |comm| {
            let own = partition(6, comm.size(), comm.rank());
            let local = global.row_block(own.start, own.end);
            let (ext, offset) = exchange_halo(comm, &local, 6, 0);
            assert_eq!(ext, local);
            assert_eq!(offset, 0);
        });
    }

    #[test]
    fn dist_apply_equals_serial() {
        let total = 16;
        let global = Array2::from_fn(total, 9, |r, c| (r * 100 + c) as f64);
        let udf = |s: &Stencil<f64>| s.at(0, -1) + 2.0 * s.value() + s.at(0, 1) + s.at(1, 0);
        let serial = apply(&global, Ghost::both(1, 1), Stride::unit(), udf);
        for ranks in [1usize, 2, 3, 5] {
            let outs = minimpi::run(ranks, |comm| {
                let own = partition(total, comm.size(), comm.rank());
                let local = global.row_block(own.start, own.end);
                let out = apply_dist(
                    comm,
                    &local,
                    total,
                    Ghost::both(1, 1),
                    Stride::unit(),
                    2,
                    udf,
                );
                gather_rows(comm, out)
            });
            let gathered = outs[0].clone().expect("root gathers");
            assert_eq!(gathered, serial, "ranks={ranks}");
        }
    }

    #[test]
    fn dist_apply_strided_time() {
        let total = 8;
        let global = Array2::from_fn(total, 12, |r, c| (r * 12 + c) as f64);
        let udf = |s: &Stencil<f64>| s.value();
        let stride = Stride {
            time: 4,
            channel: 1,
        };
        let serial = apply(&global, Ghost::none(), stride, udf);
        let outs = minimpi::run(3, |comm| {
            let own = partition(total, comm.size(), comm.rank());
            let local = global.row_block(own.start, own.end);
            let out = apply_dist(comm, &local, total, Ghost::none(), stride, 1, udf);
            gather_rows(comm, out)
        });
        assert_eq!(outs[0].clone().unwrap(), serial);
    }

    #[test]
    fn more_ranks_than_rows() {
        let total = 2;
        let global = Array2::from_fn(total, 3, |r, c| (r + c) as f64);
        let serial = apply(&global, Ghost::none(), Stride::unit(), |s| s.value() + 1.0);
        let outs = minimpi::run(4, |comm| {
            let own = partition(total, comm.size(), comm.rank());
            let local = global.row_block(own.start, own.end);
            let out = apply_dist(comm, &local, total, Ghost::none(), Stride::unit(), 1, |s| {
                s.value() + 1.0
            });
            gather_rows(comm, out)
        });
        assert_eq!(outs[0].clone().unwrap(), serial);
    }

    #[test]
    #[should_panic(expected = "does not match partition")]
    fn wrong_local_block_rejected() {
        minimpi::run(2, |comm| {
            let local = Array2::<f64>::zeroed(5, 3); // wrong size for total=6
            let _ = exchange_halo(comm, &local, 6, 1);
        });
    }
}
