//! Dense 3-D arrays.
//!
//! The paper (§IV): "In certain cases, a multidimensional array is
//! needed to store intermediate data during analysis. For example,
//! during the stacking operation of the DAS data analysis pipeline, a
//! 3D data array with a striping size as the third dimension may be
//! produced." [`Array3`] is that intermediate: in the stacking pipeline
//! it holds `channel × lag × window` cross-correlations before the
//! window axis is collapsed.

use crate::array::Array2;

/// A dense 3-D array, row-major over `(d0, d1, d2)` — `d2` contiguous.
#[derive(Debug, Clone, PartialEq)]
pub struct Array3<T> {
    d0: usize,
    d1: usize,
    d2: usize,
    data: Vec<T>,
}

impl<T: Copy> Array3<T> {
    /// Build from a closure over `(i, j, k)`.
    pub fn from_fn(
        d0: usize,
        d1: usize,
        d2: usize,
        f: impl Fn(usize, usize, usize) -> T,
    ) -> Array3<T> {
        let mut data = Vec::with_capacity(d0 * d1 * d2);
        for i in 0..d0 {
            for j in 0..d1 {
                for k in 0..d2 {
                    data.push(f(i, j, k));
                }
            }
        }
        Array3 { d0, d1, d2, data }
    }

    /// Wrap an existing row-major buffer.
    ///
    /// # Panics
    /// Panics when `data.len() != d0 * d1 * d2`.
    pub fn from_vec(d0: usize, d1: usize, d2: usize, data: Vec<T>) -> Array3<T> {
        assert_eq!(
            data.len(),
            d0 * d1 * d2,
            "buffer length must equal d0*d1*d2"
        );
        Array3 { d0, d1, d2, data }
    }

    /// Shape as `(d0, d1, d2)`.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.d0, self.d1, self.d2)
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize, k: usize) -> T {
        assert!(
            i < self.d0 && j < self.d1 && k < self.d2,
            "index ({i},{j},{k}) out of bounds {:?}",
            self.dims()
        );
        self.data[(i * self.d1 + j) * self.d2 + k]
    }

    /// Set an element.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, k: usize, value: T) {
        assert!(
            i < self.d0 && j < self.d1 && k < self.d2,
            "index ({i},{j},{k}) out of bounds {:?}",
            self.dims()
        );
        self.data[(i * self.d1 + j) * self.d2 + k] = value;
    }

    /// The contiguous innermost lane at `(i, j, ..)`.
    pub fn lane(&self, i: usize, j: usize) -> &[T] {
        assert!(i < self.d0 && j < self.d1, "lane ({i},{j}) out of bounds");
        let base = (i * self.d1 + j) * self.d2;
        &self.data[base..base + self.d2]
    }

    /// The 2-D slice at fixed first index `i` (a `d1 × d2` array).
    pub fn slice0(&self, i: usize) -> Array2<T> {
        assert!(i < self.d0, "slice {i} out of bounds");
        let base = i * self.d1 * self.d2;
        Array2::from_vec(
            self.d1,
            self.d2,
            self.data[base..base + self.d1 * self.d2].to_vec(),
        )
    }

    /// The whole buffer, row-major.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Consume into the underlying buffer.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }
}

impl Array3<f64> {
    /// Collapse the **last** axis by averaging — the stacking reduction
    /// (`channel × lag × window` → `channel × lag`).
    pub fn mean_axis2(&self) -> Array2<f64> {
        let mut out = Vec::with_capacity(self.d0 * self.d1);
        for i in 0..self.d0 {
            for j in 0..self.d1 {
                let lane = self.lane(i, j);
                let mean = if lane.is_empty() {
                    0.0
                } else {
                    lane.iter().sum::<f64>() / lane.len() as f64
                };
                out.push(mean);
            }
        }
        Array2::from_vec(self.d0, self.d1, out)
    }

    /// Collapse the **middle** axis by averaging (`d0 × d2` result).
    pub fn mean_axis1(&self) -> Array2<f64> {
        let mut out = vec![0.0f64; self.d0 * self.d2];
        for i in 0..self.d0 {
            for j in 0..self.d1 {
                let lane = self.lane(i, j);
                for (k, &v) in lane.iter().enumerate() {
                    out[i * self.d2 + k] += v;
                }
            }
        }
        if self.d1 > 0 {
            let inv = 1.0 / self.d1 as f64;
            for v in &mut out {
                *v *= inv;
            }
        }
        Array2::from_vec(self.d0, self.d2, out)
    }
}

impl<T: Copy + Default> Array3<T> {
    /// A default-initialized array.
    pub fn zeroed(d0: usize, d1: usize, d2: usize) -> Array3<T> {
        Array3 {
            d0,
            d1,
            d2,
            data: vec![T::default(); d0 * d1 * d2],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube() -> Array3<f64> {
        Array3::from_fn(2, 3, 4, |i, j, k| (i * 100 + j * 10 + k) as f64)
    }

    #[test]
    fn layout_and_access() {
        let a = cube();
        assert_eq!(a.dims(), (2, 3, 4));
        assert_eq!(a.len(), 24);
        assert_eq!(a.get(1, 2, 3), 123.0);
        assert_eq!(a.lane(1, 2), &[120.0, 121.0, 122.0, 123.0]);
    }

    #[test]
    fn set_updates_in_place() {
        let mut a = Array3::<i64>::zeroed(2, 2, 2);
        a.set(1, 0, 1, 7);
        assert_eq!(a.get(1, 0, 1), 7);
        assert_eq!(a.get(0, 0, 0), 0);
    }

    #[test]
    fn slice0_extracts_2d_plane() {
        let a = cube();
        let s = a.slice0(1);
        assert_eq!(s.rows(), 3);
        assert_eq!(s.cols(), 4);
        assert_eq!(s.get(2, 3), 123.0);
    }

    #[test]
    fn mean_axis2_collapses_lanes() {
        let a = cube();
        let m = a.mean_axis2();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        // lane (1,2) = [120, 121, 122, 123] → mean 121.5
        assert_eq!(m.get(1, 2), 121.5);
    }

    #[test]
    fn mean_axis1_collapses_middle() {
        let a = cube();
        let m = a.mean_axis1();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 4);
        // over j: values i*100 + {0,10,20} + k → mean = i*100 + 10 + k
        assert_eq!(m.get(0, 0), 10.0);
        assert_eq!(m.get(1, 3), 113.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_get_panics() {
        cube().get(2, 0, 0);
    }

    #[test]
    #[should_panic(expected = "d0*d1*d2")]
    fn bad_from_vec_panics() {
        Array3::from_vec(2, 2, 2, vec![0u8; 7]);
    }

    #[test]
    fn empty_array() {
        let a = Array3::<f64>::zeroed(0, 3, 4);
        assert!(a.is_empty());
        let m = a.mean_axis2();
        assert_eq!(m.rows(), 0);
    }
}
