//! `mlab` — an interactive MATLAB-style shell for DAS analysis.
//!
//! The DASSA paper's future-work item, working: a REPL over the mlab
//! language with the full DasLib builtin set plus the `das_*` bridge
//! (scan/search/read/generate/analyse). Bare expressions print `ans`,
//! assignments echo shape, `quit` exits.
//!
//! ```text
//! $ cargo run -p mlab --bin mlab
//! mlab> data = das_generate(16, 50, 60, 7);
//! data = 16x3000 matrix
//! mlab> simi = das_local_similarity(data, 20, 1, 8, 50);
//! simi = 16x60 matrix
//! mlab> max(simi(:))
//! ans = 0.9241
//! ```

use mlab::{Interp, Value};
use std::io::{BufRead, Write};

fn describe(value: &Value) -> String {
    match value {
        Value::Num(v) => format!("{v}"),
        Value::Str(s) => format!("'{s}'"),
        Value::Matrix { rows, cols, data } => {
            if data.len() <= 8 {
                format!(
                    "[{}]",
                    data.iter()
                        .map(|v| format!("{v:.4}"))
                        .collect::<Vec<_>>()
                        .join(" ")
                )
            } else {
                format!("{rows}x{cols} matrix")
            }
        }
        Value::CMatrix { rows, cols, .. } => format!("{rows}x{cols} complex matrix"),
    }
}

fn main() {
    let mut interp = Interp::new();
    let stdin = std::io::stdin();
    let interactive = std::env::args().all(|a| a != "--batch");
    if interactive {
        eprintln!("mlab — interactive DAS analysis shell (DASSA bridge loaded)");
        eprintln!("builtins: detrend butter filtfilt resample fft abscorr ...");
        eprintln!(
            "          das_generate das_read das_search das_local_similarity das_interferometry"
        );
        eprintln!("type 'quit' to exit");
    }
    loop {
        if interactive {
            eprint!("mlab> ");
            std::io::stderr().flush().ok();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if trimmed == "quit" || trimmed == "exit" {
            break;
        }
        // Capture the assigned variable name for echo (x = ... → x).
        let target = trimmed
            .split('=')
            .next()
            .map(str::trim)
            .filter(|t| {
                !t.is_empty()
                    && t.chars().all(|c| c.is_alphanumeric() || c == '_')
                    && t.chars().next().is_some_and(char::is_alphabetic)
            })
            .map(str::to_string);
        match interp.run(trimmed) {
            Ok(()) => {
                if !interp.output.is_empty() {
                    print!("{}", interp.output);
                    interp.output.clear();
                }
                let echo_name = if trimmed.contains('=') {
                    target.as_deref()
                } else {
                    Some("ans")
                };
                if let Some(name) = echo_name {
                    if let Some(v) = interp.get(name) {
                        if !trimmed.ends_with(';') || name != "ans" {
                            println!("{name} = {}", describe(v));
                        }
                    }
                }
            }
            Err(e) => eprintln!("error: {e}"),
        }
    }
}
