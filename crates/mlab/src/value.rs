//! Runtime values: scalars, real matrices, complex matrices, strings.
//!
//! MATLAB semantics where they matter: everything is conceptually a
//! matrix (a scalar is 1×1), indexing is 1-based, and *linear* indexing
//! walks columns first.

use dsp::Complex;

/// A runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A real scalar (also represents logicals as 0.0 / 1.0).
    Num(f64),
    /// A dense real matrix, row-major storage.
    Matrix {
        rows: usize,
        cols: usize,
        data: Vec<f64>,
    },
    /// A dense complex matrix (results of `fft` etc.).
    CMatrix {
        rows: usize,
        cols: usize,
        data: Vec<Complex>,
    },
    /// A string (used for option flags like `'high'`).
    Str(String),
}

impl Value {
    /// A row vector.
    pub fn row(data: Vec<f64>) -> Value {
        Value::Matrix {
            rows: 1,
            cols: data.len(),
            data,
        }
    }

    /// A complex row vector.
    pub fn crow(data: Vec<Complex>) -> Value {
        Value::CMatrix {
            rows: 1,
            cols: data.len(),
            data,
        }
    }

    /// Shape as `(rows, cols)`; scalars are 1×1, strings 1×len.
    pub fn shape(&self) -> (usize, usize) {
        match self {
            Value::Num(_) => (1, 1),
            Value::Matrix { rows, cols, .. } => (*rows, *cols),
            Value::CMatrix { rows, cols, .. } => (*rows, *cols),
            Value::Str(s) => (1, s.len()),
        }
    }

    /// Total element count.
    pub fn numel(&self) -> usize {
        let (r, c) = self.shape();
        r * c
    }

    /// Interpret as a scalar.
    pub fn as_scalar(&self) -> Result<f64, String> {
        match self {
            Value::Num(v) => Ok(*v),
            Value::Matrix { data, .. } if data.len() == 1 => Ok(data[0]),
            other => Err(format!(
                "expected a scalar, got a {}x{} value",
                other.shape().0,
                other.shape().1
            )),
        }
    }

    /// Interpret as truthiness (MATLAB: true iff non-empty and all
    /// elements non-zero).
    pub fn is_true(&self) -> bool {
        match self {
            Value::Num(v) => *v != 0.0,
            Value::Matrix { data, .. } => !data.is_empty() && data.iter().all(|&v| v != 0.0),
            Value::CMatrix { data, .. } => {
                !data.is_empty() && data.iter().all(|z| z.re != 0.0 || z.im != 0.0)
            }
            Value::Str(s) => !s.is_empty(),
        }
    }

    /// Flatten to a real vector (any shape), erroring on complex/strings.
    pub fn to_real_vec(&self) -> Result<Vec<f64>, String> {
        match self {
            Value::Num(v) => Ok(vec![*v]),
            Value::Matrix { data, .. } => Ok(data.clone()),
            Value::CMatrix { .. } => Err("expected real data, got complex".into()),
            Value::Str(_) => Err("expected numeric data, got a string".into()),
        }
    }

    /// Flatten to a complex vector; real data is widened.
    pub fn to_complex_vec(&self) -> Result<Vec<Complex>, String> {
        match self {
            Value::Num(v) => Ok(vec![Complex::real(*v)]),
            Value::Matrix { data, .. } => Ok(data.iter().map(|&v| Complex::real(v)).collect()),
            Value::CMatrix { data, .. } => Ok(data.clone()),
            Value::Str(_) => Err("expected numeric data, got a string".into()),
        }
    }

    /// Convert a flat vector result back to a value with the shape of
    /// `like` (used by shape-preserving builtins).
    pub fn reshape_like(data: Vec<f64>, like: &Value) -> Value {
        let (rows, cols) = like.shape();
        if data.len() == rows * cols {
            Value::Matrix { rows, cols, data }
        } else {
            Value::row(data)
        }
    }

    /// Row-major element access by (row, col), 0-based internally.
    pub fn get2(&self, r: usize, c: usize) -> Result<f64, String> {
        let (rows, cols) = self.shape();
        if r >= rows || c >= cols {
            return Err(format!(
                "index ({},{}) out of bounds {rows}x{cols}",
                r + 1,
                c + 1
            ));
        }
        match self {
            Value::Num(v) => Ok(*v),
            Value::Matrix { data, .. } => Ok(data[r * cols + c]),
            _ => Err("cannot numerically index this value".into()),
        }
    }

    /// MATLAB linear index (1-based, column-major) to (row, col).
    pub fn linear_to_rc(&self, idx1: usize) -> Result<(usize, usize), String> {
        let (rows, cols) = self.shape();
        if idx1 == 0 || idx1 > rows * cols {
            return Err(format!(
                "linear index {idx1} out of bounds for {rows}x{cols}"
            ));
        }
        let k = idx1 - 1;
        Ok((k % rows, k / rows))
    }
}

/// Element-wise binary op with scalar broadcasting.
pub fn elementwise(a: &Value, b: &Value, op: impl Fn(f64, f64) -> f64) -> Result<Value, String> {
    match (a, b) {
        (Value::Num(x), Value::Num(y)) => Ok(Value::Num(op(*x, *y))),
        (Value::Num(x), Value::Matrix { rows, cols, data }) => Ok(Value::Matrix {
            rows: *rows,
            cols: *cols,
            data: data.iter().map(|&y| op(*x, y)).collect(),
        }),
        (Value::Matrix { rows, cols, data }, Value::Num(y)) => Ok(Value::Matrix {
            rows: *rows,
            cols: *cols,
            data: data.iter().map(|&x| op(x, *y)).collect(),
        }),
        (
            Value::Matrix {
                rows: r1,
                cols: c1,
                data: d1,
            },
            Value::Matrix {
                rows: r2,
                cols: c2,
                data: d2,
            },
        ) => {
            if (r1, c1) != (r2, c2) {
                return Err(format!("shape mismatch: {r1}x{c1} vs {r2}x{c2}"));
            }
            Ok(Value::Matrix {
                rows: *r1,
                cols: *c1,
                data: d1.iter().zip(d2).map(|(&x, &y)| op(x, y)).collect(),
            })
        }
        _ => Err("unsupported operands for element-wise operation".into()),
    }
}

/// Complex-aware element-wise op used for +, -, .* on spectra.
pub fn elementwise_complex(
    a: &Value,
    b: &Value,
    op: impl Fn(Complex, Complex) -> Complex,
) -> Result<Value, String> {
    let (ra, ca) = a.shape();
    let (rb, cb) = b.shape();
    let da = a.to_complex_vec()?;
    let db = b.to_complex_vec()?;
    let (rows, cols, data) = if da.len() == 1 {
        (rb, cb, db.iter().map(|&y| op(da[0], y)).collect::<Vec<_>>())
    } else if db.len() == 1 {
        (ra, ca, da.iter().map(|&x| op(x, db[0])).collect())
    } else if (ra, ca) == (rb, cb) {
        (
            ra,
            ca,
            da.iter().zip(&db).map(|(&x, &y)| op(x, y)).collect(),
        )
    } else {
        return Err(format!("shape mismatch: {ra}x{ca} vs {rb}x{cb}"));
    };
    Ok(Value::CMatrix { rows, cols, data })
}

/// Matrix multiplication (falls back to scalar scaling when either side
/// is 1×1, as MATLAB's `*` does).
pub fn matmul(a: &Value, b: &Value) -> Result<Value, String> {
    if a.numel() == 1 || b.numel() == 1 {
        return elementwise(a, b, |x, y| x * y);
    }
    match (a, b) {
        (
            Value::Matrix {
                rows: r1,
                cols: c1,
                data: d1,
            },
            Value::Matrix {
                rows: r2,
                cols: c2,
                data: d2,
            },
        ) => {
            if c1 != r2 {
                return Err(format!("inner dimensions disagree: {r1}x{c1} * {r2}x{c2}"));
            }
            let mut out = vec![0.0; r1 * c2];
            for i in 0..*r1 {
                for k in 0..*c1 {
                    let x = d1[i * c1 + k];
                    if x == 0.0 {
                        continue;
                    }
                    for j in 0..*c2 {
                        out[i * c2 + j] += x * d2[k * c2 + j];
                    }
                }
            }
            Ok(Value::Matrix {
                rows: *r1,
                cols: *c2,
                data: out,
            })
        }
        _ => Err("matrix multiply needs real matrices".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_accessors() {
        assert_eq!(Value::Num(2.5).as_scalar().unwrap(), 2.5);
        assert_eq!(Value::row(vec![7.0]).as_scalar().unwrap(), 7.0);
        assert!(Value::row(vec![1.0, 2.0]).as_scalar().is_err());
    }

    #[test]
    fn truthiness() {
        assert!(Value::Num(1.0).is_true());
        assert!(!Value::Num(0.0).is_true());
        assert!(Value::row(vec![1.0, 2.0]).is_true());
        assert!(!Value::row(vec![1.0, 0.0]).is_true());
        assert!(!Value::row(vec![]).is_true());
    }

    #[test]
    fn elementwise_broadcasting() {
        let m = Value::row(vec![1.0, 2.0, 3.0]);
        let out = elementwise(&m, &Value::Num(10.0), |a, b| a * b).unwrap();
        assert_eq!(out, Value::row(vec![10.0, 20.0, 30.0]));
        let out = elementwise(&Value::Num(1.0), &m, |a, b| a - b).unwrap();
        assert_eq!(out, Value::row(vec![0.0, -1.0, -2.0]));
    }

    #[test]
    fn elementwise_shape_mismatch() {
        let a = Value::row(vec![1.0, 2.0]);
        let b = Value::row(vec![1.0, 2.0, 3.0]);
        assert!(elementwise(&a, &b, |x, y| x + y).is_err());
    }

    #[test]
    fn matmul_known_product() {
        let a = Value::Matrix {
            rows: 2,
            cols: 2,
            data: vec![1.0, 2.0, 3.0, 4.0],
        };
        let b = Value::Matrix {
            rows: 2,
            cols: 1,
            data: vec![5.0, 6.0],
        };
        let out = matmul(&a, &b).unwrap();
        assert_eq!(
            out,
            Value::Matrix {
                rows: 2,
                cols: 1,
                data: vec![17.0, 39.0]
            }
        );
    }

    #[test]
    fn matmul_scalar_fallback() {
        let a = Value::row(vec![1.0, 2.0]);
        let out = matmul(&a, &Value::Num(3.0)).unwrap();
        assert_eq!(out, Value::row(vec![3.0, 6.0]));
    }

    #[test]
    fn linear_index_is_column_major() {
        // m = [1 2 3; 4 5 6]; m(2) == 4 in MATLAB.
        let m = Value::Matrix {
            rows: 2,
            cols: 3,
            data: vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        };
        let (r, c) = m.linear_to_rc(2).unwrap();
        assert_eq!(m.get2(r, c).unwrap(), 4.0);
        let (r, c) = m.linear_to_rc(3).unwrap();
        assert_eq!(m.get2(r, c).unwrap(), 2.0);
        assert!(m.linear_to_rc(0).is_err());
        assert!(m.linear_to_rc(7).is_err());
    }

    #[test]
    fn complex_elementwise() {
        let a = Value::crow(vec![Complex::new(1.0, 1.0), Complex::new(2.0, 0.0)]);
        let out = elementwise_complex(&a, &Value::Num(2.0), |x, y| x * y).unwrap();
        match out {
            Value::CMatrix { data, .. } => {
                assert_eq!(data[0], Complex::new(2.0, 2.0));
                assert_eq!(data[1], Complex::new(4.0, 0.0));
            }
            other => panic!("{other:?}"),
        }
    }
}
