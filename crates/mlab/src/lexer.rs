//! Tokenizer for the MATLAB subset.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    Num(f64),
    Ident(String),
    Str(String),
    // Punctuation / operators.
    Plus,
    Minus,
    Star,
    Slash,
    Caret,
    DotStar,
    DotSlash,
    DotCaret,
    Assign,
    Eq, // ==
    Ne, // ~=
    Lt,
    Gt,
    Le,
    Ge,
    AndAnd,
    OrOr,
    Not, // ~
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Colon,
    Newline,
    // Keywords.
    For,
    While,
    If,
    Else,
    ElseIf,
    End,
    Break,
    Function,
    Return,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Tokenize `src`; `%` starts a comment to end of line. Newlines are
/// significant (statement separators), so they are emitted as tokens.
pub fn lex(src: &str) -> Result<Vec<Tok>, String> {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    // Context stack: inside `[ ]` (but not inside nested `( )`), MATLAB
    // treats ` -x` (space before, none after) as an element separator
    // plus unary minus: `[2.5 -3]` is two elements, `[2.5 - 3]` is one.
    #[derive(PartialEq)]
    enum Ctx {
        Bracket,
        Paren,
    }
    let mut ctx: Vec<Ctx> = Vec::new();
    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' | '\t' | '\r' => i += 1,
            '%' => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '\n' => {
                out.push(Tok::Newline);
                i += 1;
            }
            '0'..='9' | '.'
                if c.is_ascii_digit() || chars.get(i + 1).is_some_and(|n| n.is_ascii_digit()) =>
            {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
                    // A `.` followed by an operator char is elementwise-op,
                    // not part of the number.
                    if chars[i] == '.'
                        && matches!(chars.get(i + 1), Some('*') | Some('/') | Some('^'))
                    {
                        break;
                    }
                    i += 1;
                }
                // Scientific notation.
                if i < chars.len() && (chars[i] == 'e' || chars[i] == 'E') {
                    let mut j = i + 1;
                    if matches!(chars.get(j), Some('+') | Some('-')) {
                        j += 1;
                    }
                    if chars.get(j).is_some_and(|d| d.is_ascii_digit()) {
                        i = j;
                        while i < chars.len() && chars[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text: String = chars[start..i].iter().collect();
                let v = text
                    .parse::<f64>()
                    .map_err(|_| format!("bad number literal {text:?}"))?;
                out.push(Tok::Num(v));
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let word: String = chars[start..i].iter().collect();
                out.push(match word.as_str() {
                    "for" => Tok::For,
                    "while" => Tok::While,
                    "if" => Tok::If,
                    "else" => Tok::Else,
                    "elseif" => Tok::ElseIf,
                    "end" => Tok::End,
                    "break" => Tok::Break,
                    "function" => Tok::Function,
                    "return" => Tok::Return,
                    _ => Tok::Ident(word),
                });
            }
            '\'' => {
                // String literal (transpose is not supported; a quote
                // always opens a string in this subset).
                let mut s = String::new();
                i += 1;
                loop {
                    match chars.get(i) {
                        Some('\'') if chars.get(i + 1) == Some(&'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some('\'') => {
                            i += 1;
                            break;
                        }
                        Some(&c) => {
                            s.push(c);
                            i += 1;
                        }
                        None => return Err("unterminated string".into()),
                    }
                }
                out.push(Tok::Str(s));
            }
            '+' | '-' => {
                let in_bracket = ctx.last() == Some(&Ctx::Bracket);
                let space_before = i > 0 && matches!(chars[i - 1], ' ' | '\t');
                let tight_after = chars
                    .get(i + 1)
                    .is_some_and(|&n| n.is_ascii_alphanumeric() || n == '.' || n == '(');
                if in_bracket && space_before && tight_after {
                    // Element separator + sign: `[a -b]` → a, -b.
                    out.push(Tok::Comma);
                }
                out.push(if c == '+' { Tok::Plus } else { Tok::Minus });
                i += 1;
            }
            '*' => {
                out.push(Tok::Star);
                i += 1;
            }
            '/' => {
                out.push(Tok::Slash);
                i += 1;
            }
            '^' => {
                out.push(Tok::Caret);
                i += 1;
            }
            '.' => match chars.get(i + 1) {
                Some('*') => {
                    out.push(Tok::DotStar);
                    i += 2;
                }
                Some('/') => {
                    out.push(Tok::DotSlash);
                    i += 2;
                }
                Some('^') => {
                    out.push(Tok::DotCaret);
                    i += 2;
                }
                other => return Err(format!("unexpected '.' before {other:?}")),
            },
            '=' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Tok::Eq);
                    i += 2;
                } else {
                    out.push(Tok::Assign);
                    i += 1;
                }
            }
            '~' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Tok::Ne);
                    i += 2;
                } else {
                    out.push(Tok::Not);
                    i += 1;
                }
            }
            '<' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Tok::Le);
                    i += 2;
                } else {
                    out.push(Tok::Lt);
                    i += 1;
                }
            }
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Tok::Ge);
                    i += 2;
                } else {
                    out.push(Tok::Gt);
                    i += 1;
                }
            }
            '&' => {
                if chars.get(i + 1) == Some(&'&') {
                    out.push(Tok::AndAnd);
                    i += 2;
                } else {
                    return Err("single '&' unsupported (use &&)".into());
                }
            }
            '|' => {
                if chars.get(i + 1) == Some(&'|') {
                    out.push(Tok::OrOr);
                    i += 2;
                } else {
                    return Err("single '|' unsupported (use ||)".into());
                }
            }
            '(' => {
                ctx.push(Ctx::Paren);
                out.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                ctx.pop();
                out.push(Tok::RParen);
                i += 1;
            }
            '[' => {
                ctx.push(Ctx::Bracket);
                out.push(Tok::LBracket);
                i += 1;
            }
            ']' => {
                ctx.pop();
                out.push(Tok::RBracket);
                i += 1;
            }
            ',' => {
                out.push(Tok::Comma);
                i += 1;
            }
            ';' => {
                out.push(Tok::Semi);
                i += 1;
            }
            ':' => {
                out.push(Tok::Colon);
                i += 1;
            }
            other => return Err(format!("unexpected character {other:?}")),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_and_ops() {
        let toks = lex("x = 1.5 + 2e3;").unwrap();
        assert_eq!(
            toks,
            vec![
                Tok::Ident("x".into()),
                Tok::Assign,
                Tok::Num(1.5),
                Tok::Plus,
                Tok::Num(2000.0),
                Tok::Semi
            ]
        );
    }

    #[test]
    fn elementwise_ops_vs_decimal_points() {
        let toks = lex("y = a .* 2.5 ./ b .^ 2;").unwrap();
        assert!(toks.contains(&Tok::DotStar));
        assert!(toks.contains(&Tok::DotSlash));
        assert!(toks.contains(&Tok::DotCaret));
        assert!(toks.contains(&Tok::Num(2.5)));
    }

    #[test]
    fn number_then_elementwise() {
        // `2.*x` is 2 .* x, not 2. * x — MATLAB agrees either way.
        let toks = lex("2.*x").unwrap();
        assert_eq!(toks[0], Tok::Num(2.0));
        assert_eq!(toks[1], Tok::DotStar);
    }

    #[test]
    fn keywords_and_idents() {
        let toks = lex("for k = 1:10 end").unwrap();
        assert_eq!(toks[0], Tok::For);
        assert!(toks.contains(&Tok::Colon));
        assert_eq!(toks.last(), Some(&Tok::End));
        let toks = lex("fortune endgame").unwrap();
        assert_eq!(toks[0], Tok::Ident("fortune".into()));
        assert_eq!(toks[1], Tok::Ident("endgame".into()));
    }

    #[test]
    fn comments_stripped() {
        let toks = lex("x = 1; % the answer\ny = 2;").unwrap();
        assert!(toks
            .iter()
            .all(|t| !matches!(t, Tok::Ident(s) if s == "the")));
        assert!(toks.contains(&Tok::Newline));
    }

    #[test]
    fn strings_with_escaped_quote() {
        let toks = lex("s = 'it''s';").unwrap();
        assert!(toks.contains(&Tok::Str("it's".into())));
        assert!(lex("s = 'open").is_err());
    }

    #[test]
    fn comparison_operators() {
        let toks = lex("a == b ~= c <= d >= e < f > g").unwrap();
        for t in [Tok::Eq, Tok::Ne, Tok::Le, Tok::Ge, Tok::Lt, Tok::Gt] {
            assert!(toks.contains(&t), "{t:?}");
        }
    }

    #[test]
    fn bracket_space_minus_separates_elements() {
        // [2.5 -3] → two elements; [2.5 - 3] → one (binary minus).
        let two = lex("[2.5 -3]").unwrap();
        assert!(two.contains(&Tok::Comma), "{two:?}");
        let one = lex("[2.5 - 3]").unwrap();
        assert!(!one.contains(&Tok::Comma), "{one:?}");
        // Leading minus is plain unary.
        let lead = lex("[-1 2]").unwrap();
        assert!(!lead.contains(&Tok::Comma), "{lead:?}");
        // Inside parens within brackets the rule is suspended.
        let nested = lex("[f(a -b)]").unwrap();
        assert!(!nested.contains(&Tok::Comma), "{nested:?}");
        // Outside brackets nothing changes.
        let plain = lex("a -b").unwrap();
        assert_eq!(
            plain,
            vec![Tok::Ident("a".into()), Tok::Minus, Tok::Ident("b".into())]
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("x = #").is_err());
        assert!(lex("a & b").is_err());
    }
}
