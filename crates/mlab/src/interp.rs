//! The tree-walking interpreter.

use crate::ast::{BinOp, Expr, Index, Stmt, UnOp};
use crate::builtins;
use crate::parser::parse;
use crate::value::{elementwise, elementwise_complex, matmul, Value};
use std::collections::HashMap;
use std::fmt;

/// Interpreter error with a message.
#[derive(Debug, Clone, PartialEq)]
pub struct MlabError(pub String);

impl fmt::Display for MlabError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mlab: {}", self.0)
    }
}

impl std::error::Error for MlabError {}

impl From<String> for MlabError {
    fn from(s: String) -> Self {
        MlabError(s)
    }
}

/// Control-flow signal inside blocks.
enum Flow {
    Normal,
    Break,
    Return,
}

/// A user-defined function.
#[derive(Debug, Clone)]
struct FuncDef {
    params: Vec<String>,
    outputs: Vec<String>,
    body: Vec<Stmt>,
}

/// The MATLAB-subset interpreter: a workspace of variables plus an
/// output buffer for `disp`.
pub struct Interp {
    vars: HashMap<String, Value>,
    funcs: HashMap<String, FuncDef>,
    call_depth: usize,
    /// Text produced by `disp` (captured rather than printed, so library
    /// users and tests control where it goes).
    pub output: String,
    /// Statements executed — a cheap proxy for interpreter overhead,
    /// exposed for the performance analysis in the benchmarks.
    pub statements_executed: u64,
}

impl Default for Interp {
    fn default() -> Self {
        Self::new()
    }
}

impl Interp {
    /// A fresh workspace.
    pub fn new() -> Interp {
        Interp {
            vars: HashMap::new(),
            funcs: HashMap::new(),
            call_depth: 0,
            output: String::new(),
            statements_executed: 0,
        }
    }

    /// Pre-load a variable (how the benchmark harness hands the DAS
    /// array to the "MATLAB" script).
    pub fn set(&mut self, name: &str, value: Value) {
        self.vars.insert(name.to_string(), value);
    }

    /// Fetch a variable.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.vars.get(name)
    }

    /// Fetch a scalar variable.
    pub fn get_scalar(&self, name: &str) -> Option<f64> {
        self.vars.get(name).and_then(|v| v.as_scalar().ok())
    }

    /// Parse and execute a script in this workspace.
    pub fn run(&mut self, src: &str) -> Result<(), MlabError> {
        let stmts = parse(src).map_err(MlabError)?;
        self.exec_block(&stmts)?;
        Ok(())
    }

    fn exec_block(&mut self, stmts: &[Stmt]) -> Result<Flow, MlabError> {
        for stmt in stmts {
            match self.exec(stmt)? {
                Flow::Break => return Ok(Flow::Break),
                Flow::Return => return Ok(Flow::Return),
                Flow::Normal => {}
            }
        }
        Ok(Flow::Normal)
    }

    fn exec(&mut self, stmt: &Stmt) -> Result<Flow, MlabError> {
        self.statements_executed += 1;
        match stmt {
            Stmt::Assign {
                target,
                indices,
                value,
            } => {
                let v = self.eval(value)?;
                match indices {
                    None => {
                        self.vars.insert(target.clone(), v);
                    }
                    Some(ix) => self.assign_indexed(target, ix, v)?,
                }
                Ok(Flow::Normal)
            }
            Stmt::MultiAssign { targets, call } => {
                let results = match call {
                    Expr::CallOrIndex { name, args } if !self.vars.contains_key(name) => {
                        let argv = self.eval_args(args)?;
                        if self.funcs.contains_key(name) {
                            self.call_user(name, argv)?
                        } else {
                            builtins::call(self, name, argv).map_err(MlabError)?
                        }
                    }
                    other => vec![self.eval(other)?],
                };
                if results.len() < targets.len() {
                    return Err(MlabError(format!(
                        "function returned {} values, {} requested",
                        results.len(),
                        targets.len()
                    )));
                }
                for (t, v) in targets.iter().zip(results) {
                    self.vars.insert(t.clone(), v);
                }
                Ok(Flow::Normal)
            }
            Stmt::Expr(e) => {
                let v = self.eval(e)?;
                self.vars.insert("ans".to_string(), v);
                Ok(Flow::Normal)
            }
            Stmt::For { var, iter, body } => {
                let seq = self.eval(iter)?;
                let items: Vec<f64> = seq.to_real_vec().map_err(MlabError)?;
                for x in items {
                    self.vars.insert(var.clone(), Value::Num(x));
                    match self.exec_block(body)? {
                        Flow::Break => break,
                        Flow::Return => return Ok(Flow::Return),
                        Flow::Normal => {}
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::While { cond, body } => {
                let mut guard = 0u64;
                loop {
                    guard += 1;
                    if guard > 100_000_000 {
                        return Err(MlabError("while loop exceeded iteration budget".into()));
                    }
                    if !self.eval(cond)?.is_true() {
                        break;
                    }
                    match self.exec_block(body)? {
                        Flow::Break => break,
                        Flow::Return => return Ok(Flow::Return),
                        Flow::Normal => {}
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::If { arms, else_body } => {
                for (cond, body) in arms {
                    if self.eval(cond)?.is_true() {
                        return self.exec_block(body);
                    }
                }
                self.exec_block(else_body)
            }
            Stmt::Break => Ok(Flow::Break),
            Stmt::Return => Ok(Flow::Return),
            Stmt::FuncDef {
                name,
                params,
                outputs,
                body,
            } => {
                self.funcs.insert(
                    name.clone(),
                    FuncDef {
                        params: params.clone(),
                        outputs: outputs.clone(),
                        body: body.clone(),
                    },
                );
                Ok(Flow::Normal)
            }
        }
    }

    /// Invoke a user-defined function in a fresh workspace (MATLAB
    /// functions do not see the caller's variables).
    fn call_user(&mut self, name: &str, argv: Vec<Value>) -> Result<Vec<Value>, MlabError> {
        let def = self
            .funcs
            .get(name)
            .cloned()
            .ok_or_else(|| MlabError(format!("undefined function {name:?}")))?;
        if argv.len() > def.params.len() {
            return Err(MlabError(format!(
                "{name}: too many arguments ({} given, {} declared)",
                argv.len(),
                def.params.len()
            )));
        }
        if self.call_depth >= 128 {
            return Err(MlabError(format!("{name}: recursion limit exceeded")));
        }
        // Swap in an isolated workspace.
        let saved = std::mem::take(&mut self.vars);
        for (p, v) in def.params.iter().zip(argv) {
            self.vars.insert(p.clone(), v);
        }
        self.call_depth += 1;
        let flow = self.exec_block(&def.body);
        self.call_depth -= 1;
        let result = flow.and_then(|_| {
            def.outputs
                .iter()
                .map(|o| {
                    self.vars.get(o).cloned().ok_or_else(|| {
                        MlabError(format!("{name}: output variable {o:?} was never assigned"))
                    })
                })
                .collect::<Result<Vec<Value>, MlabError>>()
        });
        self.vars = saved;
        result
    }

    /// `x(indices) = value` with 1-D auto-grow (MATLAB behaviour).
    fn assign_indexed(
        &mut self,
        target: &str,
        ix: &[Index],
        value: Value,
    ) -> Result<(), MlabError> {
        let existing = self.vars.get(target).cloned().unwrap_or(Value::row(vec![]));
        let updated = match ix.len() {
            1 => {
                let idx = match &ix[0] {
                    Index::All => return Err(MlabError("x(:) = v unsupported".into())),
                    Index::Expr(e) => self.eval(e)?,
                };
                let i1 = idx.as_scalar().map_err(MlabError)? as usize;
                if i1 == 0 {
                    return Err(MlabError("indices are 1-based".into()));
                }
                let v = value.as_scalar().map_err(MlabError)?;
                let (rows, _) = existing.shape();
                let mut data = existing.to_real_vec().map_err(MlabError)?;
                if rows > 1 && i1 <= data.len() {
                    // Column-major linear index into a true matrix.
                    let (r, c) = existing.linear_to_rc(i1).map_err(MlabError)?;
                    let (_, cols) = existing.shape();
                    data[r * cols + c] = v;
                    Value::Matrix {
                        rows,
                        cols: data.len() / rows,
                        data,
                    }
                } else {
                    // Vector: grow with zeros as needed.
                    if i1 > data.len() {
                        data.resize(i1, 0.0);
                    }
                    data[i1 - 1] = v;
                    Value::row(data)
                }
            }
            2 => {
                let (rows, cols) = existing.shape();
                let mut data = existing.to_real_vec().map_err(MlabError)?;
                match (&ix[0], &ix[1]) {
                    (Index::Expr(re), Index::All) => {
                        let r1 = self.eval(re)?.as_scalar().map_err(MlabError)? as usize;
                        if r1 == 0 || r1 > rows {
                            return Err(MlabError(format!("row {r1} out of bounds")));
                        }
                        let row = value.to_real_vec().map_err(MlabError)?;
                        if row.len() != cols {
                            return Err(MlabError("row length mismatch".into()));
                        }
                        data[(r1 - 1) * cols..r1 * cols].copy_from_slice(&row);
                    }
                    (Index::Expr(re), Index::Expr(ce)) => {
                        let r1 = self.eval(re)?.as_scalar().map_err(MlabError)? as usize;
                        let c1 = self.eval(ce)?.as_scalar().map_err(MlabError)? as usize;
                        if r1 == 0 || r1 > rows || c1 == 0 || c1 > cols {
                            return Err(MlabError(format!("({r1},{c1}) out of bounds")));
                        }
                        data[(r1 - 1) * cols + (c1 - 1)] = value.as_scalar().map_err(MlabError)?;
                    }
                    _ => return Err(MlabError("unsupported indexed assignment form".into())),
                }
                Value::Matrix { rows, cols, data }
            }
            n => return Err(MlabError(format!("{n}-D assignment unsupported"))),
        };
        self.vars.insert(target.to_string(), updated);
        Ok(())
    }

    fn eval_args(&mut self, args: &[Index]) -> Result<Vec<Value>, MlabError> {
        args.iter()
            .map(|a| match a {
                Index::All => Ok(Value::Str(":".into())),
                Index::Expr(e) => self.eval(e),
            })
            .collect()
    }

    /// Evaluate an expression. Every variable read **clones** the value —
    /// the copy-semantics pessimization that models interpreted array
    /// environments.
    pub fn eval(&mut self, expr: &Expr) -> Result<Value, MlabError> {
        match expr {
            Expr::Num(v) => Ok(Value::Num(*v)),
            Expr::Str(s) => Ok(Value::Str(s.clone())),
            Expr::Var(name) => self
                .vars
                .get(name)
                .cloned()
                .ok_or_else(|| MlabError(format!("undefined variable or function {name:?}"))),
            Expr::Unary(op, inner) => {
                let v = self.eval(inner)?;
                match op {
                    UnOp::Neg => {
                        elementwise(&v, &Value::Num(-1.0), |a, b| a * b).map_err(MlabError)
                    }
                    UnOp::Not => elementwise(&v, &Value::Num(0.0), |a, _| f64::from(a == 0.0))
                        .map_err(MlabError),
                }
            }
            Expr::Bin(op, lhs, rhs) => {
                let a = self.eval(lhs)?;
                let b = self.eval(rhs)?;
                self.binop(*op, a, b)
            }
            Expr::Range { start, step, end } => {
                let s = self.eval(start)?.as_scalar().map_err(MlabError)?;
                let e = self.eval(end)?.as_scalar().map_err(MlabError)?;
                let st = match step {
                    Some(x) => self.eval(x)?.as_scalar().map_err(MlabError)?,
                    None => 1.0,
                };
                if st == 0.0 {
                    return Err(MlabError("range step cannot be zero".into()));
                }
                let mut data = Vec::new();
                let mut v = s;
                if st > 0.0 {
                    while v <= e + 1e-12 {
                        data.push(v);
                        v += st;
                    }
                } else {
                    while v >= e - 1e-12 {
                        data.push(v);
                        v += st;
                    }
                }
                Ok(Value::row(data))
            }
            Expr::MatrixLit(rows) => self.matrix_literal(rows),
            Expr::CallOrIndex { name, args } => {
                if self.vars.contains_key(name) {
                    let base = self.vars.get(name).cloned().expect("checked");
                    let argv = self.eval_args(args)?;
                    index_value(&base, &argv).map_err(MlabError)
                } else {
                    let argv = self.eval_args(args)?;
                    let mut results = if self.funcs.contains_key(name) {
                        self.call_user(name, argv)?
                    } else {
                        builtins::call(self, name, argv).map_err(MlabError)?
                    };
                    if results.is_empty() {
                        Ok(Value::row(vec![]))
                    } else {
                        Ok(results.swap_remove(0))
                    }
                }
            }
        }
    }

    fn binop(&mut self, op: BinOp, a: Value, b: Value) -> Result<Value, MlabError> {
        use BinOp::*;
        // Complex-aware paths for spectra.
        let complex = matches!(a, Value::CMatrix { .. }) || matches!(b, Value::CMatrix { .. });
        if complex {
            let out = match op {
                Add => elementwise_complex(&a, &b, |x, y| x + y),
                Sub => elementwise_complex(&a, &b, |x, y| x - y),
                Mul | ElemMul => elementwise_complex(&a, &b, |x, y| x * y),
                Div | ElemDiv => elementwise_complex(&a, &b, |x, y| x / y),
                _ => Err("unsupported complex operation".into()),
            };
            return out.map_err(MlabError);
        }
        let r = match op {
            Add => elementwise(&a, &b, |x, y| x + y),
            Sub => elementwise(&a, &b, |x, y| x - y),
            Mul => matmul(&a, &b),
            ElemMul => elementwise(&a, &b, |x, y| x * y),
            Div | ElemDiv => elementwise(&a, &b, |x, y| x / y),
            Pow | ElemPow => elementwise(&a, &b, f64::powf),
            Eq => elementwise(&a, &b, |x, y| f64::from(x == y)),
            Ne => elementwise(&a, &b, |x, y| f64::from(x != y)),
            Lt => elementwise(&a, &b, |x, y| f64::from(x < y)),
            Gt => elementwise(&a, &b, |x, y| f64::from(x > y)),
            Le => elementwise(&a, &b, |x, y| f64::from(x <= y)),
            Ge => elementwise(&a, &b, |x, y| f64::from(x >= y)),
            And => Ok(Value::Num(f64::from(a.is_true() && b.is_true()))),
            Or => Ok(Value::Num(f64::from(a.is_true() || b.is_true()))),
        };
        r.map_err(MlabError)
    }

    fn matrix_literal(&mut self, rows: &[Vec<Expr>]) -> Result<Value, MlabError> {
        if rows.is_empty() {
            return Ok(Value::row(vec![]));
        }
        let mut out_rows: Vec<Vec<f64>> = Vec::new();
        for row_exprs in rows {
            // Horizontal concatenation within the row.
            let mut row = Vec::new();
            for e in row_exprs {
                let v = self.eval(e)?;
                row.extend(v.to_real_vec().map_err(MlabError)?);
            }
            out_rows.push(row);
        }
        let cols = out_rows[0].len();
        if out_rows.iter().any(|r| r.len() != cols) {
            return Err(MlabError("matrix rows have unequal lengths".into()));
        }
        let rows_n = out_rows.len();
        Ok(Value::Matrix {
            rows: rows_n,
            cols,
            data: out_rows.into_iter().flatten().collect(),
        })
    }
}

/// Index `base` by evaluated index values (`Value::Str(":")` means All).
fn index_value(base: &Value, argv: &[Value]) -> Result<Value, String> {
    let (rows, cols) = base.shape();
    match argv.len() {
        1 => {
            let ix = &argv[0];
            if matches!(ix, Value::Str(s) if s == ":") {
                // x(:) — flatten column-major.
                let data = base.to_real_vec()?;
                let mut flat = Vec::with_capacity(data.len());
                for c in 0..cols {
                    for r in 0..rows {
                        flat.push(data[r * cols + c]);
                    }
                }
                return Ok(Value::row(flat));
            }
            let idxs = ix.to_real_vec()?;
            let mut out = Vec::with_capacity(idxs.len());
            for &i in &idxs {
                let (r, c) = base.linear_to_rc(i as usize)?;
                out.push(base.get2(r, c)?);
            }
            if out.len() == 1 {
                Ok(Value::Num(out[0]))
            } else {
                Ok(Value::row(out))
            }
        }
        2 => {
            let row_sel: Vec<usize> = match &argv[0] {
                Value::Str(s) if s == ":" => (0..rows).collect(),
                v => v.to_real_vec()?.iter().map(|&i| i as usize - 1).collect(),
            };
            let col_sel: Vec<usize> = match &argv[1] {
                Value::Str(s) if s == ":" => (0..cols).collect(),
                v => v.to_real_vec()?.iter().map(|&i| i as usize - 1).collect(),
            };
            let mut out = Vec::with_capacity(row_sel.len() * col_sel.len());
            for &r in &row_sel {
                for &c in &col_sel {
                    out.push(base.get2(r, c)?);
                }
            }
            if out.len() == 1 {
                Ok(Value::Num(out[0]))
            } else {
                Ok(Value::Matrix {
                    rows: row_sel.len(),
                    cols: col_sel.len(),
                    data: out,
                })
            }
        }
        n => Err(format!("{n}-D indexing unsupported")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Interp {
        let mut i = Interp::new();
        i.run(src).unwrap_or_else(|e| panic!("{e}: in {src}"));
        i
    }

    #[test]
    fn arithmetic_and_precedence() {
        let i = run("x = 2 + 3 * 4; y = (2 + 3) * 4; z = 2^3^2;");
        assert_eq!(i.get_scalar("x"), Some(14.0));
        assert_eq!(i.get_scalar("y"), Some(20.0));
        assert_eq!(i.get_scalar("z"), Some(512.0), "right-assoc power");
    }

    #[test]
    fn matlab_negative_power() {
        let i = run("y = -2^2;");
        assert_eq!(i.get_scalar("y"), Some(-4.0));
    }

    #[test]
    fn ranges_and_sum() {
        let i = run("s = sum(1:100); t = sum(10:-2:0);");
        assert_eq!(i.get_scalar("s"), Some(5050.0));
        assert_eq!(i.get_scalar("t"), Some(30.0));
    }

    #[test]
    fn vector_indexing_reads() {
        let i = run("v = [10 20 30 40]; a = v(2); b = v(2:3); c = v(:);");
        assert_eq!(i.get_scalar("a"), Some(20.0));
        assert_eq!(i.get("b"), Some(&Value::row(vec![20.0, 30.0])));
        assert_eq!(i.get("c").unwrap().numel(), 4);
    }

    #[test]
    fn matrix_indexing_2d() {
        let i = run("m = [1 2 3; 4 5 6]; a = m(2, 3); r = m(1, :); c = m(:, 2);");
        assert_eq!(i.get_scalar("a"), Some(6.0));
        assert_eq!(i.get("r"), Some(&Value::row(vec![1.0, 2.0, 3.0])));
        assert_eq!(
            i.get("c"),
            Some(&Value::Matrix {
                rows: 2,
                cols: 1,
                data: vec![2.0, 5.0]
            })
        );
    }

    #[test]
    fn indexed_assignment_and_growth() {
        let i = run("x = zeros(1, 3); x(2) = 7; x(5) = 1;");
        assert_eq!(i.get("x"), Some(&Value::row(vec![0.0, 7.0, 0.0, 0.0, 1.0])));
    }

    #[test]
    fn matrix_element_assignment() {
        let i = run("m = zeros(2, 2); m(2, 1) = 9; m(1, :) = [5 6];");
        assert_eq!(
            i.get("m"),
            Some(&Value::Matrix {
                rows: 2,
                cols: 2,
                data: vec![5.0, 6.0, 9.0, 0.0]
            })
        );
    }

    #[test]
    fn control_flow_composes() {
        let i = run("acc = 0;\n\
             for k = 1:10\n\
               if k == 5\n\
                 break\n\
               end\n\
               acc = acc + k;\n\
             end\n\
             n = 0;\n\
             while n < 7\n\
               n = n + 2;\n\
             end");
        assert_eq!(i.get_scalar("acc"), Some(10.0));
        assert_eq!(i.get_scalar("n"), Some(8.0));
    }

    #[test]
    fn variables_shadow_builtins() {
        let i = run("sum = [1 2 3]; y = sum(2);");
        assert_eq!(i.get_scalar("y"), Some(2.0), "indexing, not the builtin");
    }

    #[test]
    fn multi_assign_from_builtin() {
        let i = run("[b, a] = butter(2, 0.4); first = b(1);");
        let b = i.get("b").unwrap();
        assert_eq!(b.numel(), 3);
        assert!((i.get_scalar("first").unwrap() - 0.20657208).abs() < 1e-6);
    }

    #[test]
    fn undefined_variable_errors() {
        let mut i = Interp::new();
        let err = i.run("y = nosuchthing + 1;").unwrap_err();
        assert!(err.0.contains("undefined"));
    }

    #[test]
    fn statement_counter_ticks() {
        let i = run("x = 0; for k = 1:10 x = x + 1; end");
        assert!(i.statements_executed >= 12, "{}", i.statements_executed);
    }

    #[test]
    fn ans_captures_bare_expressions() {
        let i = run("3 + 4;");
        assert_eq!(i.get_scalar("ans"), Some(7.0));
    }
}
