//! `mlab` — a MATLAB-style interpreted array language.
//!
//! The DASSA paper's Figure 9 compares the DASSA pipeline against "the
//! same real DAS data analysis pipeline developed with MATLAB", the
//! platform the collaborating geophysicists actually use. MATLAB is
//! proprietary, so this crate reproduces the *mechanisms* that give an
//! interpreted array environment its performance profile, rather than
//! hard-coding a slowdown:
//!
//! * a tree-walking interpreter — per-statement and per-operator
//!   dispatch overhead;
//! * value semantics — assignments and argument passing copy arrays
//!   (MATLAB's copy-on-write pessimized to copy-always, as in the
//!   worst case of real pipelines);
//! * vectorized builtins that call the **same** `dsp` kernels DASSA
//!   uses, so numerical results agree with the native pipeline while
//!   control flow pays interpretation costs — exactly why "it is
//!   difficult for the whole Matlab code pipeline to be parallelized"
//!   while individual builtins are fast.
//!
//! Supported language: numeric scalars/matrices/complex matrices,
//! strings, arithmetic (`+ - * / ^` and element-wise `.* ./ .^`),
//! comparisons, ranges `a:b`, `a:s:b`, matrix literals `[1 2; 3 4]`,
//! 1-/2-D indexing and slicing with `:` (read and write), `for`/`if`/
//! `while`, multi-assignment `[b, a] = butter(...)`, and a builtin
//! library covering the paper's Table II (`detrend`, `butter`,
//! `filtfilt`, `resample`, `interp1`, `fft`, `ifft`, `abscorr`, …).
//!
//! # Example
//! ```
//! use mlab::Interp;
//! let mut interp = Interp::new();
//! interp.run("x = [1 2 3 4]; y = sum(x .* x);").unwrap();
//! assert_eq!(interp.get_scalar("y").unwrap(), 30.0);
//! ```

mod ast;
mod builtins;
pub mod dassa_bridge;
mod interp;
mod lexer;
mod parser;
mod value;

pub use interp::{Interp, MlabError};
pub use value::Value;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_script() {
        let mut i = Interp::new();
        i.run(
            "total = 0;\n\
             for k = 1:10\n\
               total = total + k^2;\n\
             end",
        )
        .unwrap();
        assert_eq!(i.get_scalar("total").unwrap(), 385.0);
    }
}
