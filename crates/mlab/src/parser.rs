//! Recursive-descent parser for the MATLAB subset.

use crate::ast::{BinOp, Expr, Index, Stmt, UnOp};
use crate::lexer::{lex, Tok};

/// Parse a script into a statement list.
pub fn parse(src: &str) -> Result<Vec<Stmt>, String> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let body = p.block(&[])?;
    if p.pos != p.toks.len() {
        return Err(format!("unexpected token {:?}", p.toks[p.pos]));
    }
    Ok(body)
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok) -> Result<(), String> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(format!("expected {t:?}, found {:?}", self.peek()))
        }
    }

    fn skip_separators(&mut self) {
        while matches!(
            self.peek(),
            Some(Tok::Newline) | Some(Tok::Semi) | Some(Tok::Comma)
        ) {
            self.pos += 1;
        }
    }

    /// Parse statements until one of `terminators` (or EOF); does not
    /// consume the terminator.
    fn block(&mut self, terminators: &[Tok]) -> Result<Vec<Stmt>, String> {
        let mut out = Vec::new();
        loop {
            self.skip_separators();
            match self.peek() {
                None => break,
                Some(t) if terminators.contains(t) => break,
                _ => out.push(self.statement()?),
            }
        }
        Ok(out)
    }

    fn statement(&mut self) -> Result<Stmt, String> {
        match self.peek() {
            Some(Tok::For) => self.for_stmt(),
            Some(Tok::While) => self.while_stmt(),
            Some(Tok::If) => self.if_stmt(),
            Some(Tok::Function) => self.func_def(),
            Some(Tok::Break) => {
                self.bump();
                Ok(Stmt::Break)
            }
            Some(Tok::Return) => {
                self.bump();
                Ok(Stmt::Return)
            }
            Some(Tok::LBracket) => self.multi_assign_or_expr(),
            _ => self.assign_or_expr(),
        }
    }

    /// `function [o1, o2] = name(p1, p2) body end`
    /// (single output may omit the brackets; zero outputs omit `out =`).
    fn func_def(&mut self) -> Result<Stmt, String> {
        self.expect(&Tok::Function)?;
        // Outputs: `[a, b] =`, `a =`, or none.
        let mut outputs = Vec::new();
        let save = self.pos;
        if self.eat(&Tok::LBracket) {
            loop {
                outputs.push(self.ident()?);
                if self.eat(&Tok::RBracket) {
                    break;
                }
                self.expect(&Tok::Comma)?;
            }
            self.expect(&Tok::Assign)?;
        } else if let Some(Tok::Ident(first)) = self.peek().cloned() {
            self.bump();
            if self.eat(&Tok::Assign) {
                outputs.push(first);
            } else {
                // No output: that ident was the function name; rewind.
                self.pos = save;
            }
        }
        let name = self.ident()?;
        let mut params = Vec::new();
        if self.eat(&Tok::LParen) && !self.eat(&Tok::RParen) {
            loop {
                params.push(self.ident()?);
                if self.eat(&Tok::RParen) {
                    break;
                }
                self.expect(&Tok::Comma)?;
            }
        }
        let body = self.block(&[Tok::End])?;
        self.expect(&Tok::End)?;
        Ok(Stmt::FuncDef {
            name,
            params,
            outputs,
            body,
        })
    }

    fn for_stmt(&mut self) -> Result<Stmt, String> {
        self.expect(&Tok::For)?;
        let var = self.ident()?;
        self.expect(&Tok::Assign)?;
        let iter = self.expr()?;
        let body = self.block(&[Tok::End])?;
        self.expect(&Tok::End)?;
        Ok(Stmt::For { var, iter, body })
    }

    fn while_stmt(&mut self) -> Result<Stmt, String> {
        self.expect(&Tok::While)?;
        let cond = self.expr()?;
        let body = self.block(&[Tok::End])?;
        self.expect(&Tok::End)?;
        Ok(Stmt::While { cond, body })
    }

    fn if_stmt(&mut self) -> Result<Stmt, String> {
        self.expect(&Tok::If)?;
        let mut arms = Vec::new();
        let cond = self.expr()?;
        let body = self.block(&[Tok::End, Tok::Else, Tok::ElseIf])?;
        arms.push((cond, body));
        let mut else_body = Vec::new();
        loop {
            if self.eat(&Tok::ElseIf) {
                let c = self.expr()?;
                let b = self.block(&[Tok::End, Tok::Else, Tok::ElseIf])?;
                arms.push((c, b));
            } else if self.eat(&Tok::Else) {
                else_body = self.block(&[Tok::End])?;
                self.expect(&Tok::End)?;
                return Ok(Stmt::If { arms, else_body });
            } else {
                self.expect(&Tok::End)?;
                return Ok(Stmt::If { arms, else_body });
            }
        }
    }

    /// `[a, b] = f(...)`, or a matrix-literal expression statement.
    fn multi_assign_or_expr(&mut self) -> Result<Stmt, String> {
        // Try multi-assign: [ident, ident, ...] = call
        let save = self.pos;
        self.expect(&Tok::LBracket)?;
        let mut targets = Vec::new();
        let is_multi = loop {
            match self.bump() {
                Some(Tok::Ident(name)) => {
                    targets.push(name);
                    match self.bump() {
                        Some(Tok::Comma) => continue,
                        Some(Tok::RBracket) => break self.peek() == Some(&Tok::Assign),
                        _ => break false,
                    }
                }
                _ => break false,
            }
        };
        if is_multi && !targets.is_empty() {
            self.expect(&Tok::Assign)?;
            let call = self.expr()?;
            return Ok(Stmt::MultiAssign { targets, call });
        }
        // Not a multi-assign: rewind and parse as an expression.
        self.pos = save;
        let e = self.expr()?;
        Ok(Stmt::Expr(e))
    }

    fn assign_or_expr(&mut self) -> Result<Stmt, String> {
        // Lookahead: IDENT [ ( indices ) ] '=' …
        let save = self.pos;
        if let Some(Tok::Ident(name)) = self.peek().cloned() {
            self.bump();
            if self.eat(&Tok::Assign) {
                let value = self.expr()?;
                return Ok(Stmt::Assign {
                    target: name,
                    indices: None,
                    value,
                });
            }
            if self.peek() == Some(&Tok::LParen) {
                if let Ok(indices) = self.index_list() {
                    if self.eat(&Tok::Assign) {
                        let value = self.expr()?;
                        return Ok(Stmt::Assign {
                            target: name,
                            indices: Some(indices),
                            value,
                        });
                    }
                }
            }
            self.pos = save;
        }
        let e = self.expr()?;
        Ok(Stmt::Expr(e))
    }

    fn ident(&mut self) -> Result<String, String> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(format!("expected identifier, found {other:?}")),
        }
    }

    /// `( index {, index} )`
    fn index_list(&mut self) -> Result<Vec<Index>, String> {
        self.expect(&Tok::LParen)?;
        let mut args = Vec::new();
        if self.eat(&Tok::RParen) {
            return Ok(args);
        }
        loop {
            if self.peek() == Some(&Tok::Colon)
                && matches!(
                    self.toks.get(self.pos + 1),
                    Some(Tok::Comma) | Some(Tok::RParen)
                )
            {
                self.bump();
                args.push(Index::All);
            } else {
                args.push(Index::Expr(self.expr()?));
            }
            if self.eat(&Tok::RParen) {
                return Ok(args);
            }
            self.expect(&Tok::Comma)?;
        }
    }

    // ---- expression precedence climbing -----------------------------

    /// expr := range (lowest precedence above assignment)
    fn expr(&mut self) -> Result<Expr, String> {
        self.range_expr()
    }

    /// range := or (':' or (':' or)?)?
    fn range_expr(&mut self) -> Result<Expr, String> {
        let first = self.or_expr()?;
        if self.peek() != Some(&Tok::Colon) {
            return Ok(first);
        }
        self.bump();
        let second = self.or_expr()?;
        if self.eat(&Tok::Colon) {
            let third = self.or_expr()?;
            Ok(Expr::Range {
                start: Box::new(first),
                step: Some(Box::new(second)),
                end: Box::new(third),
            })
        } else {
            Ok(Expr::Range {
                start: Box::new(first),
                step: None,
                end: Box::new(second),
            })
        }
    }

    fn or_expr(&mut self) -> Result<Expr, String> {
        let mut lhs = self.and_expr()?;
        while self.eat(&Tok::OrOr) {
            let rhs = self.and_expr()?;
            lhs = Expr::Bin(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, String> {
        let mut lhs = self.cmp_expr()?;
        while self.eat(&Tok::AndAnd) {
            let rhs = self.cmp_expr()?;
            lhs = Expr::Bin(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, String> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Some(Tok::Eq) => BinOp::Eq,
            Some(Tok::Ne) => BinOp::Ne,
            Some(Tok::Lt) => BinOp::Lt,
            Some(Tok::Gt) => BinOp::Gt,
            Some(Tok::Le) => BinOp::Le,
            Some(Tok::Ge) => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.add_expr()?;
        Ok(Expr::Bin(op, Box::new(lhs), Box::new(rhs)))
    }

    fn add_expr(&mut self) -> Result<Expr, String> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => BinOp::Add,
                Some(Tok::Minus) => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn mul_expr(&mut self) -> Result<Expr, String> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => BinOp::Mul,
                Some(Tok::Slash) => BinOp::Div,
                Some(Tok::DotStar) => BinOp::ElemMul,
                Some(Tok::DotSlash) => BinOp::ElemDiv,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn unary_expr(&mut self) -> Result<Expr, String> {
        match self.peek() {
            Some(Tok::Minus) => {
                self.bump();
                Ok(Expr::Unary(UnOp::Neg, Box::new(self.unary_expr()?)))
            }
            Some(Tok::Not) => {
                self.bump();
                Ok(Expr::Unary(UnOp::Not, Box::new(self.unary_expr()?)))
            }
            _ => self.pow_expr(),
        }
    }

    /// Power binds tighter than unary minus on the left (as in MATLAB:
    /// `-2^2 == -4`) and is right-associative.
    fn pow_expr(&mut self) -> Result<Expr, String> {
        let base = self.postfix_expr()?;
        let op = match self.peek() {
            Some(Tok::Caret) => BinOp::Pow,
            Some(Tok::DotCaret) => BinOp::ElemPow,
            _ => return Ok(base),
        };
        self.bump();
        let exp = self.unary_expr()?; // right-assoc, allows -x in exponent
        Ok(Expr::Bin(op, Box::new(base), Box::new(exp)))
    }

    fn postfix_expr(&mut self) -> Result<Expr, String> {
        match self.bump() {
            Some(Tok::Num(v)) => Ok(Expr::Num(v)),
            Some(Tok::Str(s)) => Ok(Expr::Str(s)),
            Some(Tok::Ident(name)) => {
                if self.peek() == Some(&Tok::LParen) {
                    let args = self.index_list()?;
                    Ok(Expr::CallOrIndex { name, args })
                } else {
                    Ok(Expr::Var(name))
                }
            }
            Some(Tok::LParen) => {
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Some(Tok::LBracket) => self.matrix_literal(),
            other => Err(format!("unexpected token {other:?} in expression")),
        }
    }

    /// `[row {; row}]` with rows of space/comma-separated expressions.
    /// (The opening `[` has been consumed.)
    fn matrix_literal(&mut self) -> Result<Expr, String> {
        let mut rows = Vec::new();
        let mut row = Vec::new();
        loop {
            match self.peek() {
                Some(Tok::RBracket) => {
                    self.bump();
                    if !row.is_empty() {
                        rows.push(row);
                    }
                    return Ok(Expr::MatrixLit(rows));
                }
                Some(Tok::Semi) | Some(Tok::Newline) => {
                    self.bump();
                    if !row.is_empty() {
                        rows.push(std::mem::take(&mut row));
                    }
                }
                Some(Tok::Comma) => {
                    self.bump();
                }
                None => return Err("unterminated matrix literal".into()),
                _ => row.push(self.expr()?),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_assignment() {
        let stmts = parse("x = 1 + 2 * 3;").unwrap();
        assert_eq!(stmts.len(), 1);
        match &stmts[0] {
            Stmt::Assign {
                target,
                indices,
                value,
            } => {
                assert_eq!(target, "x");
                assert!(indices.is_none());
                // 1 + (2 * 3) by precedence
                assert!(matches!(value, Expr::Bin(BinOp::Add, _, _)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_indexed_assignment() {
        let stmts = parse("a(3) = 7; b(1, :) = c;").unwrap();
        assert!(matches!(&stmts[0], Stmt::Assign { indices: Some(ix), .. } if ix.len() == 1));
        assert!(matches!(&stmts[1],
            Stmt::Assign { indices: Some(ix), .. }
                if ix.len() == 2 && ix[1] == Index::All));
    }

    #[test]
    fn parses_multi_assignment() {
        let stmts = parse("[b, a] = butter(4, 0.3);").unwrap();
        match &stmts[0] {
            Stmt::MultiAssign { targets, call } => {
                assert_eq!(targets, &vec!["b".to_string(), "a".to_string()]);
                assert!(matches!(call, Expr::CallOrIndex { name, .. } if name == "butter"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_matrix_literal_rows() {
        let stmts = parse("m = [1 2 3; 4 5 6];").unwrap();
        match &stmts[0] {
            Stmt::Assign {
                value: Expr::MatrixLit(rows),
                ..
            } => {
                assert_eq!(rows.len(), 2);
                assert_eq!(rows[0].len(), 3);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_ranges() {
        let stmts = parse("r = 1:10; s = 0:0.5:5;").unwrap();
        assert!(matches!(
            &stmts[0],
            Stmt::Assign {
                value: Expr::Range { step: None, .. },
                ..
            }
        ));
        assert!(matches!(
            &stmts[1],
            Stmt::Assign {
                value: Expr::Range { step: Some(_), .. },
                ..
            }
        ));
    }

    #[test]
    fn parses_control_flow() {
        let src = "\
            total = 0;\n\
            for k = 1:3\n\
              if k == 2\n\
                total = total + 10;\n\
              elseif k > 2\n\
                total = total + 100;\n\
              else\n\
                total = total + 1;\n\
              end\n\
            end\n\
            while total > 50\n\
              total = total - 50;\n\
              break\n\
            end";
        let stmts = parse(src).unwrap();
        assert_eq!(stmts.len(), 3);
        assert!(matches!(&stmts[1], Stmt::For { .. }));
        assert!(matches!(&stmts[2], Stmt::While { .. }));
    }

    #[test]
    fn matlab_pow_precedence() {
        // -2^2 parses as -(2^2)
        let stmts = parse("y = -2^2;").unwrap();
        match &stmts[0] {
            Stmt::Assign { value, .. } => {
                assert!(matches!(value, Expr::Unary(UnOp::Neg, inner)
                    if matches!(**inner, Expr::Bin(BinOp::Pow, _, _))));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn call_with_colon_index() {
        let stmts = parse("row = data(3, :);").unwrap();
        match &stmts[0] {
            Stmt::Assign {
                value: Expr::CallOrIndex { name, args },
                ..
            } => {
                assert_eq!(name, "data");
                assert_eq!(args.len(), 2);
                assert_eq!(args[1], Index::All);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn errors_on_unbalanced() {
        assert!(parse("x = (1 + 2;").is_err());
        assert!(parse("for k = 1:3").is_err());
        assert!(parse("x = [1 2").is_err());
    }
}
