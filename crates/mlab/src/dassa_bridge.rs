//! DASSA builtins for the mlab language — the paper's future work
//! realized: *"Future work on DASSA includes an API in Python or even
//! in MATLAB to enable interactive DAS data analysis."*
//!
//! These builtins expose the full DASSA workflow (scan → search → merge
//! → read → analyse) to interactive scripts, so a geophysicist can
//! write MATLAB-style one-liners against real DAS file sets:
//!
//! ```matlab
//! data = das_read('/data/das', '170728224510', 5);   % 6 files as a matrix
//! simi = das_local_similarity(data, 25, 1, 12, 50);  % Algorithm 2
//! scores = das_interferometry(data, 0.01, 0.4, 1);   % Algorithm 3
//! ```

use crate::value::Value;
use dasgen::{write_minute_files, Scene};
use dassa::prelude::*;

/// Dispatch a `das_*` builtin. Returns `None` when `name` is not a
/// bridge builtin (the caller falls through to the core library).
pub fn call(name: &str, argv: &[Value]) -> Option<Result<Vec<Value>, String>> {
    Some(match name {
        "das_read" => das_read(argv),
        "das_search" => das_search(argv),
        "das_generate" => das_generate(argv),
        "das_local_similarity" => das_local_similarity(argv),
        "das_interferometry" => das_interferometry(argv),
        _ => return None,
    })
}

fn arg(argv: &[Value], i: usize) -> Result<&Value, String> {
    argv.get(i)
        .ok_or_else(|| format!("missing argument {}", i + 1))
}

fn str_arg(argv: &[Value], i: usize) -> Result<String, String> {
    match arg(argv, i)? {
        Value::Str(s) => Ok(s.clone()),
        other => Err(format!(
            "argument {} must be a string, got {}x{}",
            i + 1,
            other.shape().0,
            other.shape().1
        )),
    }
}

fn usize_arg(argv: &[Value], i: usize) -> Result<usize, String> {
    Ok(arg(argv, i)?.as_scalar()? as usize)
}

/// `data = das_read(dir, start_ts, count)` — scan a directory, run the
/// type-1 timestamp query, merge hits into a VCA, and return the full
/// `channel × time` matrix.
fn das_read(argv: &[Value]) -> Result<Vec<Value>, String> {
    let dir = str_arg(argv, 0)?;
    let start: u64 = str_arg(argv, 1)?
        .parse()
        .map_err(|_| "start timestamp must be a yymmddhhmmss string".to_string())?;
    let count = usize_arg(argv, 2)?;
    let catalog = FileCatalog::scan(&dir).map_err(|e| e.to_string())?;
    let hits = catalog
        .search_range(start, count)
        .map_err(|e| e.to_string())?;
    let vca = Vca::from_entries(&hits).map_err(|e| e.to_string())?;
    let data = vca.read_all_f64().map_err(|e| e.to_string())?;
    Ok(vec![Value::Matrix {
        rows: data.rows(),
        cols: data.cols(),
        data: data.into_vec(),
    }])
}

/// `names = das_search(dir, regex)` — type-2 regex query; returns hit
/// count and prints matches to the interpreter output... kept simple:
/// returns the number of hits (scripts branch on it).
fn das_search(argv: &[Value]) -> Result<Vec<Value>, String> {
    let dir = str_arg(argv, 0)?;
    let pattern = str_arg(argv, 1)?;
    let catalog = FileCatalog::scan(&dir).map_err(|e| e.to_string())?;
    let hits = catalog.search_regex(&pattern).map_err(|e| e.to_string())?;
    Ok(vec![Value::Num(hits.len() as f64)])
}

/// `data = das_generate(channels, hz, seconds, seed)` — render a
/// synthetic demo scene (vehicles + earthquake + persistent source) as
/// a matrix; `das_generate(dir, channels, hz, minutes, seed)` writes
/// one-minute files instead and returns the file count.
fn das_generate(argv: &[Value]) -> Result<Vec<Value>, String> {
    if let Ok(dir) = str_arg(argv, 0) {
        let channels = usize_arg(argv, 1)?;
        let hz = arg(argv, 2)?.as_scalar()?;
        let minutes = usize_arg(argv, 3)?;
        let seed = usize_arg(argv, 4)? as u64;
        let scene = Scene::demo(channels, hz, minutes as f64 * 60.0, seed);
        let paths = write_minute_files(&scene, std::path::Path::new(&dir), "170728224510", minutes)
            .map_err(|e| e.to_string())?;
        return Ok(vec![Value::Num(paths.len() as f64)]);
    }
    let channels = usize_arg(argv, 0)?;
    let hz = arg(argv, 1)?.as_scalar()?;
    let seconds = arg(argv, 2)?.as_scalar()?;
    let seed = usize_arg(argv, 3)? as u64;
    let scene = Scene::demo(channels, hz, seconds, seed);
    let rendered = scene.render(0.0, scene.samples_for(seconds));
    Ok(vec![Value::Matrix {
        rows: rendered.rows(),
        cols: rendered.cols(),
        data: rendered.as_slice().iter().map(|&v| v as f64).collect(),
    }])
}

fn matrix_arg(argv: &[Value], i: usize) -> Result<arrayudf::Array2<f64>, String> {
    match arg(argv, i)? {
        Value::Matrix { rows, cols, data } => {
            Ok(arrayudf::Array2::from_vec(*rows, *cols, data.clone()))
        }
        other => Err(format!(
            "argument {} must be a matrix, got {:?}",
            i + 1,
            other.shape()
        )),
    }
}

/// `simi = das_local_similarity(data, M, K, L, stride)` — Algorithm 2
/// over every channel, multithreaded under the hood.
fn das_local_similarity(argv: &[Value]) -> Result<Vec<Value>, String> {
    let data = matrix_arg(argv, 0)?;
    let params = LocalSimiParams {
        half_window: usize_arg(argv, 1)?,
        channel_offset: usize_arg(argv, 2)?,
        search_half: usize_arg(argv, 3)?,
        time_stride: usize_arg(argv, 4)?.max(1),
    };
    let out = local_similarity(
        &data,
        &params,
        &Haee::builder().threads(omp::num_procs()).build(),
    );
    Ok(vec![Value::Matrix {
        rows: out.rows(),
        cols: out.cols(),
        data: out.into_vec(),
    }])
}

/// `scores = das_interferometry(data, f_lo, f_hi, master)` — Algorithm 3
/// against the 1-based master channel.
fn das_interferometry(argv: &[Value]) -> Result<Vec<Value>, String> {
    let data = matrix_arg(argv, 0)?;
    let lo = arg(argv, 1)?.as_scalar()?;
    let hi = arg(argv, 2)?.as_scalar()?;
    let master1 = usize_arg(argv, 3)?;
    if master1 == 0 {
        return Err("master channel is 1-based".into());
    }
    let params = InterferometryParams {
        band: (lo, hi),
        master_channel: master1 - 1,
        ..Default::default()
    };
    let scores = dassa::dasa::interferometry(
        &data,
        &params,
        &Haee::builder().threads(omp::num_procs()).build(),
    )
    .map_err(|e| e.to_string())?;
    Ok(vec![Value::row(scores)])
}

#[cfg(test)]
mod tests {
    use crate::Interp;

    fn dataset_dir(tag: &str) -> String {
        let dir = std::env::temp_dir().join(format!("mlab-bridge-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir.display().to_string()
    }

    #[test]
    fn generate_write_then_read_back() {
        let dir = dataset_dir("rw");
        let mut i = Interp::new();
        i.run(&format!(
            "n = das_generate('{dir}', 8, 20, 2, 5);\n\
             data = das_read('{dir}', '170728224510', 1);\n\
             r = size(data, 1); c = size(data, 2);"
        ))
        .unwrap();
        assert_eq!(i.get_scalar("n"), Some(2.0));
        assert_eq!(i.get_scalar("r"), Some(8.0));
        assert_eq!(i.get_scalar("c"), Some(2.0 * 20.0 * 60.0));
    }

    #[test]
    fn regex_search_from_script() {
        let dir = dataset_dir("regex");
        let mut i = Interp::new();
        i.run(&format!(
            "das_generate('{dir}', 4, 20, 3, 1);\n\
             hits = das_search('{dir}', '1707282245.0');\n\
             all = das_search('{dir}', 'westSac');"
        ))
        .unwrap();
        assert_eq!(i.get_scalar("hits"), Some(1.0));
        assert_eq!(i.get_scalar("all"), Some(3.0));
    }

    #[test]
    fn interactive_local_similarity() {
        let mut i = Interp::new();
        i.run(
            "data = das_generate(12, 25, 60, 9);\n\
             simi = das_local_similarity(data, 10, 1, 4, 25);\n\
             peak = max(simi(:)); rows = size(simi, 1);",
        )
        .unwrap();
        assert_eq!(i.get_scalar("rows"), Some(12.0));
        let peak = i.get_scalar("peak").unwrap();
        assert!((0.0..=1.0).contains(&peak) && peak > 0.3, "peak {peak}");
    }

    #[test]
    fn interactive_interferometry_master_is_one_based() {
        let mut i = Interp::new();
        i.run(
            "data = das_generate(6, 25, 40, 2);\n\
             s = das_interferometry(data, 0.02, 0.4, 1);\n\
             self = s(1); n = length(s);",
        )
        .unwrap();
        assert_eq!(i.get_scalar("n"), Some(6.0));
        assert!((i.get_scalar("self").unwrap() - 1.0).abs() < 1e-9);
        // 0 must be rejected (MATLAB users think 1-based).
        let mut j = Interp::new();
        assert!(j
            .run("data = das_generate(4, 25, 40, 2); s = das_interferometry(data, 0.02, 0.4, 0);")
            .is_err());
    }

    #[test]
    fn bad_arguments_error_cleanly() {
        let mut i = Interp::new();
        assert!(i.run("x = das_read(42, '170728224510', 1);").is_err());
        assert!(i.run("x = das_local_similarity(7, 1, 1, 1, 1);").is_err());
    }
}
