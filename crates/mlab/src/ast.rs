//! AST for the MATLAB subset.

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,     // matrix/scalar *
    Div,     // /
    Pow,     // ^
    ElemMul, // .*
    ElemDiv, // ./
    ElemPow, // .^
    Eq,
    Ne,
    Lt,
    Gt,
    Le,
    Ge,
    And,
    Or,
}

/// An index argument in `x(a, b)`.
#[derive(Debug, Clone, PartialEq)]
pub enum Index {
    /// A full-dimension selection `:`.
    All,
    /// Any expression (scalar index or index vector/range).
    Expr(Expr),
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Num(f64),
    Str(String),
    Var(String),
    Unary(UnOp, Box<Expr>),
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// `a:b` or `a:s:b`.
    Range {
        start: Box<Expr>,
        step: Option<Box<Expr>>,
        end: Box<Expr>,
    },
    /// `[e11 e12; e21 e22]` — row-major concatenation.
    MatrixLit(Vec<Vec<Expr>>),
    /// `name(args)` — function call *or* indexing, resolved at runtime
    /// exactly as MATLAB does (variables shadow functions).
    CallOrIndex {
        name: String,
        args: Vec<Index>,
    },
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    Neg,
    Not,
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `x = expr` or `x(i, j) = expr`.
    Assign {
        target: String,
        indices: Option<Vec<Index>>,
        value: Expr,
    },
    /// `[a, b] = f(...)` — multi-value assignment.
    MultiAssign {
        targets: Vec<String>,
        call: Expr,
    },
    /// Bare expression (evaluated for effect; result stored in `ans`).
    Expr(Expr),
    For {
        var: String,
        iter: Expr,
        body: Vec<Stmt>,
    },
    While {
        cond: Expr,
        body: Vec<Stmt>,
    },
    If {
        /// `(condition, body)` arms: `if`, then any `elseif`s.
        arms: Vec<(Expr, Vec<Stmt>)>,
        else_body: Vec<Stmt>,
    },
    Break,
    /// `return` — exit the enclosing function (or script).
    Return,
    /// `function [outs] = name(params) body end`.
    FuncDef {
        name: String,
        params: Vec<String>,
        outputs: Vec<String>,
        body: Vec<Stmt>,
    },
}
