//! Builtin function library.
//!
//! Vectorized kernels dispatch to the same `dsp` crate DASSA's native
//! pipeline uses, so `mlab` scripts and DASSA agree numerically; the
//! interpreter around them supplies the per-statement overhead that
//! characterizes the MATLAB baseline of Figure 9.

use crate::interp::Interp;
use crate::value::Value;
use dsp::FilterBand;

/// Invoke builtin `name` with `argv`; returns one or more values
/// (multi-assignment consumes more than one, e.g. `[b, a] = butter(…)`).
pub fn call(interp: &mut Interp, name: &str, argv: Vec<Value>) -> Result<Vec<Value>, String> {
    // Interactive DASSA builtins (das_read, das_local_similarity, …).
    if let Some(result) = crate::dassa_bridge::call(name, &argv) {
        return result;
    }
    let one = |v: Value| Ok(vec![v]);
    match name {
        // ---- construction ------------------------------------------------
        "zeros" | "ones" => {
            let fill = if name == "zeros" { 0.0 } else { 1.0 };
            let (r, c) = dims_from_args(&argv)?;
            one(Value::Matrix {
                rows: r,
                cols: c,
                data: vec![fill; r * c],
            })
        }
        "linspace" => {
            let a = arg(&argv, 0)?.as_scalar()?;
            let b = arg(&argv, 1)?.as_scalar()?;
            let n = arg(&argv, 2)?.as_scalar()? as usize;
            if n < 2 {
                return one(Value::row(vec![b]));
            }
            let step = (b - a) / (n - 1) as f64;
            one(Value::row((0..n).map(|i| a + step * i as f64).collect()))
        }
        // ---- shape --------------------------------------------------------
        "length" => one(Value::Num({
            let (r, c) = arg(&argv, 0)?.shape();
            r.max(c) as f64
        })),
        "numel" => one(Value::Num(arg(&argv, 0)?.numel() as f64)),
        "size" => {
            let (r, c) = arg(&argv, 0)?.shape();
            if argv.len() >= 2 {
                let d = arg(&argv, 1)?.as_scalar()? as usize;
                one(Value::Num(match d {
                    1 => r as f64,
                    2 => c as f64,
                    _ => 1.0,
                }))
            } else {
                one(Value::row(vec![r as f64, c as f64]))
            }
        }
        "isempty" => one(Value::Num(f64::from(arg(&argv, 0)?.numel() == 0))),
        // ---- elementwise math ----------------------------------------------
        "abs" => match arg(&argv, 0)? {
            Value::CMatrix { rows, cols, data } => one(Value::Matrix {
                rows: *rows,
                cols: *cols,
                data: data.iter().map(|z| z.abs()).collect(),
            }),
            v => map_real(v, f64::abs).map(|x| vec![x]),
        },
        "sqrt" => map_real(arg(&argv, 0)?, f64::sqrt).map(|v| vec![v]),
        "sin" => map_real(arg(&argv, 0)?, f64::sin).map(|v| vec![v]),
        "cos" => map_real(arg(&argv, 0)?, f64::cos).map(|v| vec![v]),
        "exp" => map_real(arg(&argv, 0)?, f64::exp).map(|v| vec![v]),
        "log" => map_real(arg(&argv, 0)?, f64::ln).map(|v| vec![v]),
        "floor" => map_real(arg(&argv, 0)?, f64::floor).map(|v| vec![v]),
        "round" => map_real(arg(&argv, 0)?, f64::round).map(|v| vec![v]),
        // ---- reductions -----------------------------------------------------
        "sum" => one(Value::Num(arg(&argv, 0)?.to_real_vec()?.iter().sum())),
        "mean" => {
            let v = arg(&argv, 0)?.to_real_vec()?;
            if v.is_empty() {
                return Err("mean of empty array".into());
            }
            one(Value::Num(v.iter().sum::<f64>() / v.len() as f64))
        }
        "max" => {
            if argv.len() >= 2 {
                // max(a, b) elementwise.
                return crate::value::elementwise(arg(&argv, 0)?, arg(&argv, 1)?, f64::max)
                    .map(|v| vec![v]);
            }
            let v = arg(&argv, 0)?.to_real_vec()?;
            let m = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            one(Value::Num(m))
        }
        "min" => {
            if argv.len() >= 2 {
                return crate::value::elementwise(arg(&argv, 0)?, arg(&argv, 1)?, f64::min)
                    .map(|v| vec![v]);
            }
            let v = arg(&argv, 0)?.to_real_vec()?;
            let m = v.iter().cloned().fold(f64::INFINITY, f64::min);
            one(Value::Num(m))
        }
        // ---- Table II: DasLib ------------------------------------------------
        "detrend" => {
            let x = arg(&argv, 0)?;
            let out =
                if argv.len() >= 2 && matches!(arg(&argv, 1)?, Value::Str(s) if s == "constant") {
                    dsp::detrend_constant(&x.to_real_vec()?)
                } else {
                    dsp::detrend(&x.to_real_vec()?)
                };
            one(Value::reshape_like(out, x))
        }
        "butter" => {
            let n = arg(&argv, 0)?.as_scalar()? as usize;
            let wn = arg(&argv, 1)?;
            let band = match wn.numel() {
                2 => {
                    let v = wn.to_real_vec()?;
                    FilterBand::Bandpass(v[0], v[1])
                }
                1 => {
                    let w = wn.as_scalar()?;
                    if argv.len() >= 3 && matches!(arg(&argv, 2)?, Value::Str(s) if s == "high") {
                        FilterBand::Highpass(w)
                    } else {
                        FilterBand::Lowpass(w)
                    }
                }
                other => return Err(format!("butter: Wn must have 1 or 2 elements, got {other}")),
            };
            let (b, a) = dsp::butter(n, band);
            Ok(vec![Value::row(b), Value::row(a)])
        }
        "filter" => {
            let b = arg(&argv, 0)?.to_real_vec()?;
            let a = arg(&argv, 1)?.to_real_vec()?;
            let x = arg(&argv, 2)?;
            one(Value::reshape_like(
                dsp::lfilter(&b, &a, &x.to_real_vec()?),
                x,
            ))
        }
        "filtfilt" => {
            let b = arg(&argv, 0)?.to_real_vec()?;
            let a = arg(&argv, 1)?.to_real_vec()?;
            let x = arg(&argv, 2)?;
            one(Value::reshape_like(
                dsp::filtfilt(&b, &a, &x.to_real_vec()?),
                x,
            ))
        }
        "resample" => {
            let x = arg(&argv, 0)?.to_real_vec()?;
            let p = arg(&argv, 1)?.as_scalar()? as usize;
            let q = arg(&argv, 2)?.as_scalar()? as usize;
            one(Value::row(dsp::resample(&x, p, q)))
        }
        "interp1" => {
            let x0 = arg(&argv, 0)?.to_real_vec()?;
            let y0 = arg(&argv, 1)?.to_real_vec()?;
            let xq = arg(&argv, 2)?.to_real_vec()?;
            one(Value::row(dsp::interp1(&x0, &y0, &xq)))
        }
        "fft" => {
            let x = arg(&argv, 0)?.to_complex_vec()?;
            one(Value::crow(dsp::fft(&x)))
        }
        "ifft" => {
            let x = arg(&argv, 0)?.to_complex_vec()?;
            one(Value::crow(dsp::ifft(&x)))
        }
        "real" => {
            let x = arg(&argv, 0)?.to_complex_vec()?;
            one(Value::row(x.iter().map(|z| z.re).collect()))
        }
        "imag" => {
            let x = arg(&argv, 0)?.to_complex_vec()?;
            one(Value::row(x.iter().map(|z| z.im).collect()))
        }
        "conj" => {
            let x = arg(&argv, 0)?.to_complex_vec()?;
            one(Value::crow(x.iter().map(|z| z.conj()).collect()))
        }
        "abscorr" => {
            // DasLib extension: |cos θ| of two windows or spectra.
            let a = arg(&argv, 0)?;
            let b = arg(&argv, 1)?;
            let complex = matches!(a, Value::CMatrix { .. }) || matches!(b, Value::CMatrix { .. });
            let v = if complex {
                dsp::abscorr_complex(&a.to_complex_vec()?, &b.to_complex_vec()?)
            } else {
                dsp::abscorr(&a.to_real_vec()?, &b.to_real_vec()?)
            };
            one(Value::Num(v))
        }
        "envelope" => {
            let x = arg(&argv, 0)?;
            one(Value::reshape_like(dsp::envelope(&x.to_real_vec()?), x))
        }
        "whiten" => {
            let x = arg(&argv, 0)?;
            let lo = arg(&argv, 1)?.as_scalar()?;
            let hi = arg(&argv, 2)?.as_scalar()?;
            one(Value::reshape_like(
                dsp::whiten(&x.to_real_vec()?, lo, hi, (lo / 2.0).max(1e-3)),
                x,
            ))
        }
        "onebit" => {
            let x = arg(&argv, 0)?;
            one(Value::reshape_like(dsp::one_bit(&x.to_real_vec()?), x))
        }
        "hann" => {
            let n = arg(&argv, 0)?.as_scalar()? as usize;
            one(Value::row(dsp::hann(n)))
        }
        "std" => {
            let v = arg(&argv, 0)?.to_real_vec()?;
            if v.is_empty() {
                return Err("std of empty array".into());
            }
            let mean = v.iter().sum::<f64>() / v.len() as f64;
            let var = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>()
                / (v.len().max(2) - 1) as f64;
            one(Value::Num(var.sqrt()))
        }
        "var" => {
            let v = arg(&argv, 0)?.to_real_vec()?;
            if v.is_empty() {
                return Err("var of empty array".into());
            }
            let mean = v.iter().sum::<f64>() / v.len() as f64;
            let var = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>()
                / (v.len().max(2) - 1) as f64;
            one(Value::Num(var))
        }
        "sort" => {
            let mut v = arg(&argv, 0)?.to_real_vec()?;
            v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            one(Value::reshape_like(v, arg(&argv, 0)?))
        }
        "find" => {
            // 1-based indices of non-zero elements (MATLAB semantics).
            let v = arg(&argv, 0)?.to_real_vec()?;
            one(Value::row(
                v.iter()
                    .enumerate()
                    .filter(|(_, &x)| x != 0.0)
                    .map(|(i, _)| (i + 1) as f64)
                    .collect(),
            ))
        }
        "xcorr" => {
            let a = arg(&argv, 0)?.to_real_vec()?;
            let b = arg(&argv, 1)?.to_real_vec()?;
            one(Value::row(dsp::xcorr_fft(&a, &b, dsp::CorrMode::Full)))
        }
        // ---- misc -------------------------------------------------------------
        "disp" => {
            let v = arg(&argv, 0)?;
            let line = match v {
                Value::Str(s) => s.clone(),
                Value::Num(x) => format!("{x}"),
                other => format!("{:?}x{:?} array", other.shape().0, other.shape().1),
            };
            interp.output.push_str(&line);
            interp.output.push('\n');
            Ok(vec![])
        }
        "pi" => one(Value::Num(std::f64::consts::PI)),
        other => Err(format!("undefined variable or function {other:?}")),
    }
}

fn arg(argv: &[Value], i: usize) -> Result<&Value, String> {
    argv.get(i)
        .ok_or_else(|| format!("missing argument {}", i + 1))
}

fn dims_from_args(argv: &[Value]) -> Result<(usize, usize), String> {
    match argv.len() {
        1 => {
            let n = argv[0].as_scalar()? as usize;
            Ok((n, n))
        }
        2 => Ok((argv[0].as_scalar()? as usize, argv[1].as_scalar()? as usize)),
        n => Err(format!("expected 1 or 2 size arguments, got {n}")),
    }
}

fn map_real(v: &Value, f: impl Fn(f64) -> f64) -> Result<Value, String> {
    let data: Vec<f64> = v.to_real_vec()?.into_iter().map(f).collect();
    Ok(Value::reshape_like(data, v))
}

#[cfg(test)]
mod tests {
    use crate::Interp;

    fn run(src: &str) -> Interp {
        let mut i = Interp::new();
        i.run(src).unwrap_or_else(|e| panic!("{e} in {src}"));
        i
    }

    #[test]
    fn zeros_ones_shapes() {
        let i = run("a = zeros(2, 3); b = ones(2); n = numel(a); m = sum(b(:));");
        assert_eq!(i.get_scalar("n"), Some(6.0));
        assert_eq!(i.get_scalar("m"), Some(4.0));
    }

    #[test]
    fn size_and_length() {
        let i = run("m = zeros(3, 5); r = size(m, 1); c = size(m, 2); l = length(m);");
        assert_eq!(i.get_scalar("r"), Some(3.0));
        assert_eq!(i.get_scalar("c"), Some(5.0));
        assert_eq!(i.get_scalar("l"), Some(5.0));
    }

    #[test]
    fn reductions() {
        let i = run("v = [3 1 4 1 5]; s = sum(v); m = mean(v); hi = max(v); lo = min(v);");
        assert_eq!(i.get_scalar("s"), Some(14.0));
        assert_eq!(i.get_scalar("m"), Some(2.8));
        assert_eq!(i.get_scalar("hi"), Some(5.0));
        assert_eq!(i.get_scalar("lo"), Some(1.0));
    }

    #[test]
    fn elementwise_max_binary() {
        let i = run("m = max([1 5 2], 3);");
        assert_eq!(i.get("m"), Some(&crate::Value::row(vec![3.0, 5.0, 3.0])));
    }

    #[test]
    fn detrend_matches_dsp() {
        let i = run("y = detrend([1 2 3 4 5]); e = max(abs(y));");
        assert!(i.get_scalar("e").unwrap() < 1e-12);
        let i = run("y = detrend([5 5 5 5], 'constant'); e = max(abs(y));");
        assert!(i.get_scalar("e").unwrap() < 1e-12);
    }

    #[test]
    fn butter_filtfilt_pipeline() {
        let i = run("[b, a] = butter(2, 0.4);\n\
             x = sin(0.1 * (1:200));\n\
             y = filtfilt(b, a, x);\n\
             n = length(y);");
        assert_eq!(i.get_scalar("n"), Some(200.0));
    }

    #[test]
    fn butter_bandpass_via_matrix_arg() {
        let i = run("[b, a] = butter(3, [0.1 0.5]); n = length(a);");
        assert_eq!(i.get_scalar("n"), Some(7.0), "bandpass doubles the order");
    }

    #[test]
    fn fft_roundtrip_and_abs() {
        let i = run("x = [1 2 3 4];\n\
             s = fft(x);\n\
             back = real(ifft(s));\n\
             err = max(abs(back - x));");
        assert!(i.get_scalar("err").unwrap() < 1e-12);
    }

    #[test]
    fn abscorr_real_and_complex() {
        let i = run("a = [1 2 3]; c1 = abscorr(a, a);\n\
             s = fft([1 0 0 0]); c2 = abscorr(s, s);");
        assert!((i.get_scalar("c1").unwrap() - 1.0).abs() < 1e-12);
        assert!((i.get_scalar("c2").unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn resample_and_interp1() {
        let i = run("x = 0:99;\n\
             y = resample(x, 1, 2);\n\
             n = length(y);\n\
             v = interp1([0 1], [0 10], [0.5]);");
        assert_eq!(i.get_scalar("n"), Some(50.0));
        assert_eq!(i.get_scalar("v"), Some(5.0));
    }

    #[test]
    fn disp_captures_output() {
        let i = run("disp('hello das');");
        assert_eq!(i.output, "hello das\n");
    }

    #[test]
    fn unknown_builtin_errors() {
        let mut i = Interp::new();
        assert!(i.run("x = frobnicate(1);").is_err());
    }
}
