//! Tests for user-defined functions — the language feature that lets
//! real geophysics pipeline scripts (helper functions per processing
//! stage) run under the mlab baseline.

use mlab::{Interp, Value};

fn run(src: &str) -> Interp {
    let mut i = Interp::new();
    i.run(src)
        .unwrap_or_else(|e| panic!("{e}\nin script:\n{src}"));
    i
}

#[test]
fn single_output_function() {
    let i = run("function y = square(x)\n\
           y = x .* x;\n\
         end\n\
         a = square(7);\n\
         v = square([1 2 3]);");
    assert_eq!(i.get_scalar("a"), Some(49.0));
    assert_eq!(i.get("v"), Some(&Value::row(vec![1.0, 4.0, 9.0])));
}

#[test]
fn multi_output_function() {
    let i = run("function [lo, hi] = bounds(v)\n\
           lo = min(v);\n\
           hi = max(v);\n\
         end\n\
         [a, b] = bounds([3 1 4 1 5]);");
    assert_eq!(i.get_scalar("a"), Some(1.0));
    assert_eq!(i.get_scalar("b"), Some(5.0));
}

#[test]
fn function_workspace_is_isolated() {
    let i = run("secret = 99;\n\
         function y = peek()\n\
           if isempty(zeros(0, 0))\n\
             y = 1;\n\
           end\n\
         end\n\
         out = peek();\n\
         still = secret;");
    assert_eq!(i.get_scalar("out"), Some(1.0));
    assert_eq!(i.get_scalar("still"), Some(99.0));

    // A function cannot see caller variables.
    let mut j = Interp::new();
    let err = j
        .run(
            "hidden = 5;\n\
             function y = leak()\n\
               y = hidden;\n\
             end\n\
             z = leak();",
        )
        .unwrap_err();
    assert!(err.0.contains("undefined"), "{err}");
}

#[test]
fn function_does_not_clobber_caller_variables() {
    let i = run("x = 10;\n\
         function y = shadow(x)\n\
           x = x + 1;\n\
           y = x;\n\
         end\n\
         r = shadow(1);\n\
         keep = x;");
    assert_eq!(i.get_scalar("r"), Some(2.0));
    assert_eq!(i.get_scalar("keep"), Some(10.0), "caller x untouched");
}

#[test]
fn early_return() {
    let i = run("function y = clamped(x)\n\
           y = x;\n\
           if x > 10\n\
             y = 10;\n\
             return\n\
           end\n\
           y = y + 1;\n\
         end\n\
         a = clamped(3);\n\
         b = clamped(50);");
    assert_eq!(i.get_scalar("a"), Some(4.0));
    assert_eq!(i.get_scalar("b"), Some(10.0), "return skips the +1");
}

#[test]
fn return_propagates_out_of_loops() {
    let i = run("function y = first_over(v, limit)\n\
           y = -1;\n\
           for k = 1:length(v)\n\
             if v(k) > limit\n\
               y = k;\n\
               return\n\
             end\n\
           end\n\
         end\n\
         idx = first_over([1 5 2 9 3], 4);");
    assert_eq!(i.get_scalar("idx"), Some(2.0));
}

#[test]
fn recursion_with_limit() {
    let i = run("function y = fact(n)\n\
           if n <= 1\n\
             y = 1;\n\
           else\n\
             y = n * fact(n - 1);\n\
           end\n\
         end\n\
         f = fact(10);");
    assert_eq!(i.get_scalar("f"), Some(3_628_800.0));

    let mut j = Interp::new();
    let err = j
        .run(
            "function y = forever(n)\n\
               y = forever(n + 1);\n\
             end\n\
             x = forever(0);",
        )
        .unwrap_err();
    assert!(err.0.contains("recursion limit"), "{err}");
}

#[test]
fn functions_can_call_builtins_and_each_other() {
    let i = run("function y = rms(x)\n\
           y = sqrt(mean(x .* x));\n\
         end\n\
         function y = db(x)\n\
           y = 20 * log(rms(x)) / log(10);\n\
         end\n\
         v = db([3 3 3 3]);");
    let expect = 20.0 * 3.0f64.log10();
    assert!((i.get_scalar("v").unwrap() - expect).abs() < 1e-9);
}

#[test]
fn pipeline_helper_function_matches_inline() {
    // The realistic use: wrap the per-channel preprocessing in a helper.
    let i = run("function w = preprocess(x, b, a)\n\
           w = resample(filtfilt(b, a, detrend(x)), 1, 2);\n\
         end\n\
         [b, a] = butter(3, 0.4);\n\
         x = sin(0.1 * (1:300));\n\
         via_fn = preprocess(x, b, a);\n\
         inline = resample(filtfilt(b, a, detrend(x)), 1, 2);\n\
         err = max(abs(via_fn - inline));");
    assert_eq!(i.get_scalar("err"), Some(0.0));
}

#[test]
fn missing_output_assignment_is_an_error() {
    let mut i = Interp::new();
    let err = i
        .run(
            "function y = oops()\n\
               z = 3;\n\
             end\n\
             a = oops();",
        )
        .unwrap_err();
    assert!(err.0.contains("never assigned"), "{err}");
}

#[test]
fn too_many_arguments_rejected() {
    let mut i = Interp::new();
    let err = i
        .run(
            "function y = one(x)\n\
               y = x;\n\
             end\n\
             a = one(1, 2);",
        )
        .unwrap_err();
    assert!(err.0.contains("too many arguments"), "{err}");
}

#[test]
fn zero_output_function_for_side_effects() {
    let i = run("function shout(msg)\n\
           disp(msg);\n\
         end\n\
         shout('processing channel');");
    assert_eq!(i.output, "processing channel\n");
}
