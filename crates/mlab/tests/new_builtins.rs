//! Tests for the extended builtin set (ambient-noise toolbox exposed to
//! scripts) — each against the native dsp implementation.

use mlab::{Interp, Value};

fn run(src: &str) -> Interp {
    let mut i = Interp::new();
    i.run(src).unwrap_or_else(|e| panic!("{e}\nin:\n{src}"));
    i
}

#[test]
fn envelope_matches_native() {
    let i = run("x = sin(0.3 * (1:256));\n\
         e = envelope(x);\n\
         m = mean(e(64:192));");
    // Envelope of a unit tone is ~1 away from the edges.
    let m = i.get_scalar("m").unwrap();
    assert!((m - 1.0).abs() < 0.05, "envelope mean {m}");
    // Exact agreement with the native kernel.
    let x: Vec<f64> = (1..=256).map(|t| (0.3 * t as f64).sin()).collect();
    let native = dsp::envelope(&x);
    match i.get("e").unwrap() {
        Value::Matrix { data, .. } => {
            for (a, b) in data.iter().zip(&native) {
                assert!((a - b).abs() < 1e-12);
            }
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn whiten_flattens_band() {
    let i = run("x = 100 * sin(0.3 * (1:512)) + sin(1.1 * (1:512));\n\
         w = whiten(x, 0.05, 0.6);\n\
         n = length(w);");
    assert_eq!(i.get_scalar("n"), Some(512.0));
}

#[test]
fn onebit_is_sign() {
    let i = run("y = onebit([2.5 -3 0 7]);");
    assert_eq!(i.get("y"), Some(&Value::row(vec![1.0, -1.0, 0.0, 1.0])));
}

#[test]
fn hann_window_endpoints() {
    let i = run("w = hann(65); a = w(1); b = w(33); c = w(65);");
    assert!(i.get_scalar("a").unwrap().abs() < 1e-12);
    assert!((i.get_scalar("b").unwrap() - 1.0).abs() < 1e-12);
    assert!(i.get_scalar("c").unwrap().abs() < 1e-12);
}

#[test]
fn std_and_var_consistent() {
    let i = run("v = [2 4 4 4 5 5 7 9]; s = std(v); q = var(v);");
    let s = i.get_scalar("s").unwrap();
    let q = i.get_scalar("q").unwrap();
    assert!((s * s - q).abs() < 1e-12);
    // Sample variance of this classic dataset is 32/7.
    assert!((q - 32.0 / 7.0).abs() < 1e-12);
}

#[test]
fn sort_and_find() {
    let i = run("v = [3 0 -1 0 2];\n\
         s = sort(v);\n\
         idx = find(v);\n\
         hits = find(v > 1);");
    assert_eq!(
        i.get("s"),
        Some(&Value::row(vec![-1.0, 0.0, 0.0, 2.0, 3.0]))
    );
    assert_eq!(i.get("idx"), Some(&Value::row(vec![1.0, 3.0, 5.0])));
    assert_eq!(i.get("hits"), Some(&Value::row(vec![1.0, 5.0])));
}

#[test]
fn ambient_noise_script_end_to_end() {
    // A realistic preprocessing snippet using the new toolbox, written
    // the way a geophysicist would.
    let i = run("function w = prep(x)\n\
           w = whiten(onebit(detrend(x)), 0.05, 0.8);\n\
         end\n\
         data = das_generate(6, 25, 30, 4);\n\
         ref = prep(data(1, :));\n\
         c = abscorr(ref, prep(data(2, :)));\n\
         ok = c >= 0 && c <= 1;");
    assert_eq!(i.get_scalar("ok"), Some(1.0));
}
