//! Property tests: the Pike VM must agree with a naive backtracking
//! reference matcher on randomly generated patterns and inputs.

use proptest::prelude::*;
use regexlite::Regex;

/// Exponential-time but obviously-correct reference: does `pat[pi..]`
/// match starting exactly at `text[ti..]`? Supports the same constructs
/// we generate below (literals over a small alphabet, `.`, `*`, `?`,
/// `(..|..)` handled via recursion on a mini-AST).
#[derive(Debug, Clone)]
enum Node {
    Lit(char),
    Dot,
    Star(Box<Node>),
    Opt(Box<Node>),
    Seq(Vec<Node>),
    Alt(Box<Node>, Box<Node>),
}

impl Node {
    fn to_pattern(&self) -> String {
        match self {
            Node::Lit(c) => c.to_string(),
            Node::Dot => ".".to_string(),
            Node::Star(n) => format!("({})*", n.to_pattern()),
            Node::Opt(n) => format!("({})?", n.to_pattern()),
            Node::Seq(v) => v.iter().map(|n| n.to_pattern()).collect(),
            Node::Alt(a, b) => format!("({}|{})", a.to_pattern(), b.to_pattern()),
        }
    }

    /// All lengths `k` such that self matches text[i..i+k]; naive but exact.
    fn match_lens(&self, text: &[char], i: usize) -> Vec<usize> {
        match self {
            Node::Lit(c) => {
                if text.get(i) == Some(c) {
                    vec![1]
                } else {
                    vec![]
                }
            }
            Node::Dot => {
                if i < text.len() {
                    vec![1]
                } else {
                    vec![]
                }
            }
            Node::Opt(n) => {
                let mut out = vec![0];
                out.extend(n.match_lens(text, i));
                out.sort_unstable();
                out.dedup();
                out
            }
            Node::Star(n) => {
                // Fixed-point: lengths reachable by zero or more copies.
                let mut reachable = vec![0usize];
                let mut frontier = vec![0usize];
                while let Some(k) = frontier.pop() {
                    for l in n.match_lens(text, i + k) {
                        if l == 0 {
                            continue; // avoid infinite empty-loop
                        }
                        let nk = k + l;
                        if !reachable.contains(&nk) {
                            reachable.push(nk);
                            frontier.push(nk);
                        }
                    }
                }
                reachable.sort_unstable();
                reachable
            }
            Node::Seq(v) => {
                let mut lens = vec![0usize];
                for n in v {
                    let mut next = Vec::new();
                    for &k in &lens {
                        for l in n.match_lens(text, i + k) {
                            if !next.contains(&(k + l)) {
                                next.push(k + l);
                            }
                        }
                    }
                    lens = next;
                    if lens.is_empty() {
                        break;
                    }
                }
                lens.sort_unstable();
                lens
            }
            Node::Alt(a, b) => {
                let mut out = a.match_lens(text, i);
                out.extend(b.match_lens(text, i));
                out.sort_unstable();
                out.dedup();
                out
            }
        }
    }

    fn search(&self, text: &str) -> bool {
        let chars: Vec<char> = text.chars().collect();
        (0..=chars.len()).any(|i| !self.match_lens(&chars, i).is_empty())
    }
}

fn node_strategy() -> impl Strategy<Value = Node> {
    let leaf = prop_oneof![
        prop::sample::select(vec!['a', 'b', 'c']).prop_map(Node::Lit),
        Just(Node::Dot),
    ];
    leaf.prop_recursive(3, 12, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|n| Node::Star(Box::new(n))),
            inner.clone().prop_map(|n| Node::Opt(Box::new(n))),
            prop::collection::vec(inner.clone(), 1..3).prop_map(Node::Seq),
            (inner.clone(), inner).prop_map(|(a, b)| Node::Alt(Box::new(a), Box::new(b))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn pike_vm_agrees_with_reference(node in node_strategy(),
                                     text in "[abc]{0,8}") {
        let pattern = node.to_pattern();
        let re = Regex::new(&pattern).unwrap();
        prop_assert_eq!(re.is_match(&text), node.search(&text),
                        "pattern={} text={}", pattern, text);
    }

    #[test]
    fn find_offsets_are_valid(node in node_strategy(), text in "[abc]{0,8}") {
        let re = Regex::new(&node.to_pattern()).unwrap();
        if let Some((s, e)) = re.find(&text) {
            prop_assert!(s <= e);
            prop_assert!(e <= text.len());
            prop_assert!(text.is_char_boundary(s) && text.is_char_boundary(e));
        }
    }

    #[test]
    fn full_match_implies_is_match(node in node_strategy(), text in "[abc]{0,8}") {
        let re = Regex::new(&node.to_pattern()).unwrap();
        if re.is_full_match(&text) {
            prop_assert!(re.is_match(&text));
        }
    }
}
