//! `regexlite` — a small, dependency-free regular-expression engine.
//!
//! DASSA's `das_search -e` option lets users select DAS files with an
//! arbitrary regex over file names / timestamps (the paper's example is
//! `das_search -e 170728224[567]10`). This crate provides the matching
//! engine: a classic Thompson-construction NFA executed with the
//! Pike-VM technique (breadth-first over input, linear time, no
//! exponential backtracking).
//!
//! Supported syntax:
//!
//! * literals, `.` (any char)
//! * character classes `[abc]`, ranges `[a-z0-9]`, negation `[^...]`
//! * escapes `\d \D \w \W \s \S` and `\.` etc.
//! * repetition `*`, `+`, `?`, bounded `{m}`, `{m,}`, `{m,n}`
//! * alternation `|`, grouping `(...)`
//! * anchors `^` and `$`
//!
//! # Example
//! ```
//! use regexlite::Regex;
//! let re = Regex::new("170728224[567]10").unwrap();
//! assert!(re.is_match("westSac_170728224510.dasf"));
//! assert!(!re.is_match("westSac_170728224810.dasf"));
//! ```

mod ast;
mod compile;
mod parse;
mod vm;

pub use ast::Ast;
pub use parse::ParseError;

use compile::Program;

/// A compiled regular expression.
///
/// Construction parses and compiles the pattern once; matching is then
/// linear in `pattern_len * input_len` in the worst case.
#[derive(Debug, Clone)]
pub struct Regex {
    program: Program,
    pattern: String,
}

impl Regex {
    /// Parse and compile `pattern`.
    ///
    /// Returns a [`ParseError`] describing the offending position when the
    /// pattern is malformed.
    pub fn new(pattern: &str) -> Result<Self, ParseError> {
        let ast = parse::parse(pattern)?;
        let program = compile::compile(&ast);
        Ok(Regex {
            program,
            pattern: pattern.to_string(),
        })
    }

    /// The original pattern string.
    pub fn as_str(&self) -> &str {
        &self.pattern
    }

    /// Does the pattern match anywhere inside `text`?
    ///
    /// Unanchored by default (like `grep`); use `^`/`$` in the pattern to
    /// anchor.
    pub fn is_match(&self, text: &str) -> bool {
        vm::search(&self.program, text).is_some()
    }

    /// Find the first match, returning `(start, end)` byte offsets.
    pub fn find(&self, text: &str) -> Option<(usize, usize)> {
        vm::search(&self.program, text)
    }

    /// Does the pattern match the *entire* `text`?
    pub fn is_full_match(&self, text: &str) -> bool {
        match vm::search_anchored(&self.program, text) {
            Some((0, end)) => end == text.len(),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pat: &str, text: &str) -> bool {
        Regex::new(pat).unwrap().is_match(text)
    }

    #[test]
    fn literal_match() {
        assert!(m("abc", "xxabcxx"));
        assert!(!m("abc", "ab"));
    }

    #[test]
    fn dot_matches_any_char() {
        assert!(m("a.c", "abc"));
        assert!(m("a.c", "a-c"));
        assert!(!m("a.c", "ac"));
    }

    #[test]
    fn char_class() {
        assert!(m("[abc]", "b"));
        assert!(!m("[abc]", "d"));
        assert!(m("[a-z0-9]", "q"));
        assert!(m("[a-z0-9]", "7"));
        assert!(!m("[a-z0-9]", "Q"));
    }

    #[test]
    fn negated_class() {
        assert!(m("[^abc]", "d"));
        assert!(!m("[^abc]", "a"));
    }

    #[test]
    fn class_with_literal_dash() {
        assert!(m("[a-]", "-"));
        assert!(m("[-a]", "-"));
    }

    #[test]
    fn star_repetition() {
        assert!(m("ab*c", "ac"));
        assert!(m("ab*c", "abbbc"));
        assert!(!m("ab*c", "adc"));
    }

    #[test]
    fn plus_repetition() {
        assert!(!m("ab+c", "ac"));
        assert!(m("ab+c", "abc"));
        assert!(m("ab+c", "abbc"));
    }

    #[test]
    fn question_mark() {
        assert!(m("ab?c", "ac"));
        assert!(m("ab?c", "abc"));
        assert!(!m("ab?c", "abbc"));
    }

    #[test]
    fn bounded_repetition() {
        assert!(m("^a{3}$", "aaa"));
        assert!(!m("^a{3}$", "aa"));
        assert!(m("^a{2,}$", "aaaa"));
        assert!(!m("^a{2,}$", "a"));
        assert!(m("^a{1,3}$", "aa"));
        assert!(!m("^a{1,3}$", "aaaa"));
    }

    #[test]
    fn alternation() {
        assert!(m("cat|dog", "hotdog"));
        assert!(m("cat|dog", "catnip"));
        assert!(!m("cat|dog", "bird"));
    }

    #[test]
    fn grouping() {
        assert!(m("(ab)+", "ababab"));
        assert!(m("a(b|c)d", "acd"));
        assert!(!m("a(b|c)d", "aed"));
    }

    #[test]
    fn anchors() {
        assert!(m("^abc", "abcdef"));
        assert!(!m("^abc", "xabc"));
        assert!(m("def$", "abcdef"));
        assert!(!m("def$", "defx"));
        assert!(m("^abc$", "abc"));
    }

    #[test]
    fn escapes() {
        assert!(m(r"a\.c", "a.c"));
        assert!(!m(r"a\.c", "abc"));
        assert!(m(r"\d+", "x42y"));
        assert!(!m(r"^\d+$", "4a2"));
        assert!(m(r"\w+", "hello_1"));
        assert!(m(r"\s", "a b"));
        assert!(!m(r"\S", "  \t "));
    }

    #[test]
    fn paper_example_pattern() {
        // Section IV-A: das_search -e 170728224[567]10
        let re = Regex::new("170728224[567]10").unwrap();
        assert!(re.is_match("170728224510"));
        assert!(re.is_match("170728224610"));
        assert!(re.is_match("170728224710"));
        assert!(!re.is_match("170728224810"));
        assert!(!re.is_match("170728224511"));
    }

    #[test]
    fn find_reports_offsets() {
        let re = Regex::new("b+").unwrap();
        assert_eq!(re.find("aabbbcc"), Some((2, 5)));
        assert_eq!(re.find("nope"), None);
    }

    #[test]
    fn full_match() {
        let re = Regex::new("a+b").unwrap();
        assert!(re.is_full_match("aaab"));
        assert!(!re.is_full_match("aaabc"));
        assert!(!re.is_full_match("xaaab"));
    }

    #[test]
    fn empty_pattern_matches_everywhere() {
        let re = Regex::new("").unwrap();
        assert!(re.is_match(""));
        assert!(re.is_match("abc"));
    }

    #[test]
    fn parse_errors() {
        assert!(Regex::new("(").is_err());
        assert!(Regex::new(")").is_err());
        assert!(Regex::new("[a").is_err());
        assert!(Regex::new("*a").is_err());
        assert!(Regex::new("a{2,1}").is_err());
        assert!(Regex::new("a\\").is_err());
    }

    #[test]
    fn no_exponential_blowup() {
        // Classic pathological backtracking case; the Pike VM stays linear.
        let re = Regex::new("(a+)+$").unwrap();
        let text = "a".repeat(64) + "b";
        assert!(!re.is_match(&text));
    }

    #[test]
    fn unicode_input_is_handled_bytewise_safe() {
        // Multi-byte chars in the haystack must not panic.
        assert!(m("a.c", "a\u{00e9}c"));
        assert!(m("é", "café"));
    }
}
