//! Pike VM: breadth-first NFA simulation over the input.
//!
//! Runs in O(insts × chars) time with no backtracking, so pathological
//! patterns cannot blow up `das_search` on large file listings.

use crate::compile::{Inst, Program};

/// A thread list: the set of NFA states alive at the current position,
/// with O(1) dedup via a generation-stamped membership array.
struct ThreadList {
    dense: Vec<(usize, usize)>, // (pc, match_start)
    stamp: Vec<u32>,
    generation: u32,
}

impl ThreadList {
    fn new(n: usize) -> Self {
        ThreadList {
            dense: Vec::with_capacity(n),
            stamp: vec![0; n],
            generation: 0,
        }
    }

    fn clear(&mut self) {
        self.dense.clear();
        self.generation += 1;
    }

    fn contains(&self, pc: usize) -> bool {
        self.stamp[pc] == self.generation
    }

    fn push(&mut self, pc: usize, start: usize) {
        if !self.contains(pc) {
            self.stamp[pc] = self.generation;
            self.dense.push((pc, start));
        }
    }
}

/// Add `pc` and everything reachable through epsilon transitions
/// (Jmp/Split/anchors) to `list`. `at_start`/`at_end` describe the current
/// input position for anchor assertions.
fn add_thread(
    program: &Program,
    list: &mut ThreadList,
    pc: usize,
    start: usize,
    at_start: bool,
    at_end: bool,
    matched: &mut Option<usize>,
) {
    if list.contains(pc) {
        return;
    }
    match &program.insts[pc] {
        Inst::Jmp(t) => {
            list.stamp[pc] = list.generation;
            add_thread(program, list, *t, start, at_start, at_end, matched);
        }
        Inst::Split(a, b) => {
            list.stamp[pc] = list.generation;
            add_thread(program, list, *a, start, at_start, at_end, matched);
            add_thread(program, list, *b, start, at_start, at_end, matched);
        }
        Inst::AssertStart => {
            list.stamp[pc] = list.generation;
            if at_start {
                add_thread(program, list, pc + 1, start, at_start, at_end, matched);
            }
        }
        Inst::AssertEnd => {
            list.stamp[pc] = list.generation;
            if at_end {
                add_thread(program, list, pc + 1, start, at_start, at_end, matched);
            }
        }
        Inst::Match => {
            list.stamp[pc] = list.generation;
            // Keep the earliest-starting match (leftmost semantics).
            if matched.is_none_or(|s| start < s) {
                *matched = Some(start);
            }
        }
        Inst::Char(_) => list.push(pc, start),
    }
}

fn run(program: &Program, text: &str, anchored: bool) -> Option<(usize, usize)> {
    let n = program.insts.len();
    let mut current = ThreadList::new(n);
    let mut next = ThreadList::new(n);
    current.clear();
    next.clear();

    let chars: Vec<(usize, char)> = text.char_indices().collect();
    let text_len = text.len();
    let anchored = anchored || program.anchored_start;

    let mut best: Option<(usize, usize)> = None;

    for step in 0..=chars.len() {
        let byte_pos = chars.get(step).map_or(text_len, |&(i, _)| i);
        let at_start = byte_pos == 0;
        let at_end = step == chars.len();

        // Seed a fresh attempt starting at this position (unanchored scan).
        if !anchored || at_start {
            // Once a match is found, leftmost semantics say no later start
            // can beat it; stop seeding.
            if best.is_none() {
                let mut matched = None;
                add_thread(
                    program,
                    &mut current,
                    0,
                    byte_pos,
                    at_start,
                    at_end,
                    &mut matched,
                );
                if let Some(s) = matched {
                    best = merge_match(best, s, byte_pos);
                }
            }
        }

        // Process Match instructions reachable at this position: they were
        // recorded through `add_thread` below during the previous step.
        if current.dense.is_empty() && best.is_some() {
            break; // all live threads finished; match already found
        }

        if at_end {
            break;
        }
        let (_, c) = chars[step];
        let next_byte = chars.get(step + 1).map_or(text_len, |&(i, _)| i);
        let next_at_end = step + 1 == chars.len();

        next.clear();
        let dense = std::mem::take(&mut current.dense);
        for (pc, start) in &dense {
            if let Inst::Char(m) = &program.insts[*pc] {
                if m.matches(c) {
                    let mut matched = None;
                    add_thread(
                        program,
                        &mut next,
                        pc + 1,
                        *start,
                        /*at_start=*/ false,
                        next_at_end,
                        &mut matched,
                    );
                    if let Some(s) = matched {
                        best = merge_match(best, s, next_byte);
                    }
                }
            }
        }
        current.dense = dense;
        std::mem::swap(&mut current, &mut next);
    }
    best
}

/// Prefer the leftmost start; among equal starts, the longest end.
fn merge_match(best: Option<(usize, usize)>, start: usize, end: usize) -> Option<(usize, usize)> {
    match best {
        None => Some((start, end)),
        Some((bs, be)) => {
            if start < bs || (start == bs && end > be) {
                Some((start, end))
            } else {
                Some((bs, be))
            }
        }
    }
}

/// Unanchored search: find the leftmost-longest match.
pub fn search(program: &Program, text: &str) -> Option<(usize, usize)> {
    run(program, text, false)
}

/// Search anchored at position 0.
pub fn search_anchored(program: &Program, text: &str) -> Option<(usize, usize)> {
    run(program, text, true)
}

#[cfg(test)]
mod tests {
    use crate::Regex;

    #[test]
    fn leftmost_longest_semantics() {
        let re = Regex::new("a+").unwrap();
        assert_eq!(re.find("baaab"), Some((1, 4)));
    }

    #[test]
    fn anchored_end_only() {
        let re = Regex::new("ab$").unwrap();
        assert_eq!(re.find("abab"), Some((2, 4)));
    }

    #[test]
    fn match_at_very_end() {
        let re = Regex::new("c").unwrap();
        assert_eq!(re.find("abc"), Some((2, 3)));
    }

    #[test]
    fn empty_match_offsets() {
        let re = Regex::new("x*").unwrap();
        assert_eq!(re.find("yyy"), Some((0, 0)));
    }

    #[test]
    fn multibyte_offsets_are_byte_positions() {
        let re = Regex::new("fé").unwrap();
        let text = "café!";
        let (s, e) = re.find(text).unwrap();
        assert_eq!(&text[s..e], "fé");
    }
}
