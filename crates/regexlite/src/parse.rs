//! Recursive-descent parser for the regex syntax described in the crate docs.

use crate::ast::{Ast, CharMatcher};
use std::fmt;

/// Error produced when a pattern fails to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte position in the pattern where the error was detected.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "regex parse error at byte {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for ParseError {}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

/// Parse `pattern` into an [`Ast`].
pub fn parse(pattern: &str) -> Result<Ast, ParseError> {
    let mut p = Parser {
        chars: pattern.chars().collect(),
        pos: 0,
    };
    let ast = p.alternation()?;
    if p.pos != p.chars.len() {
        return Err(p.err("unexpected character (unbalanced ')'?)"));
    }
    Ok(ast)
}

impl Parser {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            position: self.pos,
            message: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// alternation := concat ('|' concat)*
    fn alternation(&mut self) -> Result<Ast, ParseError> {
        let mut branches = vec![self.concat()?];
        while self.eat('|') {
            branches.push(self.concat()?);
        }
        if branches.len() == 1 {
            Ok(branches.pop().unwrap())
        } else {
            Ok(Ast::Alternate(branches))
        }
    }

    /// concat := repeated*
    fn concat(&mut self) -> Result<Ast, ParseError> {
        let mut items = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            items.push(self.repeated()?);
        }
        match items.len() {
            0 => Ok(Ast::Empty),
            1 => Ok(items.pop().unwrap()),
            _ => Ok(Ast::Concat(items)),
        }
    }

    /// repeated := atom ('*' | '+' | '?' | '{m[,[n]]}')*
    fn repeated(&mut self) -> Result<Ast, ParseError> {
        let mut node = self.atom()?;
        loop {
            match self.peek() {
                Some('*') => {
                    self.bump();
                    self.check_repeatable(&node)?;
                    node = Ast::Repeat {
                        node: Box::new(node),
                        min: 0,
                        max: None,
                    };
                }
                Some('+') => {
                    self.bump();
                    self.check_repeatable(&node)?;
                    node = Ast::Repeat {
                        node: Box::new(node),
                        min: 1,
                        max: None,
                    };
                }
                Some('?') => {
                    self.bump();
                    self.check_repeatable(&node)?;
                    node = Ast::Repeat {
                        node: Box::new(node),
                        min: 0,
                        max: Some(1),
                    };
                }
                Some('{') => {
                    // `{` only opens a counted repetition when it looks like
                    // one; otherwise treat it as a literal (grep behaviour).
                    if let Some((min, max, consumed)) = self.try_parse_bounds()? {
                        self.pos += consumed;
                        self.check_repeatable(&node)?;
                        node = Ast::Repeat {
                            node: Box::new(node),
                            min,
                            max,
                        };
                    } else {
                        break;
                    }
                }
                _ => break,
            }
        }
        Ok(node)
    }

    fn check_repeatable(&self, node: &Ast) -> Result<(), ParseError> {
        match node {
            Ast::StartAnchor | Ast::EndAnchor => Err(ParseError {
                position: self.pos.saturating_sub(1),
                message: "anchor cannot be repeated".to_string(),
            }),
            _ => Ok(()),
        }
    }

    /// Attempt to read `{m}`, `{m,}` or `{m,n}` starting at the current
    /// position. Returns the bounds and the number of chars consumed, or
    /// `None` when the braces do not form a repetition.
    fn try_parse_bounds(&self) -> Result<Option<(u32, Option<u32>, usize)>, ParseError> {
        debug_assert_eq!(self.peek(), Some('{'));
        let rest = &self.chars[self.pos + 1..];
        let close = match rest.iter().position(|&c| c == '}') {
            Some(i) => i,
            None => return Ok(None),
        };
        let body: String = rest[..close].iter().collect();
        let consumed = close + 2; // '{' + body + '}'
        let parse_num = |s: &str| -> Option<u32> {
            if s.is_empty() || !s.chars().all(|c| c.is_ascii_digit()) {
                None
            } else {
                s.parse().ok()
            }
        };
        let (min, max) = if let Some(comma) = body.find(',') {
            let lo = match parse_num(&body[..comma]) {
                Some(v) => v,
                None => return Ok(None),
            };
            let hi_str = &body[comma + 1..];
            if hi_str.is_empty() {
                (lo, None)
            } else {
                match parse_num(hi_str) {
                    Some(v) => (lo, Some(v)),
                    None => return Ok(None),
                }
            }
        } else {
            match parse_num(&body) {
                Some(v) => (v, Some(v)),
                None => return Ok(None),
            }
        };
        if let Some(hi) = max {
            if hi < min {
                return Err(ParseError {
                    position: self.pos,
                    message: format!("invalid repetition bounds {{{},{}}}", min, hi),
                });
            }
        }
        const MAX_REPEAT: u32 = 1 << 12;
        if min > MAX_REPEAT || max.is_some_and(|m| m > MAX_REPEAT) {
            return Err(ParseError {
                position: self.pos,
                message: format!("repetition bound exceeds maximum of {}", MAX_REPEAT),
            });
        }
        Ok(Some((min, max, consumed)))
    }

    /// atom := '(' alternation ')' | '[' class ']' | '.' | '^' | '$'
    ///       | '\' escape | literal
    fn atom(&mut self) -> Result<Ast, ParseError> {
        match self.peek() {
            Some('(') => {
                self.bump();
                let inner = self.alternation()?;
                if !self.eat(')') {
                    return Err(self.err("missing closing ')'"));
                }
                Ok(inner)
            }
            Some('[') => {
                self.bump();
                self.char_class()
            }
            Some('.') => {
                self.bump();
                Ok(Ast::Char(CharMatcher::Any))
            }
            Some('^') => {
                self.bump();
                Ok(Ast::StartAnchor)
            }
            Some('$') => {
                self.bump();
                Ok(Ast::EndAnchor)
            }
            Some('\\') => {
                self.bump();
                let c = self.bump().ok_or_else(|| self.err("dangling escape"))?;
                Ok(Ast::Char(escape_matcher(c)))
            }
            Some(c) if c == '*' || c == '+' || c == '?' => {
                Err(self.err("repetition operator with nothing to repeat"))
            }
            Some(c) => {
                self.bump();
                Ok(Ast::Char(CharMatcher::Literal(c)))
            }
            None => Err(self.err("unexpected end of pattern")),
        }
    }

    /// class := '^'? item+ ']'   where item := char | char '-' char
    fn char_class(&mut self) -> Result<Ast, ParseError> {
        let negated = self.eat('^');
        let mut ranges: Vec<(char, char)> = Vec::new();
        // A leading ']' is a literal member, per POSIX convention.
        if self.peek() == Some(']') {
            self.bump();
            ranges.push((']', ']'));
        }
        loop {
            let c = match self.bump() {
                Some(']') => break,
                Some('\\') => {
                    let e = self
                        .bump()
                        .ok_or_else(|| self.err("dangling escape in class"))?;
                    match escape_matcher(e) {
                        CharMatcher::Literal(l) => l,
                        CharMatcher::Class {
                            ranges: mut r,
                            negated: false,
                        } => {
                            ranges.append(&mut r);
                            continue;
                        }
                        _ => return Err(self.err("unsupported escape in class")),
                    }
                }
                Some(c) => c,
                None => return Err(self.err("unterminated character class")),
            };
            // Range `c-hi` unless the '-' is trailing (then it is literal).
            if self.peek() == Some('-') && self.chars.get(self.pos + 1).is_some_and(|&n| n != ']') {
                self.bump(); // '-'
                let hi = match self.bump() {
                    Some('\\') => match self.bump() {
                        Some(e) => match escape_matcher(e) {
                            CharMatcher::Literal(l) => l,
                            _ => return Err(self.err("class escape not valid as range end")),
                        },
                        None => return Err(self.err("dangling escape in class")),
                    },
                    Some(h) => h,
                    None => return Err(self.err("unterminated character class")),
                };
                if hi < c {
                    return Err(self.err("invalid range in character class"));
                }
                ranges.push((c, hi));
            } else {
                ranges.push((c, c));
            }
        }
        if ranges.is_empty() && !negated {
            return Err(self.err("empty character class"));
        }
        Ok(Ast::Char(CharMatcher::Class { negated, ranges }))
    }
}

/// Expand an escape character into its matcher.
fn escape_matcher(c: char) -> CharMatcher {
    match c {
        'd' => CharMatcher::Class {
            negated: false,
            ranges: vec![('0', '9')],
        },
        'D' => CharMatcher::Class {
            negated: true,
            ranges: vec![('0', '9')],
        },
        'w' => CharMatcher::Class {
            negated: false,
            ranges: vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')],
        },
        'W' => CharMatcher::Class {
            negated: true,
            ranges: vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')],
        },
        's' => CharMatcher::Class {
            negated: false,
            ranges: vec![
                (' ', ' '),
                ('\t', '\t'),
                ('\n', '\n'),
                ('\r', '\r'),
                ('\x0b', '\x0c'),
            ],
        },
        'S' => CharMatcher::Class {
            negated: true,
            ranges: vec![
                (' ', ' '),
                ('\t', '\t'),
                ('\n', '\n'),
                ('\r', '\r'),
                ('\x0b', '\x0c'),
            ],
        },
        'n' => CharMatcher::Literal('\n'),
        't' => CharMatcher::Literal('\t'),
        'r' => CharMatcher::Literal('\r'),
        other => CharMatcher::Literal(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_concat() {
        let ast = parse("ab").unwrap();
        assert!(matches!(ast, Ast::Concat(ref v) if v.len() == 2));
    }

    #[test]
    fn parses_alternation_tree() {
        let ast = parse("a|b|c").unwrap();
        assert!(matches!(ast, Ast::Alternate(ref v) if v.len() == 3));
    }

    #[test]
    fn literal_brace_when_not_repetition() {
        // `{abc}` is not a counted repetition; treat braces literally.
        let ast = parse("a{x}").unwrap();
        assert!(matches!(ast, Ast::Concat(_)));
    }

    #[test]
    fn rejects_reversed_bounds() {
        let e = parse("a{3,1}").unwrap_err();
        assert!(e.message.contains("invalid repetition bounds"));
    }

    #[test]
    fn rejects_huge_bounds() {
        assert!(parse("a{99999}").is_err());
    }

    #[test]
    fn class_leading_bracket_is_literal() {
        let ast = parse("[]a]").unwrap();
        match ast {
            Ast::Char(CharMatcher::Class { negated, ranges }) => {
                assert!(!negated);
                assert!(ranges.contains(&(']', ']')));
                assert!(ranges.contains(&('a', 'a')));
            }
            other => panic!("unexpected ast: {other:?}"),
        }
    }

    #[test]
    fn error_position_is_reported() {
        let e = parse("ab[cd").unwrap_err();
        assert!(e.position >= 2);
    }
}
