//! Abstract syntax tree for regular expressions.

/// A single-character matcher.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CharMatcher {
    /// Exactly this character.
    Literal(char),
    /// Any character (`.`).
    Any,
    /// A character class: a set of ranges, possibly negated.
    Class {
        negated: bool,
        ranges: Vec<(char, char)>,
    },
}

impl CharMatcher {
    /// Does this matcher accept `c`?
    pub fn matches(&self, c: char) -> bool {
        match self {
            CharMatcher::Literal(l) => *l == c,
            CharMatcher::Any => true,
            CharMatcher::Class { negated, ranges } => {
                let inside = ranges.iter().any(|&(lo, hi)| lo <= c && c <= hi);
                inside != *negated
            }
        }
    }
}

/// Regular-expression AST node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ast {
    /// Matches the empty string.
    Empty,
    /// A single-character matcher.
    Char(CharMatcher),
    /// Concatenation of sub-expressions.
    Concat(Vec<Ast>),
    /// Alternation (`|`) of sub-expressions.
    Alternate(Vec<Ast>),
    /// Repetition: `min..=max` copies (`max == None` means unbounded).
    Repeat {
        node: Box<Ast>,
        min: u32,
        max: Option<u32>,
    },
    /// `^` anchor.
    StartAnchor,
    /// `$` anchor.
    EndAnchor,
}
