//! Thompson construction: AST → NFA bytecode program for the Pike VM.

use crate::ast::{Ast, CharMatcher};

/// One NFA instruction.
#[derive(Debug, Clone)]
pub enum Inst {
    /// Match a single character, then continue at the next instruction.
    Char(CharMatcher),
    /// Unconditional jump.
    Jmp(usize),
    /// Fork execution to both targets (preference order irrelevant for
    /// leftmost-longest-agnostic boolean matching).
    Split(usize, usize),
    /// Assert start-of-input.
    AssertStart,
    /// Assert end-of-input.
    AssertEnd,
    /// Successful match.
    Match,
}

/// A compiled NFA program.
#[derive(Debug, Clone)]
pub struct Program {
    pub insts: Vec<Inst>,
    /// True when the pattern begins with `^` on every alternation branch —
    /// lets the VM skip restarting at every position.
    pub anchored_start: bool,
}

/// Compile `ast` into a [`Program`] ending in [`Inst::Match`].
pub fn compile(ast: &Ast) -> Program {
    let mut c = Compiler { insts: Vec::new() };
    c.emit_ast(ast);
    c.insts.push(Inst::Match);
    Program {
        anchored_start: starts_anchored(ast),
        insts: c.insts,
    }
}

fn starts_anchored(ast: &Ast) -> bool {
    match ast {
        Ast::StartAnchor => true,
        Ast::Concat(items) => items.first().is_some_and(starts_anchored),
        Ast::Alternate(branches) => branches.iter().all(starts_anchored),
        Ast::Repeat { node, min, .. } => *min >= 1 && starts_anchored(node),
        _ => false,
    }
}

struct Compiler {
    insts: Vec<Inst>,
}

impl Compiler {
    fn emit_ast(&mut self, ast: &Ast) {
        match ast {
            Ast::Empty => {}
            Ast::Char(m) => self.insts.push(Inst::Char(m.clone())),
            Ast::StartAnchor => self.insts.push(Inst::AssertStart),
            Ast::EndAnchor => self.insts.push(Inst::AssertEnd),
            Ast::Concat(items) => {
                for item in items {
                    self.emit_ast(item);
                }
            }
            Ast::Alternate(branches) => self.emit_alternate(branches),
            Ast::Repeat { node, min, max } => self.emit_repeat(node, *min, *max),
        }
    }

    fn emit_alternate(&mut self, branches: &[Ast]) {
        // Chain of Splits: split(b1, split(b2, ... bn))
        // Each branch ends with a Jmp to the common exit.
        let mut jmp_fixups = Vec::new();
        let n = branches.len();
        for (i, branch) in branches.iter().enumerate() {
            if i + 1 < n {
                let split_pos = self.insts.len();
                self.insts.push(Inst::Split(0, 0)); // patched below
                let b_start = self.insts.len();
                self.emit_ast(branch);
                let jmp_pos = self.insts.len();
                self.insts.push(Inst::Jmp(0)); // patched to exit
                jmp_fixups.push(jmp_pos);
                let next_branch = self.insts.len();
                self.insts[split_pos] = Inst::Split(b_start, next_branch);
            } else {
                self.emit_ast(branch);
            }
        }
        let exit = self.insts.len();
        for pos in jmp_fixups {
            self.insts[pos] = Inst::Jmp(exit);
        }
    }

    fn emit_repeat(&mut self, node: &Ast, min: u32, max: Option<u32>) {
        // Mandatory copies.
        for _ in 0..min {
            self.emit_ast(node);
        }
        match max {
            None => {
                // `e*` tail: L: split(body, exit); body; jmp L
                let l = self.insts.len();
                self.insts.push(Inst::Split(0, 0));
                let body = self.insts.len();
                self.emit_ast(node);
                self.insts.push(Inst::Jmp(l));
                let exit = self.insts.len();
                self.insts[l] = Inst::Split(body, exit);
            }
            Some(max) => {
                // (max - min) optional copies, each individually skippable.
                let mut splits = Vec::new();
                for _ in min..max {
                    let s = self.insts.len();
                    self.insts.push(Inst::Split(0, 0));
                    let body = self.insts.len();
                    self.emit_ast(node);
                    splits.push((s, body));
                }
                let exit = self.insts.len();
                for (s, body) in splits {
                    self.insts[s] = Inst::Split(body, exit);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    #[test]
    fn program_ends_with_match() {
        let p = compile(&parse("abc").unwrap());
        assert!(matches!(p.insts.last(), Some(Inst::Match)));
    }

    #[test]
    fn anchored_detection() {
        assert!(compile(&parse("^abc").unwrap()).anchored_start);
        assert!(!compile(&parse("abc").unwrap()).anchored_start);
        assert!(compile(&parse("^a|^b").unwrap()).anchored_start);
        assert!(!compile(&parse("^a|b").unwrap()).anchored_start);
    }

    #[test]
    fn star_compiles_to_split_loop() {
        let p = compile(&parse("a*").unwrap());
        assert!(p.insts.iter().any(|i| matches!(i, Inst::Split(..))));
        assert!(p.insts.iter().any(|i| matches!(i, Inst::Jmp(..))));
    }

    #[test]
    fn bounded_repeat_expands() {
        let p2 = compile(&parse("a{2}").unwrap());
        let p5 = compile(&parse("a{5}").unwrap());
        assert!(p5.insts.len() > p2.insts.len());
    }
}
