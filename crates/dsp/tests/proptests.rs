//! Property tests for the DasLib kernels: invariants that must hold for
//! arbitrary signals, not just hand-picked ones.

use dsp::{
    abscorr, butter, detrend, detrend_constant, fft, fft_real, filtfilt, ifft, interp1, resample,
    xcorr_direct, xcorr_fft, Complex, CorrMode, FilterBand,
};
use proptest::prelude::*;

fn signal(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e3f64..1e3, 1..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fft_ifft_round_trip(x in signal(256)) {
        let cx: Vec<Complex> = x.iter().map(|&v| Complex::real(v)).collect();
        let back = ifft(&fft(&cx));
        for (a, b) in back.iter().zip(&cx) {
            prop_assert!((*a - *b).abs() < 1e-6 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn fft_parseval(x in signal(256)) {
        let spec = fft_real(&x);
        let t: f64 = x.iter().map(|v| v * v).sum();
        let f: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / x.len() as f64;
        prop_assert!((t - f).abs() < 1e-6 * (1.0 + t));
    }

    #[test]
    fn detrend_is_idempotent(x in signal(128)) {
        let once = detrend(&x);
        let twice = detrend(&once);
        for (a, b) in once.iter().zip(&twice) {
            prop_assert!((a - b).abs() < 1e-6 * (1.0 + a.abs()));
        }
    }

    #[test]
    fn detrend_constant_zero_mean(x in signal(128)) {
        let y = detrend_constant(&x);
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        prop_assert!(mean.abs() < 1e-8 * (1.0 + x.iter().map(|v| v.abs()).fold(0.0, f64::max)));
    }

    #[test]
    fn abscorr_in_unit_interval(
        x in prop::collection::vec(-1e3f64..1e3, 4..64),
        seed in 0u64..1000,
    ) {
        // Build y the same length as x from the seed.
        let y: Vec<f64> = x.iter().enumerate()
            .map(|(i, &v)| v * ((seed + i as u64) % 7) as f64 - (seed % 13) as f64)
            .collect();
        let c = abscorr(&x, &y);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&c), "abscorr={c}");
    }

    #[test]
    fn abscorr_symmetric(x in prop::collection::vec(-10f64..10.0, 4..32)) {
        let y: Vec<f64> = x.iter().rev().cloned().collect();
        prop_assert!((abscorr(&x, &y) - abscorr(&y, &x)).abs() < 1e-12);
    }

    #[test]
    fn xcorr_fft_equals_direct(
        x in prop::collection::vec(-10f64..10.0, 1..48),
        y in prop::collection::vec(-10f64..10.0, 1..48),
    ) {
        let f = xcorr_fft(&x, &y, CorrMode::Full);
        let d = xcorr_direct(&x, &y);
        prop_assert_eq!(f.len(), d.len());
        for (a, b) in f.iter().zip(&d) {
            prop_assert!((a - b).abs() < 1e-6, "{} vs {}", a, b);
        }
    }

    #[test]
    fn filtfilt_output_length_matches(x in prop::collection::vec(-10f64..10.0, 40..200)) {
        let (b, a) = butter(3, FilterBand::Lowpass(0.4));
        let y = filtfilt(&b, &a, &x);
        prop_assert_eq!(y.len(), x.len());
        prop_assert!(y.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn filtfilt_linear(x in prop::collection::vec(-10f64..10.0, 40..150)) {
        // filtfilt(αx) = α·filtfilt(x)
        let (b, a) = butter(2, FilterBand::Lowpass(0.3));
        let y1 = filtfilt(&b, &a, &x);
        let scaled: Vec<f64> = x.iter().map(|v| v * 3.0).collect();
        let y3 = filtfilt(&b, &a, &scaled);
        for (u, v) in y1.iter().zip(&y3) {
            prop_assert!((3.0 * u - v).abs() < 1e-6 * (1.0 + v.abs()));
        }
    }

    #[test]
    fn resample_length_formula(len in 1usize..400, p in 1usize..6, q in 1usize..6) {
        let x = vec![1.0; len];
        let y = resample(&x, p, q);
        prop_assert_eq!(y.len(), (len * p).div_ceil(q));
    }

    #[test]
    fn interp1_between_knot_bounds(
        ys in prop::collection::vec(-100f64..100.0, 2..20),
        t in 0f64..1.0,
    ) {
        let xs: Vec<f64> = (0..ys.len()).map(|i| i as f64).collect();
        let q = t * (ys.len() - 1) as f64;
        let v = interp1(&xs, &ys, &[q])[0];
        let lo = ys.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "{v} outside [{lo}, {hi}]");
    }

    #[test]
    fn butter_is_stable(n in 1usize..8, w_milli in 50usize..950) {
        // All poles of the designed filter must lie inside the unit
        // circle; verify indirectly: the impulse response must decay.
        let w = w_milli as f64 / 1000.0;
        let (b, a) = butter(n, FilterBand::Lowpass(w));
        let mut impulse = vec![0.0; 512];
        impulse[0] = 1.0;
        let h = dsp::lfilter(&b, &a, &impulse);
        let head: f64 = h[..256].iter().map(|v| v.abs()).sum();
        let tail: f64 = h[256..].iter().map(|v| v.abs()).sum();
        prop_assert!(tail < head.max(1e-12), "unstable: head={head} tail={tail}");
        prop_assert!(h.iter().all(|v| v.is_finite()));
    }
}
