//! Short-time Fourier transform / spectrogram — the standard first look
//! at a DAS channel (the paper's Figure 1b-style visualizations come
//! from exactly this).

use crate::fft::fft_real;
use crate::window::hann;

/// A magnitude spectrogram: `frames × bins` power values.
#[derive(Debug, Clone, PartialEq)]
pub struct Spectrogram {
    /// Number of time frames.
    pub frames: usize,
    /// Frequency bins per frame (`n_fft / 2 + 1`).
    pub bins: usize,
    /// Row-major `frames × bins` power (|X|²) values.
    pub power: Vec<f64>,
    /// Hop size in samples between frames.
    pub hop: usize,
    /// FFT length used.
    pub n_fft: usize,
}

impl Spectrogram {
    /// Power at `(frame, bin)`.
    pub fn at(&self, frame: usize, bin: usize) -> f64 {
        assert!(
            frame < self.frames && bin < self.bins,
            "index out of bounds"
        );
        self.power[frame * self.bins + bin]
    }

    /// The bin index with the most total power across all frames.
    pub fn dominant_bin(&self) -> usize {
        let mut totals = vec![0.0f64; self.bins];
        for f in 0..self.frames {
            for (b, total) in totals.iter_mut().enumerate() {
                *total += self.at(f, b);
            }
        }
        totals
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Normalized frequency (fraction of Nyquist) of bin `b`.
    pub fn bin_freq(&self, b: usize) -> f64 {
        b as f64 / (self.n_fft as f64 / 2.0)
    }
}

/// Compute a Hann-windowed magnitude spectrogram with `n_fft`-sample
/// frames hopping by `hop`.
///
/// Frames that would run past the end of `x` are dropped (no padding),
/// so `frames = floor((len − n_fft) / hop) + 1` (zero when `x` is
/// shorter than one frame).
///
/// # Panics
/// Panics when `n_fft == 0` or `hop == 0`.
pub fn spectrogram(x: &[f64], n_fft: usize, hop: usize) -> Spectrogram {
    assert!(n_fft > 0 && hop > 0, "n_fft and hop must be positive");
    let bins = n_fft / 2 + 1;
    let win = hann(n_fft);
    let frames = if x.len() >= n_fft {
        (x.len() - n_fft) / hop + 1
    } else {
        0
    };
    let mut power = Vec::with_capacity(frames * bins);
    let mut buf = vec![0.0f64; n_fft];
    for f in 0..frames {
        let start = f * hop;
        for (i, b) in buf.iter_mut().enumerate() {
            *b = x[start + i] * win[i];
        }
        let spec = fft_real(&buf);
        power.extend(spec[..bins].iter().map(|z| z.norm_sqr()));
    }
    Spectrogram {
        frames,
        bins,
        power,
        hop,
        n_fft,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_count_formula() {
        let x = vec![0.0; 1000];
        let s = spectrogram(&x, 256, 128);
        assert_eq!(s.frames, (1000 - 256) / 128 + 1);
        assert_eq!(s.bins, 129);
        assert_eq!(s.power.len(), s.frames * s.bins);
    }

    #[test]
    fn short_input_gives_zero_frames() {
        let s = spectrogram(&[1.0; 10], 64, 32);
        assert_eq!(s.frames, 0);
        assert!(s.power.is_empty());
    }

    #[test]
    fn pure_tone_concentrates_in_one_bin() {
        let n = 2048;
        let bin = 24; // cycles per 256-sample frame
        let x: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * bin as f64 * i as f64 / 256.0).sin())
            .collect();
        let s = spectrogram(&x, 256, 64);
        assert_eq!(s.dominant_bin(), bin);
        // Energy in the dominant bin dwarfs a far-away bin.
        let dom: f64 = (0..s.frames).map(|f| s.at(f, bin)).sum();
        let far: f64 = (0..s.frames).map(|f| s.at(f, 100)).sum();
        assert!(dom > 1e4 * far.max(1e-12));
    }

    #[test]
    fn chirp_moves_across_bins() {
        // Linear chirp: the dominant bin of early frames is lower than
        // that of late frames.
        let n = 4096;
        let x: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                (2.0 * std::f64::consts::PI * (4.0 + 60.0 * t) * i as f64 / 256.0).sin()
            })
            .collect();
        let s = spectrogram(&x, 256, 128);
        let peak_of = |f: usize| {
            (0..s.bins)
                .max_by(|&a, &b| s.at(f, a).partial_cmp(&s.at(f, b)).expect("finite"))
                .expect("bins")
        };
        assert!(
            peak_of(s.frames - 1) > peak_of(0) + 10,
            "chirp must sweep upward"
        );
    }

    #[test]
    fn transient_localized_in_time() {
        // A burst in the middle third only lights up middle frames.
        let n = 3000;
        let mut x = vec![0.0f64; n];
        for (i, v) in x.iter_mut().enumerate().take(1700).skip(1300) {
            *v = (0.8 * i as f64).sin();
        }
        let s = spectrogram(&x, 200, 100);
        let frame_energy = |f: usize| -> f64 { (0..s.bins).map(|b| s.at(f, b)).sum() };
        let early = frame_energy(1);
        let mid = frame_energy(14); // samples 1400..1600
        assert!(mid > 100.0 * early.max(1e-12), "burst not localized");
    }

    #[test]
    fn bin_freq_scale() {
        let s = spectrogram(&vec![0.0; 512], 128, 64);
        assert_eq!(s.bin_freq(0), 0.0);
        assert!((s.bin_freq(64) - 1.0).abs() < 1e-12, "last bin is Nyquist");
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_hop_rejected() {
        spectrogram(&[0.0; 100], 32, 0);
    }
}
