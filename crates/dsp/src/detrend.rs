//! Trend removal — the paper's `Das_detrend(X)`, which "removes the best
//! straight-line fit" (MATLAB `detrend` semantics).

/// Remove the least-squares straight-line fit from `x`.
pub fn detrend(x: &[f64]) -> Vec<f64> {
    let n = x.len();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![0.0];
    }
    // Fit y = a·t + b over t = 0..n−1 by closed-form least squares.
    let nf = n as f64;
    let t_mean = (nf - 1.0) / 2.0;
    let x_mean = x.iter().sum::<f64>() / nf;
    let mut cov = 0.0;
    let mut var = 0.0;
    for (i, &v) in x.iter().enumerate() {
        let dt = i as f64 - t_mean;
        cov += dt * (v - x_mean);
        var += dt * dt;
    }
    let slope = cov / var;
    let intercept = x_mean - slope * t_mean;
    x.iter()
        .enumerate()
        .map(|(i, &v)| v - (slope * i as f64 + intercept))
        .collect()
}

/// Remove the mean (MATLAB `detrend(x, 'constant')`).
pub fn detrend_constant(x: &[f64]) -> Vec<f64> {
    if x.is_empty() {
        return Vec::new();
    }
    let mean = x.iter().sum::<f64>() / x.len() as f64;
    x.iter().map(|&v| v - mean).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn removes_pure_line_exactly() {
        let x: Vec<f64> = (0..100).map(|i| 3.0 * i as f64 - 7.0).collect();
        for v in detrend(&x) {
            assert!(v.abs() < 1e-9);
        }
    }

    #[test]
    fn preserves_signal_on_top_of_line() {
        let n = 200;
        let signal: Vec<f64> = (0..n).map(|i| (0.3 * i as f64).sin()).collect();
        let with_trend: Vec<f64> = signal
            .iter()
            .enumerate()
            .map(|(i, &s)| s + 0.05 * i as f64 + 2.0)
            .collect();
        let out = detrend(&with_trend);
        // The sine has tiny least-squares line content; allow slack.
        for (a, b) in out.iter().zip(&signal) {
            assert!((a - b).abs() < 0.05, "{a} vs {b}");
        }
    }

    #[test]
    fn output_has_zero_mean_and_zero_slope() {
        let x: Vec<f64> = (0..64)
            .map(|i| ((i * i) as f64).sin() + i as f64 * 0.2)
            .collect();
        let y = detrend(&x);
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        assert!(mean.abs() < 1e-10);
        let t_mean = (y.len() as f64 - 1.0) / 2.0;
        let slope_num: f64 = y
            .iter()
            .enumerate()
            .map(|(i, &v)| (i as f64 - t_mean) * v)
            .sum();
        assert!(slope_num.abs() < 1e-8);
    }

    #[test]
    fn constant_detrend_zeroes_mean_only() {
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let y = detrend_constant(&x);
        assert_eq!(y, vec![-1.5, -0.5, 0.5, 1.5]);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(detrend(&[]).is_empty());
        assert_eq!(detrend(&[5.0]), vec![0.0]);
        assert!(detrend_constant(&[]).is_empty());
        assert_eq!(detrend_constant(&[2.0]), vec![0.0]);
    }
}
