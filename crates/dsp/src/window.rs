//! Window functions used by resampling and spectral pre-processing.

use std::f64::consts::PI;

/// Periodic-symmetric Hann window of length `n` (MATLAB `hann(n)`).
pub fn hann(n: usize) -> Vec<f64> {
    symmetric_cosine(n, 0.5, 0.5)
}

/// Hamming window of length `n`.
pub fn hamming(n: usize) -> Vec<f64> {
    symmetric_cosine(n, 0.54, 0.46)
}

fn symmetric_cosine(n: usize, a0: f64, a1: f64) -> Vec<f64> {
    match n {
        0 => Vec::new(),
        1 => vec![1.0],
        _ => (0..n)
            .map(|i| a0 - a1 * (2.0 * PI * i as f64 / (n - 1) as f64).cos())
            .collect(),
    }
}

/// Modified Bessel function of the first kind, order 0 — power series,
/// converges quickly for the β values Kaiser windows use.
fn bessel_i0(x: f64) -> f64 {
    let mut sum = 1.0;
    let mut term = 1.0;
    let half_x = x / 2.0;
    for k in 1..64 {
        term *= (half_x / k as f64) * (half_x / k as f64);
        sum += term;
        if term < sum * 1e-16 {
            break;
        }
    }
    sum
}

/// Kaiser window of length `n` with shape parameter `beta`
/// (MATLAB `kaiser(n, beta)`). Used by [`crate::resample`]'s anti-alias
/// FIR design.
pub fn kaiser(n: usize, beta: f64) -> Vec<f64> {
    match n {
        0 => Vec::new(),
        1 => vec![1.0],
        _ => {
            let denom = bessel_i0(beta);
            let m = (n - 1) as f64;
            (0..n)
                .map(|i| {
                    let r = 2.0 * i as f64 / m - 1.0;
                    bessel_i0(beta * (1.0 - r * r).max(0.0).sqrt()) / denom
                })
                .collect()
        }
    }
}

/// Tukey (tapered cosine) window with taper fraction `alpha` in `[0,1]`;
/// `alpha = 0` is rectangular, `alpha = 1` is Hann. Standard ambient-noise
/// pre-processing taper.
pub fn tukey(n: usize, alpha: f64) -> Vec<f64> {
    let alpha = alpha.clamp(0.0, 1.0);
    match n {
        0 => Vec::new(),
        1 => vec![1.0],
        _ => {
            let m = (n - 1) as f64;
            let edge = alpha * m / 2.0;
            (0..n)
                .map(|i| {
                    let t = i as f64;
                    if t < edge {
                        0.5 * (1.0 + (PI * (t / edge - 1.0)).cos())
                    } else if t > m - edge {
                        0.5 * (1.0 + (PI * ((t - m + edge) / edge)).cos())
                    } else {
                        1.0
                    }
                })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hann_endpoints_and_peak() {
        let w = hann(65);
        assert!(w[0].abs() < 1e-12);
        assert!(w[64].abs() < 1e-12);
        assert!((w[32] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hamming_endpoints() {
        let w = hamming(11);
        assert!((w[0] - 0.08).abs() < 1e-12);
        assert!((w[10] - 0.08).abs() < 1e-12);
        assert!((w[5] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn windows_are_symmetric() {
        for w in [hann(32), hamming(33), kaiser(40, 5.0), tukey(25, 0.4)] {
            let n = w.len();
            for i in 0..n / 2 {
                assert!((w[i] - w[n - 1 - i]).abs() < 1e-12, "asymmetry at {i}");
            }
        }
    }

    #[test]
    fn kaiser_beta_zero_is_rectangular() {
        for v in kaiser(16, 0.0) {
            assert!((v - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn kaiser_peak_is_one() {
        let w = kaiser(21, 6.0);
        assert!((w[10] - 1.0).abs() < 1e-12);
        assert!(w[0] < 0.02);
    }

    #[test]
    fn bessel_i0_known_values() {
        assert!((bessel_i0(0.0) - 1.0).abs() < 1e-15);
        // I0(1) ≈ 1.2660658777520084
        assert!((bessel_i0(1.0) - 1.2660658777520084).abs() < 1e-12);
        // I0(5) ≈ 27.239871823604442
        assert!((bessel_i0(5.0) - 27.239871823604442).abs() < 1e-9);
    }

    #[test]
    fn tukey_extremes() {
        for v in tukey(16, 0.0) {
            assert!((v - 1.0).abs() < 1e-12);
        }
        let t = tukey(33, 1.0);
        let h = hann(33);
        for (a, b) in t.iter().zip(&h) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn degenerate_lengths() {
        assert!(hann(0).is_empty());
        assert_eq!(hann(1), vec![1.0]);
        assert_eq!(kaiser(1, 3.0), vec![1.0]);
        assert_eq!(tukey(1, 0.5), vec![1.0]);
    }
}
