//! Welch power-spectral-density estimation — the standard spectral QC
//! tool for DAS channels (noise-floor characterization before
//! interferometry).

use crate::stft::spectrogram;

/// Welch PSD estimate: average the periodograms of Hann-windowed,
/// `hop`-spaced segments of length `n_fft`. Returns one power value per
/// bin (`n_fft/2 + 1` bins, DC to Nyquist), normalized by window energy
/// so a unit-variance white input gives a flat spectrum whose sum
/// approximates the variance.
///
/// # Panics
/// Panics when `n_fft == 0` or `hop == 0` (propagated from the STFT).
pub fn welch_psd(x: &[f64], n_fft: usize, hop: usize) -> Vec<f64> {
    let spec = spectrogram(x, n_fft, hop);
    let bins = spec.bins;
    if spec.frames == 0 {
        return vec![0.0; bins];
    }
    // Hann window energy Σw² = 3n/8 for the symmetric window.
    let win_energy: f64 = crate::window::hann(n_fft).iter().map(|w| w * w).sum();
    let mut psd = vec![0.0f64; bins];
    for f in 0..spec.frames {
        for (b, p) in psd.iter_mut().enumerate() {
            *p += spec.at(f, b);
        }
    }
    let norm = 1.0 / (spec.frames as f64 * win_energy * n_fft as f64);
    for (b, p) in psd.iter_mut().enumerate() {
        // One-sided spectrum: double interior bins.
        let one_sided = if b == 0 || (n_fft.is_multiple_of(2) && b == bins - 1) {
            1.0
        } else {
            2.0
        };
        *p *= norm * one_sided * n_fft as f64;
    }
    psd
}

/// Band power: integrate a Welch PSD between normalized frequencies
/// `f_lo..f_hi` (fractions of Nyquist).
pub fn band_power(psd: &[f64], f_lo: f64, f_hi: f64) -> f64 {
    if psd.is_empty() {
        return 0.0;
    }
    let n = psd.len() - 1;
    let lo = (f_lo.clamp(0.0, 1.0) * n as f64).round() as usize;
    let hi = (f_hi.clamp(0.0, 1.0) * n as f64).round() as usize;
    psd[lo..=hi.min(n)].iter().sum::<f64>() / psd.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn white_noise(n: usize, seed: u64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let mut z = seed
                    .wrapping_mul(0x9E3779B97F4A7C15)
                    .wrapping_add((i as u64).wrapping_mul(0xBF58476D1CE4E5B9));
                z ^= z >> 30;
                z = z.wrapping_mul(0x94D049BB133111EB);
                z ^= z >> 27;
                (z % 2_000_000) as f64 / 1_000_000.0 - 1.0
            })
            .collect()
    }

    #[test]
    fn tone_peaks_at_its_bin() {
        let n = 8192;
        let bin = 40; // cycles per 256-sample segment
        let x: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * bin as f64 * i as f64 / 256.0).sin())
            .collect();
        let psd = welch_psd(&x, 256, 128);
        let peak = psd
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .expect("nonempty")
            .0;
        assert_eq!(peak, bin);
    }

    #[test]
    fn white_noise_is_roughly_flat() {
        let x = white_noise(65536, 7);
        let psd = welch_psd(&x, 256, 128);
        // Compare mean of low vs high halves (excluding DC/Nyquist).
        let mid = psd.len() / 2;
        let low: f64 = psd[1..mid].iter().sum::<f64>() / (mid - 1) as f64;
        let high: f64 = psd[mid..psd.len() - 1].iter().sum::<f64>() / (psd.len() - 1 - mid) as f64;
        assert!(
            (low / high - 1.0).abs() < 0.2,
            "white PSD not flat: low {low:.3e} vs high {high:.3e}"
        );
    }

    #[test]
    fn psd_scales_with_power() {
        let x = white_noise(32768, 3);
        let x2: Vec<f64> = x.iter().map(|v| v * 2.0).collect();
        let p1: f64 = welch_psd(&x, 256, 128).iter().sum();
        let p2: f64 = welch_psd(&x2, 256, 128).iter().sum();
        assert!(
            (p2 / p1 - 4.0).abs() < 0.01,
            "doubling amplitude quadruples power"
        );
    }

    #[test]
    fn band_power_localizes_energy() {
        let n = 16384;
        // Tone at 0.3 Nyquist.
        let x: Vec<f64> = (0..n)
            .map(|i| (std::f64::consts::PI * 0.3 * i as f64).sin())
            .collect();
        let psd = welch_psd(&x, 256, 128);
        let in_band = band_power(&psd, 0.25, 0.35);
        let out_band = band_power(&psd, 0.6, 0.9);
        assert!(in_band > 100.0 * out_band.max(1e-12));
    }

    #[test]
    fn short_input_returns_zeros() {
        let psd = welch_psd(&[1.0; 10], 64, 32);
        assert_eq!(psd.len(), 33);
        assert!(psd.iter().all(|&p| p == 0.0));
    }
}
