//! Correlation kernels.
//!
//! `Das_abscorr(c1, c2)` is the workhorse of both DASSA case studies: the
//! paper's Table II defines it as `|cos(θ(c1, c2))|` — the absolute value
//! of the normalized inner product. The cross-correlation of
//! ambient-noise interferometry is computed in the frequency domain via
//! [`xcorr_fft`].

use crate::complex::Complex;
use crate::fft::{fft, ifft, next_pow2};

/// Absolute normalized correlation `|cos θ| = |⟨c1, c2⟩| / (‖c1‖·‖c2‖)`.
///
/// Returns 0 when either input has zero energy (instead of NaN), so
/// all-quiet DAS windows score as "no similarity" rather than poisoning
/// downstream maxima.
///
/// # Panics
/// Panics when lengths differ.
pub fn abscorr(c1: &[f64], c2: &[f64]) -> f64 {
    assert_eq!(c1.len(), c2.len(), "abscorr requires equal-length windows");
    let mut dot = 0.0;
    let mut n1 = 0.0;
    let mut n2 = 0.0;
    for (&a, &b) in c1.iter().zip(c2) {
        dot += a * b;
        n1 += a * a;
        n2 += b * b;
    }
    if n1 == 0.0 || n2 == 0.0 {
        return 0.0;
    }
    (dot / (n1 * n2).sqrt()).abs()
}

/// Complex-spectrum variant used by the interferometry UDF after
/// `Das_fft`: `|⟨S1, S2⟩| / (‖S1‖·‖S2‖)` with the Hermitian inner
/// product.
pub fn abscorr_complex(s1: &[Complex], s2: &[Complex]) -> f64 {
    assert_eq!(s1.len(), s2.len(), "abscorr requires equal-length spectra");
    let mut dot = Complex::ZERO;
    let mut n1 = 0.0;
    let mut n2 = 0.0;
    for (&a, &b) in s1.iter().zip(s2) {
        dot += a * b.conj();
        n1 += a.norm_sqr();
        n2 += b.norm_sqr();
    }
    if n1 == 0.0 || n2 == 0.0 {
        return 0.0;
    }
    dot.abs() / (n1 * n2).sqrt()
}

/// Lag range convention for [`xcorr_fft`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorrMode {
    /// All `2·n − 1` lags, like MATLAB `xcorr`: index `k` is lag
    /// `k − (n−1)` for equal-length inputs of length `n`.
    Full,
}

/// Cross-correlation `r[k] = Σ x[i] · y[i + k]` computed via FFT.
///
/// This is the frequency-domain path DASSA uses for the ambient-noise
/// cross-correlation: `IFFT(FFT(x)* · FFT(y))`, zero-padded to avoid
/// circular wrap-around.
pub fn xcorr_fft(x: &[f64], y: &[f64], _mode: CorrMode) -> Vec<f64> {
    if x.is_empty() || y.is_empty() {
        return Vec::new();
    }
    let full = x.len() + y.len() - 1;
    let m = next_pow2(full);
    let mut fx = vec![Complex::ZERO; m];
    for (i, &v) in x.iter().enumerate() {
        fx[i] = Complex::real(v);
    }
    let mut fy = vec![Complex::ZERO; m];
    for (i, &v) in y.iter().enumerate() {
        fy[i] = Complex::real(v);
    }
    let sx = fft(&fx);
    let sy = fft(&fy);
    let prod: Vec<Complex> = sx.iter().zip(&sy).map(|(&a, &b)| a.conj() * b).collect();
    let r = ifft(&prod);
    // Unwrap circular layout: negative lags live at the tail.
    let n_neg = x.len() - 1;
    let mut out = Vec::with_capacity(full);
    for k in 0..n_neg {
        out.push(r[m - n_neg + k].re);
    }
    out.extend(r[..y.len()].iter().map(|c| c.re));
    out
}

/// Direct O(n²) cross-correlation; reference implementation used in
/// tests and for very short windows.
pub fn xcorr_direct(x: &[f64], y: &[f64]) -> Vec<f64> {
    if x.is_empty() || y.is_empty() {
        return Vec::new();
    }
    let n_neg = x.len() as isize - 1;
    let n_pos = y.len() as isize - 1;
    (-n_neg..=n_pos)
        .map(|lag| {
            let mut acc = 0.0;
            for i in 0..x.len() as isize {
                let j = i + lag;
                if j >= 0 && j < y.len() as isize {
                    acc += x[i as usize] * y[j as usize];
                }
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abscorr_identical_is_one() {
        let x = [1.0, -2.0, 3.0, 0.5];
        assert!((abscorr(&x, &x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn abscorr_negated_is_one() {
        // Absolute value: anti-correlated windows score 1.
        let x = [1.0, -2.0, 3.0];
        let y = [-1.0, 2.0, -3.0];
        assert!((abscorr(&x, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn abscorr_orthogonal_is_zero() {
        let x = [1.0, 0.0, -1.0, 0.0];
        let y = [0.0, 1.0, 0.0, -1.0];
        assert!(abscorr(&x, &y).abs() < 1e-12);
    }

    #[test]
    fn abscorr_zero_energy_is_zero() {
        assert_eq!(abscorr(&[0.0; 4], &[1.0, 2.0, 3.0, 4.0]), 0.0);
        assert_eq!(abscorr(&[1.0; 4], &[0.0; 4]), 0.0);
    }

    #[test]
    fn abscorr_bounded_by_one() {
        let x = [0.3, 1.7, -0.4, 2.2, -1.1];
        let y = [1.0, 0.2, 0.9, -0.5, 0.7];
        let c = abscorr(&x, &y);
        assert!((0.0..=1.0 + 1e-12).contains(&c));
    }

    #[test]
    fn abscorr_scale_invariant() {
        let x = [1.0, 2.0, 3.0];
        let y = [0.5, -1.0, 2.0];
        let scaled: Vec<f64> = y.iter().map(|v| v * 42.0).collect();
        assert!((abscorr(&x, &y) - abscorr(&x, &scaled)).abs() < 1e-12);
    }

    #[test]
    fn complex_abscorr_matches_real_for_real_input() {
        let x = [1.0, -0.5, 2.0, 0.25];
        let y = [0.5, 1.5, -1.0, 0.75];
        let cx: Vec<Complex> = x.iter().map(|&v| Complex::real(v)).collect();
        let cy: Vec<Complex> = y.iter().map(|&v| Complex::real(v)).collect();
        assert!((abscorr(&x, &y) - abscorr_complex(&cx, &cy)).abs() < 1e-12);
    }

    #[test]
    fn xcorr_fft_matches_direct() {
        let x = [1.0, 2.0, -1.0, 0.5, 3.0];
        let y = [0.5, -0.25, 1.0];
        let f = xcorr_fft(&x, &y, CorrMode::Full);
        let d = xcorr_direct(&x, &y);
        assert_eq!(f.len(), d.len());
        for (a, b) in f.iter().zip(&d) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn xcorr_autocorr_peak_at_zero_lag() {
        let x: Vec<f64> = (0..64).map(|i| ((i as f64) * 0.71).sin()).collect();
        let r = xcorr_fft(&x, &x, CorrMode::Full);
        let zero_lag = x.len() - 1;
        let peak = r
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(peak, zero_lag);
        let energy: f64 = x.iter().map(|v| v * v).sum();
        assert!((r[zero_lag] - energy).abs() < 1e-9);
    }

    #[test]
    fn xcorr_detects_known_shift() {
        // y is x delayed by 7 samples: peak at lag +7.
        let n = 128;
        let x: Vec<f64> = (0..n).map(|i| ((i * i % 37) as f64) - 18.0).collect();
        let mut y = vec![0.0; n];
        y[7..n].copy_from_slice(&x[..n - 7]);
        let r = xcorr_fft(&x, &y, CorrMode::Full);
        let peak = r
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0 as isize
            - (n as isize - 1);
        assert_eq!(peak, 7);
    }

    #[test]
    fn xcorr_empty() {
        assert!(xcorr_fft(&[], &[1.0], CorrMode::Full).is_empty());
        assert!(xcorr_direct(&[], &[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn abscorr_length_mismatch_panics() {
        abscorr(&[1.0], &[1.0, 2.0]);
    }
}
