//! A minimal double-precision complex number.
//!
//! DasLib needs complex arithmetic for FFTs and Butterworth pole
//! manipulation; rather than pulling in a numerics crate we implement the
//! handful of operations required.

use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub};

/// A complex number with `f64` parts.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// `0 + 0i`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// `1 + 0i`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// `0 + 1i`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Construct from rectangular parts.
    pub fn new(re: f64, im: f64) -> Complex {
        Complex { re, im }
    }

    /// A purely real value.
    pub fn real(re: f64) -> Complex {
        Complex { re, im: 0.0 }
    }

    /// `r · e^{iθ}`.
    pub fn from_polar(r: f64, theta: f64) -> Complex {
        Complex {
            re: r * theta.cos(),
            im: r * theta.sin(),
        }
    }

    /// `e^{iθ}` — a point on the unit circle (FFT twiddle factor).
    pub fn cis(theta: f64) -> Complex {
        Complex::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    pub fn conj(self) -> Complex {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Magnitude `|z|`.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|²` (avoids the square root).
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase angle).
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex exponential `e^z`.
    pub fn exp(self) -> Complex {
        Complex::from_polar(self.re.exp(), self.im)
    }

    /// Principal square root.
    pub fn sqrt(self) -> Complex {
        let r = self.abs();
        let theta = self.arg();
        Complex::from_polar(r.sqrt(), theta / 2.0)
    }

    /// Multiplicative inverse.
    pub fn inv(self) -> Complex {
        let d = self.norm_sqr();
        Complex {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// Scale by a real factor.
    pub fn scale(self, k: f64) -> Complex {
        Complex {
            re: self.re * k,
            im: self.im * k,
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex {
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Div for Complex {
    type Output = Complex;
    #[allow(clippy::suspicious_arithmetic_impl)] // division = multiply by inverse
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.inv()
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Complex {
        Complex::real(re)
    }
}

/// Multiply out a monic polynomial from its roots; returns coefficients
/// highest-degree first (like MATLAB `poly`).
pub fn poly_from_roots(roots: &[Complex]) -> Vec<Complex> {
    let mut coeffs = vec![Complex::ONE];
    for &r in roots {
        // coeffs *= (x - r)
        let mut next = vec![Complex::ZERO; coeffs.len() + 1];
        for (i, &c) in coeffs.iter().enumerate() {
            next[i] += c;
            next[i + 1] += -r * c;
        }
        coeffs = next;
    }
    coeffs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn arithmetic_identities() {
        let z = Complex::new(3.0, -4.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert!(close(z * z.inv(), Complex::ONE));
        assert!(close(z + (-z), Complex::ZERO));
        assert!(close(z / z, Complex::ONE));
        assert!(close(z.conj().conj(), z));
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex::from_polar(2.0, 0.7);
        assert!((z.abs() - 2.0).abs() < 1e-12);
        assert!((z.arg() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn exp_of_i_pi_is_minus_one() {
        let z = Complex::new(0.0, std::f64::consts::PI).exp();
        assert!(close(z, Complex::real(-1.0)));
    }

    #[test]
    fn sqrt_squares_back() {
        for &(re, im) in &[(4.0, 0.0), (-1.0, 0.0), (3.0, 4.0), (-2.0, -5.0)] {
            let z = Complex::new(re, im);
            let s = z.sqrt();
            assert!(close(s * s, z), "sqrt({z:?})² = {:?}", s * s);
        }
    }

    #[test]
    fn poly_from_roots_matches_expansion() {
        // (x - 1)(x + 2) = x² + x − 2
        let c = poly_from_roots(&[Complex::real(1.0), Complex::real(-2.0)]);
        assert!(close(c[0], Complex::real(1.0)));
        assert!(close(c[1], Complex::real(1.0)));
        assert!(close(c[2], Complex::real(-2.0)));
    }

    #[test]
    fn poly_of_conjugate_pair_is_real() {
        let c = poly_from_roots(&[Complex::new(1.0, 2.0), Complex::new(1.0, -2.0)]);
        for coeff in &c {
            assert!(coeff.im.abs() < 1e-12);
        }
        // x² − 2x + 5
        assert!((c[1].re + 2.0).abs() < 1e-12);
        assert!((c[2].re - 5.0).abs() < 1e-12);
    }
}
