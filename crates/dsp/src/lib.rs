//! `dsp` — DasLib: the DAS data-analysis kernel library.
//!
//! Section V-A of the DASSA paper introduces **DasLib**, a library of
//! "sequential, thread-safe" signal-processing operations whose names and
//! semantics follow MATLAB's Signal Processing Toolbox (the paper's
//! Table II). This crate is that library, implemented from scratch:
//!
//! | Paper (Table II)              | Here                                   |
//! |-------------------------------|----------------------------------------|
//! | `Das_abscorr(c1, c2)`         | [`abscorr`]                            |
//! | `Das_detrend(X)`              | [`detrend`], [`detrend_constant`]      |
//! | `Das_butter(n, fc)`           | [`butter`] (low/high/band-pass)        |
//! | `Das_filtfilt(c1, c2, X)`     | [`filtfilt`] (zero-phase IIR)          |
//! | `Das_resample(X, p, q)`       | [`resample`] (polyphase-style rational)|
//! | `Das_interp1(X0, Y0, X)`      | [`interp1`] (linear)                   |
//! | `Das_fft(X)` / `Das_ifft(X)`  | [`fft`], [`ifft`], [`fft_real`]        |
//!
//! Everything is a pure function over slices — no global state, no
//! interior mutability — which is exactly the thread-safety contract the
//! paper's hybrid execution engine (HAEE) relies on when it fans a UDF
//! out across OpenMP threads.

pub mod butter;
pub mod complex;
pub mod correlate;
pub mod detrend;
pub mod fft;
pub mod filter;
pub mod hilbert;
pub mod interp;
pub mod linalg;
pub mod normalize;
pub mod resample;
pub mod stft;
pub mod welch;
pub mod whiten;
pub mod window;

pub use butter::{butter, FilterBand};
pub use complex::Complex;
pub use correlate::{abscorr, abscorr_complex, xcorr_direct, xcorr_fft, CorrMode};
pub use detrend::{detrend, detrend_constant};
pub use fft::{fft, fft_real, ifft, ifft_real, next_pow2};
pub use filter::{filtfilt, lfilter, lfilter_zi};
pub use hilbert::{analytic, envelope, instantaneous_phase};
pub use interp::interp1;
pub use normalize::{clip_std, one_bit, running_abs_mean};
pub use resample::{decimate, resample};
pub use stft::{spectrogram, Spectrogram};
pub use welch::{band_power, welch_psd};
pub use whiten::whiten;
pub use window::{hamming, hann, kaiser, tukey};
