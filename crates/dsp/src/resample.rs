//! Rational-rate resampling — the paper's `Das_resample(X, p, q)`.
//!
//! MATLAB-style: upsample by `p`, anti-alias with a Kaiser-windowed sinc
//! FIR, downsample by `q`, with gain and group-delay compensation so
//! `output[0]` aligns with `input[0]`. The implementation walks the
//! polyphase structure directly (only taps that land on kept samples are
//! evaluated), so cost is O(len·taps/p) rather than O(len·p·taps).

use crate::window::kaiser;

/// Greatest common divisor.
fn gcd(mut a: usize, mut b: usize) -> usize {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Design the anti-alias lowpass used by MATLAB `resample`: cutoff at
/// `1/max(p,q)` of the upsampled Nyquist, `2·N·max(p,q)+1` taps
/// (N = 10), Kaiser β = 5, scaled by `p`.
fn design_fir(p: usize, q: usize) -> Vec<f64> {
    let n_half = 10 * p.max(q);
    let len = 2 * n_half + 1;
    let fc = 1.0 / p.max(q) as f64; // fraction of upsampled Nyquist
    let win = kaiser(len, 5.0);
    (0..len)
        .map(|i| {
            let t = i as f64 - n_half as f64;
            let sinc = if t == 0.0 {
                fc
            } else {
                (std::f64::consts::PI * fc * t).sin() / (std::f64::consts::PI * t)
            };
            sinc * win[i] * p as f64
        })
        .collect()
}

/// Resample `x` from rate `p/q` (MATLAB `resample(x, p, q)`).
///
/// Output length is `ceil(len·p/q)`. The 6-minute DASSA interferometry
/// pipeline uses this to take 500 Hz channels down to analysis rate.
///
/// # Panics
/// Panics when `p` or `q` is zero.
pub fn resample(x: &[f64], p: usize, q: usize) -> Vec<f64> {
    assert!(p > 0 && q > 0, "resample factors must be positive");
    let g = gcd(p, q);
    let (p, q) = (p / g, q / g);
    if p == 1 && q == 1 {
        return x.to_vec();
    }
    if x.is_empty() {
        return Vec::new();
    }
    let h = design_fir(p, q);
    let half = (h.len() - 1) / 2;
    let n_out = (x.len() * p).div_ceil(q);

    // Output sample k sits at upsampled index k·q; the FIR is centred
    // there (delay `half` compensated). Upsampled index u maps to input
    // sample u/p when divisible, zero otherwise — skip the zeros by
    // stepping through taps whose upsampled position is ≡ 0 (mod p).
    let mut out = Vec::with_capacity(n_out);
    for k in 0..n_out {
        let centre = (k * q) as isize; // upsampled position of output k
        let lo = centre - half as isize;
        let hi = centre + half as isize;
        let mut acc = 0.0;
        // First upsampled position ≥ lo that is a multiple of p.
        let mut u = lo.div_euclid(p as isize) * p as isize;
        if u < lo {
            u += p as isize;
        }
        while u <= hi {
            let xi = u / p as isize;
            if xi >= 0 && (xi as usize) < x.len() {
                let tap = (u - lo) as usize;
                acc += x[xi as usize] * h[tap];
            }
            u += p as isize;
        }
        out.push(acc);
    }
    out
}

/// Integer-factor decimation with anti-alias filtering:
/// `decimate(x, q) == resample(x, 1, q)`.
pub fn decimate(x: &[f64], q: usize) -> Vec<f64> {
    resample(x, 1, q)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine(n: usize, cycles_per_sample: f64) -> Vec<f64> {
        (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * cycles_per_sample * i as f64).sin())
            .collect()
    }

    #[test]
    fn identity_rate() {
        let x = sine(100, 0.01);
        assert_eq!(resample(&x, 1, 1), x);
        assert_eq!(resample(&x, 3, 3), x);
    }

    #[test]
    fn output_length_is_ceil() {
        assert_eq!(resample(&vec![0.0; 100], 1, 2).len(), 50);
        assert_eq!(resample(&vec![0.0; 101], 1, 2).len(), 51);
        assert_eq!(resample(&vec![0.0; 100], 2, 1).len(), 200);
        assert_eq!(resample(&vec![0.0; 100], 2, 3).len(), 67);
    }

    #[test]
    fn downsample_preserves_low_frequency_tone() {
        // 0.01 cycles/sample tone, decimate by 2 → 0.02 cycles/sample.
        let x = sine(2000, 0.01);
        let y = resample(&x, 1, 2);
        let expect = sine(1000, 0.02);
        // Compare away from the edges (filter transients).
        for i in 100..900 {
            assert!(
                (y[i] - expect[i]).abs() < 1e-3,
                "i={i}: {} vs {}",
                y[i],
                expect[i]
            );
        }
    }

    #[test]
    fn upsample_preserves_tone() {
        let x = sine(500, 0.02);
        let y = resample(&x, 2, 1);
        let expect = sine(1000, 0.01);
        for i in 100..900 {
            assert!((y[i] - expect[i]).abs() < 1e-3, "i={i}");
        }
    }

    #[test]
    fn rational_rate_2_3() {
        let x = sine(1500, 0.01);
        let y = resample(&x, 2, 3);
        let expect = sine(1000, 0.015);
        for i in 100..900 {
            assert!((y[i] - expect[i]).abs() < 2e-3, "i={i}");
        }
    }

    #[test]
    fn decimation_removes_high_frequency() {
        // A tone above the post-decimation Nyquist must be attenuated,
        // not aliased: 0.4 cycles/sample, decimate by 4 → would alias.
        let x = sine(4000, 0.4);
        let y = decimate(&x, 4);
        let peak = y[100..y.len() - 100]
            .iter()
            .cloned()
            .fold(0.0f64, |m, v| m.max(v.abs()));
        assert!(peak < 0.02, "aliased energy: {peak}");
    }

    #[test]
    fn dc_gain_preserved() {
        let x = vec![3.0; 1000];
        for (p, q) in [(1usize, 2usize), (2, 1), (3, 5), (5, 3)] {
            let y = resample(&x, p, q);
            let mid = y.len() / 2;
            assert!((y[mid] - 3.0).abs() < 1e-2, "p={p} q={q}: {}", y[mid]);
        }
    }

    #[test]
    fn alignment_sample_zero() {
        // output[0] corresponds to input[0] (delay compensated): for a
        // ramp the first output should be near x[0].
        let x: Vec<f64> = (0..1000).map(|i| i as f64 * 0.001).collect();
        let y = resample(&x, 1, 4);
        assert!(y[0].abs() < 0.05, "misaligned start: {}", y[0]);
        assert!((y[100] - x[400]).abs() < 0.01);
    }

    #[test]
    fn empty_input() {
        assert!(resample(&[], 2, 3).is_empty());
    }

    #[test]
    fn gcd_reduction() {
        assert_eq!(gcd(12, 8), 4);
        assert_eq!(gcd(7, 13), 1);
        assert_eq!(gcd(5, 0), 5);
    }
}
