//! Linear interpolation — the paper's `Das_interp1(X0, Y0, X)`.

/// Linearly interpolate the function defined by knots `(x0, y0)` at query
/// points `xq` (MATLAB `interp1(x0, y0, xq, 'linear')`).
///
/// `x0` must be strictly increasing. Queries outside the knot range
/// return `f64::NAN`, matching MATLAB's default extrapolation behaviour.
///
/// # Panics
/// Panics when `x0`/`y0` lengths differ, are empty, or `x0` is not
/// strictly increasing.
pub fn interp1(x0: &[f64], y0: &[f64], xq: &[f64]) -> Vec<f64> {
    assert_eq!(x0.len(), y0.len(), "knot vectors must have equal length");
    assert!(!x0.is_empty(), "need at least one knot");
    assert!(
        x0.windows(2).all(|w| w[0] < w[1]),
        "x0 must be strictly increasing"
    );
    xq.iter()
        .map(|&x| {
            if x < x0[0] || x > x0[x0.len() - 1] {
                return f64::NAN;
            }
            // Binary search for the bracketing interval.
            let idx = match x0.binary_search_by(|v| v.partial_cmp(&x).expect("no NaN knots")) {
                Ok(i) => return y0[i], // exact knot hit
                Err(i) => i,
            };
            // idx is the first knot greater than x; bracket is [idx-1, idx].
            let (xa, xb) = (x0[idx - 1], x0[idx]);
            let (ya, yb) = (y0[idx - 1], y0[idx]);
            ya + (yb - ya) * (x - xa) / (xb - xa)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_knots_returned() {
        let x0 = [0.0, 1.0, 2.0];
        let y0 = [10.0, 20.0, 15.0];
        assert_eq!(interp1(&x0, &y0, &[0.0, 1.0, 2.0]), vec![10.0, 20.0, 15.0]);
    }

    #[test]
    fn midpoints_interpolate_linearly() {
        let x0 = [0.0, 2.0];
        let y0 = [0.0, 10.0];
        let out = interp1(&x0, &y0, &[0.5, 1.0, 1.5]);
        assert_eq!(out, vec![2.5, 5.0, 7.5]);
    }

    #[test]
    fn out_of_range_is_nan() {
        let x0 = [0.0, 1.0];
        let y0 = [0.0, 1.0];
        let out = interp1(&x0, &y0, &[-0.1, 1.1]);
        assert!(out[0].is_nan());
        assert!(out[1].is_nan());
    }

    #[test]
    fn nonuniform_knots() {
        let x0 = [0.0, 1.0, 10.0];
        let y0 = [0.0, 1.0, 10.0];
        let out = interp1(&x0, &y0, &[5.5]);
        assert!((out[0] - 5.5).abs() < 1e-12);
    }

    #[test]
    fn single_knot() {
        let out = interp1(&[2.0], &[7.0], &[2.0, 3.0]);
        assert_eq!(out[0], 7.0);
        assert!(out[1].is_nan());
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_knots() {
        interp1(&[0.0, 0.0], &[1.0, 2.0], &[0.0]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn rejects_mismatched_lengths() {
        interp1(&[0.0, 1.0], &[1.0], &[0.5]);
    }
}
