//! Analytic signal, envelope, and instantaneous phase via the Hilbert
//! transform — used to pick arrivals on DAS channels (e.g. locating the
//! earthquake onset in the Figure 10 record).

use crate::complex::Complex;
use crate::fft::{fft, ifft};

/// The analytic signal `x + i·H(x)` computed with the FFT method
/// (MATLAB `hilbert`): zero the negative frequencies, double the
/// positive ones.
pub fn analytic(x: &[f64]) -> Vec<Complex> {
    let n = x.len();
    if n == 0 {
        return Vec::new();
    }
    let buf: Vec<Complex> = x.iter().map(|&v| Complex::real(v)).collect();
    let mut spec = fft(&buf);
    // Weights: 1 for DC (and Nyquist when n even), 2 for positive
    // frequencies, 0 for negative frequencies.
    let half = n / 2;
    for (k, s) in spec.iter_mut().enumerate() {
        if k == 0 || (n.is_multiple_of(2) && k == half) {
            // keep
        } else if k < half || (n % 2 == 1 && k <= half) {
            *s = s.scale(2.0);
        } else {
            *s = Complex::ZERO;
        }
    }
    ifft(&spec)
}

/// The signal envelope `|x + i·H(x)|`.
pub fn envelope(x: &[f64]) -> Vec<f64> {
    analytic(x).iter().map(|z| z.abs()).collect()
}

/// Instantaneous phase of the analytic signal, radians in (−π, π].
pub fn instantaneous_phase(x: &[f64]) -> Vec<f64> {
    analytic(x).iter().map(|z| z.arg()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_part_is_preserved() {
        let x: Vec<f64> = (0..128).map(|i| ((i as f64) * 0.23).sin() + 0.4).collect();
        let a = analytic(&x);
        for (orig, z) in x.iter().zip(&a) {
            assert!((z.re - orig).abs() < 1e-9, "{} vs {}", z.re, orig);
        }
    }

    #[test]
    fn envelope_of_pure_tone_is_flat() {
        // env(sin) == 1 away from the edges.
        let n = 512;
        let x: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * 16.0 * i as f64 / n as f64).sin())
            .collect();
        let env = envelope(&x);
        for &e in &env[32..n - 32] {
            assert!((e - 1.0).abs() < 0.02, "envelope {e}");
        }
    }

    #[test]
    fn envelope_tracks_amplitude_modulation() {
        // sin carrier modulated by a slow raised cosine.
        let n = 1024;
        let x: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                let m = 0.6 + 0.4 * (2.0 * std::f64::consts::PI * 2.0 * t).cos();
                m * (2.0 * std::f64::consts::PI * 64.0 * t).sin()
            })
            .collect();
        let env = envelope(&x);
        for i in (64..n - 64).step_by(37) {
            let t = i as f64 / n as f64;
            let m = 0.6 + 0.4 * (2.0 * std::f64::consts::PI * 2.0 * t).cos();
            assert!((env[i] - m).abs() < 0.05, "i={i}: {} vs {m}", env[i]);
        }
    }

    #[test]
    fn hilbert_of_cos_is_sin() {
        // H(cos) = sin → analytic(cos) = cos + i·sin = e^{iωt}.
        let n = 256;
        let w = 2.0 * std::f64::consts::PI * 8.0 / n as f64;
        let x: Vec<f64> = (0..n).map(|i| (w * i as f64).cos()).collect();
        let a = analytic(&x);
        for (i, z) in a.iter().enumerate().skip(8).take(n - 16) {
            let expect_im = (w * i as f64).sin();
            assert!((z.im - expect_im).abs() < 1e-6, "i={i}");
        }
    }

    #[test]
    fn phase_advances_linearly_for_tone() {
        let n = 256;
        let w = 2.0 * std::f64::consts::PI * 4.0 / n as f64;
        let x: Vec<f64> = (0..n).map(|i| (w * i as f64).cos()).collect();
        let ph = instantaneous_phase(&x);
        // Unwrapped phase difference between consecutive samples ≈ w.
        for i in 20..60 {
            let mut d = ph[i + 1] - ph[i];
            if d < -std::f64::consts::PI {
                d += 2.0 * std::f64::consts::PI;
            }
            assert!((d - w).abs() < 1e-6, "i={i}: {d} vs {w}");
        }
    }

    #[test]
    fn odd_length_inputs_work() {
        let x: Vec<f64> = (0..101).map(|i| ((i as f64) * 0.37).sin()).collect();
        let a = analytic(&x);
        assert_eq!(a.len(), 101);
        for (orig, z) in x.iter().zip(&a) {
            assert!((z.re - orig).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_input() {
        assert!(analytic(&[]).is_empty());
        assert!(envelope(&[]).is_empty());
    }
}
