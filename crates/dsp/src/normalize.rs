//! Time-domain normalization for ambient-noise processing.
//!
//! The traffic-noise interferometry workflow the paper reproduces
//! (Dou et al. 2017) applies temporal normalization between filtering
//! and correlation so that earthquakes and other transients do not
//! dominate the noise cross-correlations. The two standard choices are
//! **one-bit** normalization and **running-absolute-mean** (RAM)
//! normalization (Bensen et al. 2007).

/// One-bit normalization: keep only the sign of each sample.
///
/// The most aggressive temporal normalization — every transient is
/// flattened to ±1, leaving only phase information.
pub fn one_bit(x: &[f64]) -> Vec<f64> {
    x.iter()
        .map(|&v| {
            if v > 0.0 {
                1.0
            } else if v < 0.0 {
                -1.0
            } else {
                0.0
            }
        })
        .collect()
}

/// Running-absolute-mean normalization: divide each sample by the
/// average of |x| over a centered window of `2·half + 1` samples
/// (edge-clamped). Windows with zero energy leave the sample at 0.
pub fn running_abs_mean(x: &[f64], half: usize) -> Vec<f64> {
    let n = x.len();
    if n == 0 {
        return Vec::new();
    }
    // Prefix sums of |x| for O(1) window means.
    let mut prefix = Vec::with_capacity(n + 1);
    prefix.push(0.0);
    for &v in x {
        prefix.push(prefix.last().expect("nonempty") + v.abs());
    }
    (0..n)
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(n);
            let mean = (prefix[hi] - prefix[lo]) / (hi - lo) as f64;
            if mean > 0.0 {
                x[i] / mean
            } else {
                0.0
            }
        })
        .collect()
}

/// Clip samples beyond `k` standard deviations (another common
/// transient-suppression step).
pub fn clip_std(x: &[f64], k: f64) -> Vec<f64> {
    if x.is_empty() {
        return Vec::new();
    }
    let mean = x.iter().sum::<f64>() / x.len() as f64;
    let var = x.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / x.len() as f64;
    let limit = k * var.sqrt();
    x.iter()
        .map(|&v| (v - mean).clamp(-limit, limit) + mean)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_bit_is_signum() {
        assert_eq!(one_bit(&[2.5, -0.1, 0.0, 7.0]), vec![1.0, -1.0, 0.0, 1.0]);
    }

    #[test]
    fn one_bit_kills_amplitude_information() {
        let quiet: Vec<f64> = (0..64).map(|i| 0.01 * ((i as f64) * 0.3).sin()).collect();
        let loud: Vec<f64> = quiet.iter().map(|v| v * 1e6).collect();
        assert_eq!(one_bit(&quiet), one_bit(&loud));
    }

    #[test]
    fn ram_suppresses_a_spike() {
        // A big spike on small background: after RAM the spike's
        // normalized amplitude is comparable to its neighbours'.
        let mut x: Vec<f64> = (0..200).map(|i| ((i as f64) * 0.7).sin() * 0.5).collect();
        x[100] = 100.0;
        let y = running_abs_mean(&x, 10);
        // Spike-to-background dynamic range must shrink substantially.
        let bg_peak = |v: &[f64]| v[40..60].iter().fold(0.0f64, |m, &s| m.max(s.abs()));
        let ratio_before = x[100].abs() / bg_peak(&x);
        let ratio_after = y[100].abs() / bg_peak(&y);
        assert!(
            ratio_after < ratio_before / 3.0,
            "dynamic range {ratio_before:.1} -> {ratio_after:.1}: insufficient suppression"
        );
        assert!(
            y[100].abs() < x[100].abs() / 2.0,
            "spike must be attenuated"
        );
    }

    #[test]
    fn ram_of_constant_signal_is_sign() {
        let x = vec![3.0; 50];
        let y = running_abs_mean(&x, 5);
        for v in y {
            assert!((v - 1.0).abs() < 1e-12);
        }
        let neg = vec![-2.0; 50];
        for v in running_abs_mean(&neg, 5) {
            assert!((v + 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn ram_zero_window_passes_zero() {
        let x = vec![0.0; 10];
        assert_eq!(running_abs_mean(&x, 3), vec![0.0; 10]);
    }

    #[test]
    fn ram_window_edges_clamp() {
        let x = vec![1.0, 1.0, 1.0];
        // Large half-window: every window is the whole signal.
        let y = running_abs_mean(&x, 100);
        for v in y {
            assert!((v - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn clip_std_bounds_outliers() {
        let mut x: Vec<f64> = (0..100).map(|i| ((i as f64) * 0.31).sin()).collect();
        x[50] = 50.0;
        let y = clip_std(&x, 3.0);
        assert!(y[50] < x[50], "outlier clipped");
        // In-range samples barely move.
        assert!((y[10] - x[10]).abs() < 0.2);
    }

    #[test]
    fn empty_inputs() {
        assert!(one_bit(&[]).is_empty());
        assert!(running_abs_mean(&[], 4).is_empty());
        assert!(clip_std(&[], 2.0).is_empty());
    }
}
