//! IIR filtering: `lfilter` (direct-form II transposed) and MATLAB-style
//! zero-phase `filtfilt` — the paper's `Das_filtfilt`.

use crate::linalg::solve;

/// Apply the rational filter `b / a` to `x` (like MATLAB `filter`).
///
/// Direct-form II transposed; `a[0]` must be non-zero (coefficients are
/// normalized by it).
pub fn lfilter(b: &[f64], a: &[f64], x: &[f64]) -> Vec<f64> {
    let order = b.len().max(a.len());
    lfilter_zi(b, a, x, &vec![0.0; order.saturating_sub(1)]).0
}

/// [`lfilter`] with explicit initial conditions `zi` (length
/// `max(len(a), len(b)) − 1`). Returns `(y, zf)` with the final state.
pub fn lfilter_zi(b: &[f64], a: &[f64], x: &[f64], zi: &[f64]) -> (Vec<f64>, Vec<f64>) {
    assert!(!a.is_empty() && a[0] != 0.0, "a[0] must be non-zero");
    let n = b.len().max(a.len());
    // Normalize and zero-pad both coefficient vectors to length n.
    let a0 = a[0];
    let bb: Vec<f64> = (0..n)
        .map(|i| b.get(i).copied().unwrap_or(0.0) / a0)
        .collect();
    let aa: Vec<f64> = (0..n)
        .map(|i| a.get(i).copied().unwrap_or(0.0) / a0)
        .collect();

    let mut z = zi.to_vec();
    assert_eq!(z.len(), n - 1, "zi must have length max(len(a),len(b))-1");
    let mut y = Vec::with_capacity(x.len());
    for &xn in x {
        let yn = bb[0] * xn + z.first().copied().unwrap_or(0.0);
        for i in 0..n.saturating_sub(1) {
            let z_next = if i + 1 < z.len() { z[i + 1] } else { 0.0 };
            z[i] = bb[i + 1] * xn + z_next - aa[i + 1] * yn;
        }
        y.push(yn);
    }
    (y, z)
}

/// Steady-state initial conditions for a unit step input, as MATLAB's
/// `filtfilt` computes them to suppress edge transients.
fn filtfilt_zi(b: &[f64], a: &[f64]) -> Vec<f64> {
    let n = b.len().max(a.len());
    if n < 2 {
        return Vec::new();
    }
    let a0 = a[0];
    let bb: Vec<f64> = (0..n)
        .map(|i| b.get(i).copied().unwrap_or(0.0) / a0)
        .collect();
    let aa: Vec<f64> = (0..n)
        .map(|i| a.get(i).copied().unwrap_or(0.0) / a0)
        .collect();
    let m = n - 1;
    // M = I − K, where K has first column −a[1..] and an identity block
    // shifted right by one on its first m−1 rows.
    let mut mat = vec![0.0; m * m];
    for i in 0..m {
        mat[i * m + i] += 1.0;
        mat[i * m] += aa[i + 1];
        if i + 1 < m {
            mat[i * m + i + 1] -= 1.0;
        }
    }
    let rhs: Vec<f64> = (0..m).map(|i| bb[i + 1] - bb[0] * aa[i + 1]).collect();
    solve(&mat, &rhs, m).unwrap_or_else(|| vec![0.0; m])
}

/// Zero-phase forward-backward filtering (MATLAB `filtfilt`).
///
/// The input is extended at both ends with odd-reflected samples of
/// length `3·(order−1)`, filtered forward and backward with
/// transient-minimizing initial conditions, and trimmed back. The result
/// has zero phase distortion and the squared magnitude response of the
/// single-pass filter.
///
/// # Panics
/// Panics when `x` is shorter than `3·(max(len(a), len(b)) − 1) + 1`,
/// matching MATLAB's input-length requirement.
pub fn filtfilt(b: &[f64], a: &[f64], x: &[f64]) -> Vec<f64> {
    let nfilt = b.len().max(a.len());
    let nfact = 3 * (nfilt.saturating_sub(1));
    assert!(
        x.len() > nfact,
        "filtfilt input must be longer than 3*(order) = {nfact}, got {}",
        x.len()
    );
    if nfact == 0 {
        // Pure gain; forward-backward is just gain² (b[0]/a[0])².
        let g = b[0] / a[0];
        return x.iter().map(|&v| v * g * g).collect();
    }

    // Odd reflection padding.
    let first = x[0];
    let last = x[x.len() - 1];
    let mut ext = Vec::with_capacity(x.len() + 2 * nfact);
    for i in (1..=nfact).rev() {
        ext.push(2.0 * first - x[i]);
    }
    ext.extend_from_slice(x);
    for i in 1..=nfact {
        ext.push(2.0 * last - x[x.len() - 1 - i]);
    }

    let zi = filtfilt_zi(b, a);

    // Forward pass.
    let zi_f: Vec<f64> = zi.iter().map(|&z| z * ext[0]).collect();
    let (mut y, _) = lfilter_zi(b, a, &ext, &zi_f);
    // Backward pass.
    y.reverse();
    let zi_b: Vec<f64> = zi.iter().map(|&z| z * y[0]).collect();
    let (mut y, _) = lfilter_zi(b, a, &y, &zi_b);
    y.reverse();

    y[nfact..nfact + x.len()].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::butter::{butter, FilterBand};

    #[test]
    fn lfilter_fir_is_convolution() {
        let b = [0.5, 0.25, 0.25];
        let a = [1.0];
        let x = [1.0, 0.0, 0.0, 0.0, 2.0];
        let y = lfilter(&b, &a, &x);
        assert_eq!(y, vec![0.5, 0.25, 0.25, 0.0, 1.0]);
    }

    #[test]
    fn lfilter_normalizes_by_a0() {
        let y1 = lfilter(&[1.0], &[2.0], &[4.0, 8.0]);
        assert_eq!(y1, vec![2.0, 4.0]);
    }

    #[test]
    fn lfilter_single_pole_impulse_response() {
        // y[n] = x[n] + 0.5 y[n−1]  →  impulse response 0.5^n
        let b = [1.0];
        let a = [1.0, -0.5];
        let mut x = vec![0.0; 8];
        x[0] = 1.0;
        let y = lfilter(&b, &a, &x);
        for (n, &v) in y.iter().enumerate() {
            assert!((v - 0.5f64.powi(n as i32)).abs() < 1e-12);
        }
    }

    #[test]
    fn lfilter_state_carries_across_chunks() {
        let b = [0.2, 0.3];
        let a = [1.0, -0.4];
        let x: Vec<f64> = (0..50).map(|i| ((i as f64) * 0.3).sin()).collect();
        let whole = lfilter(&b, &a, &x);
        let (y1, z) = lfilter_zi(&b, &a, &x[..20], &[0.0]);
        let (y2, _) = lfilter_zi(&b, &a, &x[20..], &z);
        let stitched: Vec<f64> = y1.into_iter().chain(y2).collect();
        for (a, b) in whole.iter().zip(&stitched) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn filtfilt_preserves_dc() {
        let (b, a) = butter(4, FilterBand::Lowpass(0.3));
        let x = vec![2.5; 200];
        let y = filtfilt(&b, &a, &x);
        for &v in &y {
            assert!((v - 2.5).abs() < 1e-6, "DC distorted: {v}");
        }
    }

    #[test]
    fn filtfilt_zero_phase_on_passband_tone() {
        // A slow sine passed through a lowpass must come out unshifted.
        let n = 500;
        let x: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * 0.02 * i as f64).sin())
            .collect();
        let (b, a) = butter(4, FilterBand::Lowpass(0.2));
        let y = filtfilt(&b, &a, &x);
        // Compare against the input directly (no lag): the peak of the
        // cross-correlation should be at zero lag.
        let mut best_lag = 0isize;
        let mut best = f64::MIN;
        for lag in -5isize..=5 {
            let mut acc = 0.0;
            for i in 100..n as isize - 100 {
                acc += x[i as usize] * y[(i + lag) as usize];
            }
            if acc > best {
                best = acc;
                best_lag = lag;
            }
        }
        assert_eq!(best_lag, 0, "filtfilt introduced a phase shift");
        // Amplitude preserved in the passband.
        let amp = y[100..400]
            .iter()
            .cloned()
            .fold(0.0f64, |m, v| m.max(v.abs()));
        assert!((amp - 1.0).abs() < 0.05, "passband amplitude {amp}");
    }

    #[test]
    fn filtfilt_attenuates_stopband() {
        let n = 600;
        // High-frequency tone at 0.9·Nyquist through a 0.2 lowpass.
        let x: Vec<f64> = (0..n)
            .map(|i| (std::f64::consts::PI * 0.9 * i as f64).sin())
            .collect();
        let (b, a) = butter(4, FilterBand::Lowpass(0.2));
        let y = filtfilt(&b, &a, &x);
        let amp = y[100..500]
            .iter()
            .cloned()
            .fold(0.0f64, |m, v| m.max(v.abs()));
        assert!(amp < 1e-3, "stopband leak: {amp}");
    }

    #[test]
    fn filtfilt_pure_gain_path() {
        let y = filtfilt(&[2.0], &[1.0], &[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![4.0, 8.0, 12.0]);
    }

    #[test]
    #[should_panic(expected = "filtfilt input must be longer")]
    fn filtfilt_rejects_short_input() {
        let (b, a) = butter(4, FilterBand::Lowpass(0.3));
        filtfilt(&b, &a, &[1.0; 10]);
    }
}
