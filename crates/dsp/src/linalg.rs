//! A small dense linear solver.
//!
//! `filtfilt` replicates MATLAB's transient-minimizing initial conditions,
//! which require solving one (order−1)×(order−1) linear system per filter
//! — tiny, so plain Gaussian elimination with partial pivoting suffices.

/// Solve `A x = b` in place for square `A` (row-major, `n×n`).
///
/// Returns `None` when the matrix is singular to working precision.
pub fn solve(a: &[f64], b: &[f64], n: usize) -> Option<Vec<f64>> {
    assert_eq!(a.len(), n * n, "matrix shape");
    assert_eq!(b.len(), n, "rhs shape");
    let mut m = a.to_vec();
    let mut x = b.to_vec();

    for col in 0..n {
        // Partial pivot.
        let pivot_row = (col..n)
            .max_by(|&i, &j| {
                m[i * n + col]
                    .abs()
                    .partial_cmp(&m[j * n + col].abs())
                    .expect("no NaN pivots")
            })
            .expect("non-empty range");
        let pivot = m[pivot_row * n + col];
        if pivot.abs() < 1e-300 {
            return None;
        }
        if pivot_row != col {
            for k in 0..n {
                m.swap(col * n + k, pivot_row * n + k);
            }
            x.swap(col, pivot_row);
        }
        // Eliminate below.
        for row in col + 1..n {
            let factor = m[row * n + col] / m[col * n + col];
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                m[row * n + k] -= factor * m[col * n + k];
            }
            x[row] -= factor * x[col];
        }
    }
    // Back substitution.
    for col in (0..n).rev() {
        let mut acc = x[col];
        for k in col + 1..n {
            acc -= m[col * n + k] * x[k];
        }
        x[col] = acc / m[col * n + col];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_system() {
        let a = [1.0, 0.0, 0.0, 1.0];
        let b = [3.0, -4.0];
        assert_eq!(solve(&a, &b, 2).unwrap(), vec![3.0, -4.0]);
    }

    #[test]
    fn known_2x2() {
        // 2x + y = 5; x − y = 1  →  x = 2, y = 1
        let a = [2.0, 1.0, 1.0, -1.0];
        let b = [5.0, 1.0];
        let x = solve(&a, &b, 2).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn requires_pivoting() {
        // Leading zero forces a row swap.
        let a = [0.0, 1.0, 1.0, 0.0];
        let b = [7.0, 9.0];
        let x = solve(&a, &b, 2).unwrap();
        assert!((x[0] - 9.0).abs() < 1e-12);
        assert!((x[1] - 7.0).abs() < 1e-12);
    }

    #[test]
    fn singular_detected() {
        let a = [1.0, 2.0, 2.0, 4.0];
        let b = [1.0, 2.0];
        assert!(solve(&a, &b, 2).is_none());
    }

    #[test]
    fn residual_small_on_random_system() {
        // Deterministic pseudo-random 5×5.
        let n = 5;
        let mut seed = 42u64;
        let mut rng = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let a: Vec<f64> = (0..n * n).map(|_| rng()).collect();
        let b: Vec<f64> = (0..n).map(|_| rng()).collect();
        let x = solve(&a, &b, n).unwrap();
        for row in 0..n {
            let mut acc = 0.0;
            for col in 0..n {
                acc += a[row * n + col] * x[col];
            }
            assert!((acc - b[row]).abs() < 1e-9);
        }
    }
}
