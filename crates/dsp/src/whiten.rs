//! Spectral whitening — flattening the amplitude spectrum inside a band
//! while keeping phase, the frequency-domain normalization step of
//! ambient-noise interferometry (it stops monochromatic sources like
//! the paper's "persistent vibrating" installation from dominating the
//! noise correlations).

use crate::complex::Complex;
use crate::fft::{fft_real, ifft};

/// Whiten `x` between normalized frequencies `f_lo..f_hi` (fractions of
/// Nyquist, `0..1`): unit amplitude with original phase inside the
/// band, smoothly tapered to zero over `taper` of normalized frequency
/// outside it.
///
/// # Panics
/// Panics unless `0 ≤ f_lo < f_hi ≤ 1`.
pub fn whiten(x: &[f64], f_lo: f64, f_hi: f64, taper: f64) -> Vec<f64> {
    assert!(
        (0.0..1.0).contains(&f_lo) && f_lo < f_hi && f_hi <= 1.0,
        "band must satisfy 0 <= lo < hi <= 1, got {f_lo}..{f_hi}"
    );
    let n = x.len();
    if n == 0 {
        return Vec::new();
    }
    let mut spec = fft_real(x);
    // Water level: bins far below the spectral peak are numerical noise
    // with arbitrary phase; normalizing them to unit amplitude would
    // inject garbage. Divide by max(|S|, ε·max|S|) instead.
    let max_mag = spec.iter().map(|s| s.abs()).fold(0.0f64, f64::max);
    let floor = 1e-8 * max_mag;
    let nyquist = n as f64 / 2.0;
    for (k, s) in spec.iter_mut().enumerate() {
        // Frequency of bin k as a fraction of Nyquist (mirrored).
        let freq_bins = if k <= n / 2 { k as f64 } else { (n - k) as f64 };
        let f = freq_bins / nyquist;
        let weight = band_weight(f, f_lo, f_hi, taper);
        let mag = s.abs();
        *s = if mag > 0.0 && weight > 0.0 {
            s.scale(weight / mag.max(floor))
        } else {
            Complex::ZERO
        };
    }
    ifft(&spec).iter().map(|z| z.re).collect()
}

/// Cosine-tapered band weight: 1 inside `[lo, hi]`, 0 outside
/// `[lo − taper, hi + taper]`.
fn band_weight(f: f64, lo: f64, hi: f64, taper: f64) -> f64 {
    if f >= lo && f <= hi {
        1.0
    } else if taper > 0.0 && f >= lo - taper && f < lo {
        0.5 * (1.0 + (std::f64::consts::PI * (f - lo) / taper).cos())
    } else if taper > 0.0 && f > hi && f <= hi + taper {
        0.5 * (1.0 + (std::f64::consts::PI * (f - hi) / taper).cos())
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::fft_real;

    /// Power in bin k of the spectrum of `x`.
    fn bin_power(x: &[f64], k: usize) -> f64 {
        fft_real(x)[k].norm_sqr()
    }

    #[test]
    fn in_band_spectrum_is_flat_after_whitening() {
        // Two tones with a 100x amplitude difference, both in band:
        // after whitening their bins carry equal power.
        let n = 512;
        let x: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64;
                100.0 * (2.0 * std::f64::consts::PI * 32.0 * t / n as f64).sin()
                    + 1.0 * (2.0 * std::f64::consts::PI * 96.0 * t / n as f64).sin()
            })
            .collect();
        let w = whiten(&x, 0.05, 0.6, 0.02);
        let p32 = bin_power(&w, 32);
        let p96 = bin_power(&w, 96);
        assert!(
            (p32 / p96 - 1.0).abs() < 1e-6,
            "whitened powers differ: {p32} vs {p96}"
        );
    }

    #[test]
    fn out_of_band_energy_removed() {
        let n = 512usize;
        // Tone exactly on bin 230 (≈0.9 Nyquist), band 0.05..0.5.
        let x: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * 230.0 * i as f64 / n as f64).sin())
            .collect();
        let w = whiten(&x, 0.05, 0.5, 0.02);
        let energy: f64 = w.iter().map(|v| v * v).sum();
        assert!(energy < 1e-9, "stopband energy {energy}");
    }

    #[test]
    fn phase_is_preserved() {
        // A delayed in-band tone: whitening must not move its phase —
        // the cross-correlation peak of whitened vs raw stays at 0 lag.
        let n = 512;
        let x: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * 40.0 * i as f64 / n as f64 + 0.9).sin())
            .collect();
        let w = whiten(&x, 0.05, 0.6, 0.02);
        let r = crate::correlate::xcorr_fft(&x, &w, crate::correlate::CorrMode::Full);
        let peak = r
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .expect("nonempty")
            .0 as isize
            - (n as isize - 1);
        assert_eq!(peak, 0, "whitening shifted the signal");
    }

    #[test]
    fn output_is_real_valued_and_same_length() {
        let x: Vec<f64> = (0..300).map(|i| ((i * i) as f64).sin()).collect();
        let w = whiten(&x, 0.1, 0.4, 0.05);
        assert_eq!(w.len(), 300);
        assert!(w.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn taper_weights_are_monotone() {
        let seq: Vec<f64> = (0..20)
            .map(|i| band_weight(0.1 - 0.05 + i as f64 * 0.0025, 0.1, 0.4, 0.05))
            .collect();
        for w in seq.windows(2) {
            assert!(w[1] >= w[0] - 1e-12, "taper not monotone: {seq:?}");
        }
        assert_eq!(band_weight(0.25, 0.1, 0.4, 0.05), 1.0);
        assert_eq!(band_weight(0.9, 0.1, 0.4, 0.05), 0.0);
    }

    #[test]
    #[should_panic(expected = "band must satisfy")]
    fn invalid_band_rejected() {
        whiten(&[1.0; 32], 0.5, 0.2, 0.01);
    }

    #[test]
    fn empty_input() {
        assert!(whiten(&[], 0.1, 0.5, 0.02).is_empty());
    }
}
