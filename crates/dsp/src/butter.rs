//! Butterworth IIR filter design — the paper's `Das_butter(n, fc)`.
//!
//! Classic design chain, matching MATLAB/scipy semantics:
//! analog lowpass prototype → frequency transform (lp/hp/bp) → bilinear
//! transform → transfer-function coefficients `(b, a)`.
//! Cutoffs are normalized to the Nyquist frequency (range `0..1`), as in
//! MATLAB's `butter(n, Wn)`.

use crate::complex::{poly_from_roots, Complex};

/// Filter band specification with normalized cutoff(s) in `(0, 1)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FilterBand {
    /// Keep frequencies below the cutoff.
    Lowpass(f64),
    /// Keep frequencies above the cutoff.
    Highpass(f64),
    /// Keep frequencies between `(low, high)`.
    Bandpass(f64, f64),
}

/// Zeros, poles, gain.
#[derive(Debug, Clone)]
struct Zpk {
    z: Vec<Complex>,
    p: Vec<Complex>,
    k: f64,
}

/// Analog Butterworth lowpass prototype of order `n`: poles evenly spaced
/// on the left half of the unit circle, unit gain, no zeros.
fn prototype(n: usize) -> Zpk {
    let p: Vec<Complex> = (0..n)
        .map(|k| {
            let theta = std::f64::consts::PI * (2.0 * k as f64 + n as f64 + 1.0) / (2.0 * n as f64);
            Complex::cis(theta)
        })
        .collect();
    Zpk {
        z: Vec::new(),
        p,
        k: 1.0,
    }
}

/// Lowpass prototype → lowpass at analog frequency `wo`.
fn lp2lp(zpk: Zpk, wo: f64) -> Zpk {
    let degree = zpk.p.len() - zpk.z.len();
    Zpk {
        z: zpk.z.into_iter().map(|z| z.scale(wo)).collect(),
        p: zpk.p.into_iter().map(|p| p.scale(wo)).collect(),
        k: zpk.k * wo.powi(degree as i32),
    }
}

/// Lowpass prototype → highpass at analog frequency `wo`.
fn lp2hp(zpk: Zpk, wo: f64) -> Zpk {
    let degree = zpk.p.len() - zpk.z.len();
    // k' = k · Re(Π(−z) / Π(−p)).
    let prod_z = zpk.z.iter().fold(Complex::ONE, |acc, &z| acc * (-z));
    let prod_p = zpk.p.iter().fold(Complex::ONE, |acc, &p| acc * (-p));
    let k = zpk.k * (prod_z / prod_p).re;
    let mut z: Vec<Complex> = zpk.z.iter().map(|&zz| Complex::real(wo) / zz).collect();
    z.extend(std::iter::repeat_n(Complex::ZERO, degree));
    let p = zpk.p.iter().map(|&pp| Complex::real(wo) / pp).collect();
    Zpk { z, p, k }
}

/// Lowpass prototype → bandpass with center `wo` and bandwidth `bw`.
fn lp2bp(zpk: Zpk, wo: f64, bw: f64) -> Zpk {
    let degree = zpk.p.len() - zpk.z.len();
    let transform = |roots: &[Complex]| -> Vec<Complex> {
        let mut out = Vec::with_capacity(roots.len() * 2);
        for &r in roots {
            let rs = r.scale(bw / 2.0);
            let disc = (rs * rs - Complex::real(wo * wo)).sqrt();
            out.push(rs + disc);
            out.push(rs - disc);
        }
        out
    };
    let mut z = transform(&zpk.z);
    z.extend(std::iter::repeat_n(Complex::ZERO, degree));
    let p = transform(&zpk.p);
    Zpk {
        z,
        p,
        k: zpk.k * bw.powi(degree as i32),
    }
}

/// Bilinear transform at sample rate `fs` (zeros at infinity → z = −1).
fn bilinear(zpk: Zpk, fs: f64) -> Zpk {
    let fs2 = Complex::real(2.0 * fs);
    let degree = zpk.p.len() - zpk.z.len();
    // Gain correction: k · Re(Π(fs2 − z) / Π(fs2 − p)).
    let prod_z = zpk.z.iter().fold(Complex::ONE, |acc, &z| acc * (fs2 - z));
    let prod_p = zpk.p.iter().fold(Complex::ONE, |acc, &p| acc * (fs2 - p));
    let k = zpk.k * (prod_z / prod_p).re;
    let mut z: Vec<Complex> = zpk.z.iter().map(|&zz| (fs2 + zz) / (fs2 - zz)).collect();
    z.extend(std::iter::repeat_n(Complex::real(-1.0), degree));
    let p = zpk.p.iter().map(|&pp| (fs2 + pp) / (fs2 - pp)).collect();
    Zpk { z, p, k }
}

/// Zeros/poles/gain → transfer-function coefficients `(b, a)`.
fn zpk2tf(zpk: &Zpk) -> (Vec<f64>, Vec<f64>) {
    let b: Vec<f64> = poly_from_roots(&zpk.z)
        .into_iter()
        .map(|c| c.re * zpk.k)
        .collect();
    let a: Vec<f64> = poly_from_roots(&zpk.p).into_iter().map(|c| c.re).collect();
    (b, a)
}

/// Design an order-`n` digital Butterworth filter.
///
/// Returns `(b, a)` coefficient vectors usable with
/// [`crate::filter::lfilter`] / [`crate::filter::filtfilt`]. Cutoffs are
/// fractions of Nyquist, e.g. `Lowpass(0.2)` on 500 Hz data cuts at
/// 50 Hz.
///
/// # Panics
/// Panics when `n == 0` or any cutoff lies outside `(0, 1)` (or
/// `low >= high` for bandpass) — invalid designs, as in MATLAB.
pub fn butter(n: usize, band: FilterBand) -> (Vec<f64>, Vec<f64>) {
    assert!(n >= 1, "filter order must be >= 1");
    let check = |w: f64| {
        assert!(
            w > 0.0 && w < 1.0,
            "normalized cutoff must lie in (0,1), got {w}"
        );
    };
    // Design at the scipy convention fs = 2 (Nyquist = 1).
    let fs = 2.0;
    let warp = |w: f64| 2.0 * fs * (std::f64::consts::PI * w / fs).tan();
    let proto = prototype(n);
    let analog = match band {
        FilterBand::Lowpass(w) => {
            check(w);
            lp2lp(proto, warp(w))
        }
        FilterBand::Highpass(w) => {
            check(w);
            lp2hp(proto, warp(w))
        }
        FilterBand::Bandpass(lo, hi) => {
            check(lo);
            check(hi);
            assert!(lo < hi, "bandpass requires low < high");
            let (w1, w2) = (warp(lo), warp(hi));
            lp2bp(proto, (w1 * w2).sqrt(), w2 - w1)
        }
    };
    let digital = bilinear(analog, fs);
    zpk2tf(&digital)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// |H(e^{jω})| from (b, a) at normalized frequency `w` (×π rad).
    fn mag_response(b: &[f64], a: &[f64], w: f64) -> f64 {
        let z = Complex::cis(-std::f64::consts::PI * w);
        let eval = |c: &[f64]| {
            let mut acc = Complex::ZERO;
            let mut zp = Complex::ONE;
            for &coeff in c {
                acc += zp.scale(coeff);
                zp *= z;
            }
            acc
        };
        (eval(b) / eval(a)).abs()
    }

    #[test]
    fn lowpass_gain_structure() {
        for n in [2usize, 4, 6] {
            let (b, a) = butter(n, FilterBand::Lowpass(0.3));
            assert_eq!(b.len(), n + 1);
            assert_eq!(a.len(), n + 1);
            assert!((mag_response(&b, &a, 0.0) - 1.0).abs() < 1e-9, "DC gain");
            let cut = mag_response(&b, &a, 0.3);
            assert!(
                (cut - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-6,
                "−3 dB at cutoff, got {cut}"
            );
            assert!(mag_response(&b, &a, 0.9) < 0.01, "stopband");
        }
    }

    #[test]
    fn highpass_gain_structure() {
        let (b, a) = butter(4, FilterBand::Highpass(0.4));
        assert!(mag_response(&b, &a, 0.0) < 1e-9, "DC blocked");
        assert!(
            (mag_response(&b, &a, 1.0 - 1e-9) - 1.0).abs() < 1e-6,
            "Nyquist passed"
        );
        let cut = mag_response(&b, &a, 0.4);
        assert!((cut - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-6);
    }

    #[test]
    fn bandpass_gain_structure() {
        let (b, a) = butter(3, FilterBand::Bandpass(0.2, 0.5));
        // Order doubles for bandpass.
        assert_eq!(a.len(), 7);
        assert!(mag_response(&b, &a, 0.0) < 1e-9);
        assert!(mag_response(&b, &a, 0.99) < 1e-2);
        let lo = mag_response(&b, &a, 0.2);
        let hi = mag_response(&b, &a, 0.5);
        assert!(
            (lo - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-6,
            "low edge {lo}"
        );
        assert!(
            (hi - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-6,
            "high edge {hi}"
        );
        // Interior of the passband near unity.
        let mid = mag_response(&b, &a, 0.33);
        assert!(mid > 0.95, "passband sag: {mid}");
    }

    #[test]
    fn monotonic_rolloff() {
        // Butterworth is maximally flat: response decreases monotonically
        // past the cutoff.
        let (b, a) = butter(5, FilterBand::Lowpass(0.25));
        let mut prev = f64::INFINITY;
        for i in 0..20 {
            let w = 0.25 + 0.7 * i as f64 / 20.0;
            let m = mag_response(&b, &a, w);
            assert!(m <= prev + 1e-12, "non-monotonic at w={w}");
            prev = m;
        }
    }

    #[test]
    fn known_order1_lowpass_coefficients() {
        // butter(1, 0.5) in MATLAB: b = [0.5 0.5], a = [1 0].
        let (b, a) = butter(1, FilterBand::Lowpass(0.5));
        assert!((b[0] - 0.5).abs() < 1e-12);
        assert!((b[1] - 0.5).abs() < 1e-12);
        assert!((a[0] - 1.0).abs() < 1e-12);
        assert!(a[1].abs() < 1e-12);
    }

    #[test]
    fn known_order2_lowpass_coefficients() {
        // MATLAB: [b,a] = butter(2, 0.4)
        // b ≈ [0.20657  0.41314  0.20657], a ≈ [1  -0.36953  0.19582]
        let (b, a) = butter(2, FilterBand::Lowpass(0.4));
        let expect_b = [0.206572083826148, 0.413144167652296, 0.206572083826148];
        let expect_a = [1.0, -0.369527377351241, 0.195815712655833];
        for (x, e) in b.iter().zip(&expect_b) {
            assert!((x - e).abs() < 1e-9, "b: {x} vs {e}");
        }
        for (x, e) in a.iter().zip(&expect_a) {
            assert!((x - e).abs() < 1e-9, "a: {x} vs {e}");
        }
    }

    #[test]
    fn a0_is_always_one() {
        for band in [
            FilterBand::Lowpass(0.1),
            FilterBand::Highpass(0.7),
            FilterBand::Bandpass(0.1, 0.6),
        ] {
            let (_, a) = butter(4, band);
            assert!((a[0] - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "normalized cutoff")]
    fn rejects_cutoff_above_nyquist() {
        butter(2, FilterBand::Lowpass(1.5));
    }

    #[test]
    #[should_panic(expected = "low < high")]
    fn rejects_inverted_band() {
        butter(2, FilterBand::Bandpass(0.6, 0.2));
    }
}
