//! Fast Fourier transforms: iterative radix-2 Cooley–Tukey with a
//! Bluestein (chirp-z) fallback for arbitrary lengths.
//!
//! `Das_fft` / `Das_ifft` in the paper's Table II. DAS windows are often
//! not powers of two (e.g. 30000 samples/minute at 500 Hz), so the
//! arbitrary-length path matters in practice.

use crate::complex::Complex;

/// Smallest power of two ≥ `n`.
pub fn next_pow2(n: usize) -> usize {
    n.next_power_of_two()
}

/// In-place iterative radix-2 Cooley–Tukey. `data.len()` must be a power
/// of two. `inverse` selects the sign of the twiddle exponent; no 1/n
/// scaling is applied here.
fn fft_pow2(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    debug_assert!(n.is_power_of_two());
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            data.swap(i, j);
        }
    }
    // Butterfly passes.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::cis(ang);
        for chunk in data.chunks_mut(len) {
            let mut w = Complex::ONE;
            let half = len / 2;
            for k in 0..half {
                let u = chunk[k];
                let v = chunk[k + half] * w;
                chunk[k] = u + v;
                chunk[k + half] = u - v;
                w *= wlen;
            }
        }
        len <<= 1;
    }
}

/// Bluestein's algorithm: express an arbitrary-length DFT as a
/// convolution, evaluated with power-of-two FFTs.
fn fft_bluestein(input: &[Complex], inverse: bool) -> Vec<Complex> {
    let n = input.len();
    let sign = if inverse { 1.0 } else { -1.0 };
    // Chirp: w_k = exp(sign · iπ k² / n).
    let chirp: Vec<Complex> = (0..n)
        .map(|k| {
            // k² mod 2n computed in u128 to dodge overflow for huge n.
            let k2 = (k as u128 * k as u128) % (2 * n as u128);
            Complex::cis(sign * std::f64::consts::PI * k2 as f64 / n as f64)
        })
        .collect();

    let m = next_pow2(2 * n - 1);
    let mut a = vec![Complex::ZERO; m];
    for k in 0..n {
        a[k] = input[k] * chirp[k];
    }
    let mut b = vec![Complex::ZERO; m];
    b[0] = chirp[0].conj();
    for k in 1..n {
        let c = chirp[k].conj();
        b[k] = c;
        b[m - k] = c;
    }
    fft_pow2(&mut a, false);
    fft_pow2(&mut b, false);
    for (x, y) in a.iter_mut().zip(&b) {
        *x *= *y;
    }
    fft_pow2(&mut a, true);
    let scale = 1.0 / m as f64;
    (0..n).map(|k| a[k].scale(scale) * chirp[k]).collect()
}

/// Forward DFT of arbitrary length (unscaled, like MATLAB `fft`).
pub fn fft(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    if n.is_power_of_two() {
        let mut data = input.to_vec();
        fft_pow2(&mut data, false);
        data
    } else {
        fft_bluestein(input, false)
    }
}

/// Inverse DFT of arbitrary length, scaled by `1/n` (like MATLAB `ifft`).
pub fn ifft(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    let mut out = if n.is_power_of_two() {
        let mut data = input.to_vec();
        fft_pow2(&mut data, true);
        data
    } else {
        fft_bluestein(input, true)
    };
    let scale = 1.0 / n as f64;
    for v in &mut out {
        *v = v.scale(scale);
    }
    out
}

/// Forward DFT of a real signal; returns the full complex spectrum.
pub fn fft_real(input: &[f64]) -> Vec<Complex> {
    let buf: Vec<Complex> = input.iter().map(|&x| Complex::real(x)).collect();
    fft(&buf)
}

/// Inverse DFT returning only real parts — for spectra known to be
/// conjugate-symmetric (e.g. produced from real signals).
pub fn ifft_real(input: &[Complex]) -> Vec<f64> {
    ifft(input).into_iter().map(|z| z.re).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((*x - *y).abs() < tol, "{x:?} != {y:?}");
        }
    }

    /// O(n²) reference DFT.
    fn dft_naive(input: &[Complex]) -> Vec<Complex> {
        let n = input.len();
        (0..n)
            .map(|k| {
                let mut acc = Complex::ZERO;
                for (j, &x) in input.iter().enumerate() {
                    let ang = -2.0 * std::f64::consts::PI * (k * j % n) as f64 / n as f64;
                    acc += x * Complex::cis(ang);
                }
                acc
            })
            .collect()
    }

    fn ramp(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| Complex::new(i as f64 * 0.37 - 1.0, (i as f64 * 0.11).sin()))
            .collect()
    }

    #[test]
    fn matches_naive_dft_pow2() {
        for n in [1usize, 2, 4, 8, 64] {
            let x = ramp(n);
            assert_close(&fft(&x), &dft_naive(&x), 1e-9 * n as f64);
        }
    }

    #[test]
    fn matches_naive_dft_arbitrary() {
        for n in [3usize, 5, 6, 7, 12, 30, 100, 243] {
            let x = ramp(n);
            assert_close(&fft(&x), &dft_naive(&x), 1e-8 * n as f64);
        }
    }

    #[test]
    fn round_trip_identity() {
        for n in [1usize, 2, 7, 16, 30, 101] {
            let x = ramp(n);
            assert_close(&ifft(&fft(&x)), &x, 1e-9 * n as f64);
        }
    }

    #[test]
    fn parseval_energy_conservation() {
        let n = 240;
        let x = ramp(n);
        let spec = fft(&x);
        let time_energy: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let freq_energy: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-8 * time_energy.max(1.0));
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut x = vec![Complex::ZERO; 16];
        x[0] = Complex::ONE;
        for bin in fft(&x) {
            assert!((bin - Complex::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn pure_tone_hits_one_bin() {
        let n = 64;
        let k0 = 5;
        let x: Vec<Complex> = (0..n)
            .map(|j| Complex::cis(2.0 * std::f64::consts::PI * (k0 * j) as f64 / n as f64))
            .collect();
        let spec = fft(&x);
        for (k, bin) in spec.iter().enumerate() {
            if k == k0 {
                assert!((bin.abs() - n as f64).abs() < 1e-9);
            } else {
                assert!(bin.abs() < 1e-8, "leakage at bin {k}");
            }
        }
    }

    #[test]
    fn real_signal_spectrum_is_conjugate_symmetric() {
        let x: Vec<f64> = (0..30).map(|i| (i as f64 * 0.7).cos() + 0.3).collect();
        let spec = fft_real(&x);
        let n = spec.len();
        for k in 1..n {
            let d = spec[k] - spec[n - k].conj();
            assert!(d.abs() < 1e-9);
        }
        // ...and ifft_real recovers the signal.
        let back = ifft_real(&spec);
        for (a, b) in back.iter().zip(&x) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_input() {
        assert!(fft(&[]).is_empty());
        assert!(ifft(&[]).is_empty());
    }

    #[test]
    fn linearity() {
        let n = 21;
        let x = ramp(n);
        let y: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64).cos(), 0.2))
            .collect();
        let sum: Vec<Complex> = x.iter().zip(&y).map(|(&a, &b)| a + b).collect();
        let fx = fft(&x);
        let fy = fft(&y);
        let fsum = fft(&sum);
        for k in 0..n {
            assert!((fsum[k] - (fx[k] + fy[k])).abs() < 1e-8);
        }
    }

    #[test]
    fn next_pow2_values() {
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(2), 2);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(1000), 1024);
    }
}
