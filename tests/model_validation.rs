//! Cost-model validation: where the model and the real implementation
//! overlap (small scale, observable message counts), they must agree —
//! this is what justifies trusting the model's at-scale extrapolations.

use dasgen::{write_minute_files, Scene};
use dassa::prelude::*;
use perfmodel::experiments::{model_fig11_weak, model_fig7, model_fig8, Layout, Workload};
use perfmodel::{Calibration, Machine};

fn small_vca(tag: &str, files: usize) -> Vca {
    let dir = std::env::temp_dir().join(format!("dassa-modelval-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    let scene = Scene::demo(12, 20.0, files as f64 * 60.0, 3);
    write_minute_files(&scene, &dir, "170728224510", files).expect("generate");
    let catalog = FileCatalog::scan(&dir).expect("scan");
    Vca::from_entries(catalog.entries()).expect("vca")
}

#[test]
fn model_and_implementation_agree_on_communication_structure() {
    // The model prices collective-per-file as n broadcasts and
    // communication-avoiding as one alltoallv per rank. The real
    // implementation must produce exactly those counts.
    let n_files = 6usize;
    let ranks = 3usize;
    let vca = small_vca("structure", n_files);

    let (_, coll) =
        minimpi::run_with_stats(ranks, |c| read_collective_per_file(c, &vca).expect("read"));
    assert_eq!(
        coll.bcasts as usize,
        n_files * ranks,
        "n bcasts (counted per rank)"
    );
    assert_eq!(coll.alltoallvs, 0);

    let (_, ca) = minimpi::run_with_stats(ranks, |c| read_comm_avoiding(c, &vca).expect("read"));
    assert_eq!(ca.bcasts, 0);
    assert_eq!(ca.alltoallvs as usize, ranks, "one alltoallv per rank");
}

#[test]
fn model_byte_volumes_match_measurement() {
    // Collective-per-file must move ~(p−1)/p · n · file_bytes more data
    // than communication-avoiding moves in total; verify the measured
    // ratio against the model's closed form.
    let n_files = 8usize;
    let ranks = 4usize;
    let vca = small_vca("volume", n_files);
    let file_bytes = (vca.channels() * vca.samples_of(0) * 4) as f64;

    let (_, coll) =
        minimpi::run_with_stats(ranks, |c| read_collective_per_file(c, &vca).expect("read"));
    let (_, ca) = minimpi::run_with_stats(ranks, |c| read_comm_avoiding(c, &vca).expect("read"));

    // Binomial bcast of a file sends p−1 copies in total.
    let model_coll = n_files as f64 * (ranks as f64 - 1.0) * file_bytes;
    let measured_coll = coll.p2p_bytes as f64;
    assert!(
        (measured_coll - model_coll).abs() / model_coll < 0.01,
        "collective bytes: measured {measured_coll}, model {model_coll}"
    );

    // Comm-avoiding ships each byte at most once (minus the diagonal).
    let total_bytes = n_files as f64 * file_bytes;
    assert!(
        ca.p2p_bytes as f64 <= total_bytes,
        "comm-avoiding moved more than the dataset: {} > {total_bytes}",
        ca.p2p_bytes
    );
    let expected_ca = total_bytes * (ranks as f64 - 1.0) / ranks as f64;
    assert!(
        (ca.p2p_bytes as f64 - expected_ca).abs() / expected_ca < 0.35,
        "comm-avoiding bytes: measured {}, expected ≈{expected_ca}",
        ca.p2p_bytes
    );
}

#[test]
fn modeled_orderings_match_measured_orderings() {
    // Every qualitative claim the model makes at Cori scale must also
    // hold in the measured local system where testable.
    let m = Machine::cori_haswell();
    let cal = Calibration::default();
    let w = Workload::paper();

    // 1. Comm-avoiding beats collective-per-file (model)…
    let f = model_fig7(&m, 720, 700 << 20, 90, 8);
    assert!(f.comm_avoiding_s < f.collective_per_file_s);
    // …and in measurement (byte volume as the robust proxy).
    let vca = small_vca("ordering", 6);
    let (_, coll) =
        minimpi::run_with_stats(3, |c| read_collective_per_file(c, &vca).expect("read"));
    let (_, ca) = minimpi::run_with_stats(3, |c| read_comm_avoiding(c, &vca).expect("read"));
    assert!(ca.p2p_bytes < coll.p2p_bytes);

    // 2. Hybrid ≤ pure MPI in read time at any node count (model) —
    //    measured counterpart is the io_requests_per_node accounting.
    for nodes in [91usize, 364, 728] {
        let p = model_fig8(&m, &cal, &w, nodes, Layout::PureMpi { procs_per_node: 16 });
        let h = model_fig8(&m, &cal, &w, nodes, Layout::Hybrid { threads: 16 });
        assert!(h.read_s <= p.read_s + 1e-12, "nodes={nodes}");
    }
    use dassa::prelude::*;
    assert!(
        Haee::builder().threads(16).build().io_requests_per_node()
            < Haee::builder()
                .ranks(16)
                .threads(1)
                .build()
                .io_requests_per_node()
    );

    // 3. Weak-scaling I/O efficiency decays monotonically.
    let pts = model_fig11_weak(&m, &cal, 171 << 20, &[91, 182, 364, 728, 1456], 8);
    for w2 in pts.windows(2) {
        assert!(w2[1].io_eff <= w2[0].io_eff + 1e-9);
    }
}

#[test]
fn calibration_rates_scale_the_model_linearly() {
    // Doubling the measured compute rate must halve modeled compute time
    // and leave I/O untouched — the calibration seam is clean.
    let m = Machine::cori_haswell();
    let w = Workload::paper();
    let cal1 = Calibration::default();
    let cal2 = Calibration {
        compute_bytes_per_s_per_core: cal1.compute_bytes_per_s_per_core * 2.0,
        ..cal1
    };
    let a = model_fig8(&m, &cal1, &w, 182, Layout::Hybrid { threads: 16 });
    let b = model_fig8(&m, &cal2, &w, 182, Layout::Hybrid { threads: 16 });
    assert!((a.compute_s / b.compute_s - 2.0).abs() < 1e-9);
    assert_eq!(a.read_s, b.read_s);
}
