//! The mlab baseline and the native DASSA pipeline must agree
//! numerically: Figure 9's comparison is only meaningful if both sides
//! compute the same thing (they share the DasLib kernels underneath).

use arrayudf::Array2;
use dassa::prelude::*;
use mlab::{Interp, Value};

fn test_data(channels: usize, samples: usize) -> Array2<f64> {
    Array2::from_fn(channels, samples, |c, t| {
        let tt = t as f64;
        (0.04 * (tt - c as f64 * 3.0)).sin() + 0.3 * (0.017 * tt + c as f64 * 0.5).cos()
    })
}

#[test]
fn interferometry_pipeline_matches_native_bitwise_tolerance() {
    let data = test_data(10, 800);
    let params = InterferometryParams {
        filter_order: 4,
        band: (0.01, 0.4),
        resample_p: 1,
        resample_q: 2,
        master_channel: 0,
    };
    let native =
        interferometry(&data, &params, &Haee::builder().threads(2).build()).expect("native");

    let mut interp = Interp::new();
    interp.set(
        "data",
        Value::Matrix {
            rows: data.rows(),
            cols: data.cols(),
            data: data.as_slice().to_vec(),
        },
    );
    interp.set("nch", Value::Num(data.rows() as f64));
    interp
        .run(
            "[b, a] = butter(4, [0.01 0.4]);
             m0 = detrend(data(1, :));
             m1 = filtfilt(b, a, m0);
             m2 = resample(m1, 1, 2);
             mfft = fft(m2);
             scores = zeros(1, nch);
             for c = 1:nch
               w0 = detrend(data(c, :));
               w1 = filtfilt(b, a, w0);
               w2 = resample(w1, 1, 2);
               wfft = fft(w2);
               scores(c) = abscorr(wfft, mfft);
             end",
        )
        .expect("script");
    let scores = match interp.get("scores").expect("scores") {
        Value::Matrix { data, .. } => data.clone(),
        other => panic!("unexpected value {other:?}"),
    };
    assert_eq!(scores.len(), native.len());
    for (ch, (m, n)) in scores.iter().zip(&native).enumerate() {
        assert!((m - n).abs() < 1e-9, "channel {ch}: mlab {m} vs native {n}");
    }
}

#[test]
fn individual_kernels_match_through_the_interpreter() {
    // Each Table II operation, called from script vs called natively.
    let x: Vec<f64> = (0..256)
        .map(|i| (i as f64 * 0.1).sin() + i as f64 * 0.01)
        .collect();
    let mut interp = Interp::new();
    interp.set("x", Value::row(x.clone()));
    interp
        .run(
            "d = detrend(x);
             [b, a] = butter(3, 0.35);
             f = filtfilt(b, a, x);
             r = resample(x, 2, 3);
             s = abs(fft(x));
             c = abscorr(x, d);",
        )
        .expect("kernel script");

    let get = |name: &str| -> Vec<f64> {
        match interp.get(name).expect(name) {
            Value::Matrix { data, .. } => data.clone(),
            Value::Num(v) => vec![*v],
            other => panic!("{other:?}"),
        }
    };

    let close = |a: &[f64], b: &[f64]| {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
    };

    close(&get("d"), &dsp::detrend(&x));
    let (bb, aa) = dsp::butter(3, dsp::FilterBand::Lowpass(0.35));
    close(&get("f"), &dsp::filtfilt(&bb, &aa, &x));
    close(&get("r"), &dsp::resample(&x, 2, 3));
    let spec: Vec<f64> = dsp::fft_real(&x).iter().map(|z| z.abs()).collect();
    close(&get("s"), &spec);
    close(&get("c"), &[dsp::abscorr(&x, &dsp::detrend(&x))]);
}

#[test]
fn interpreter_overhead_exists_but_results_do_not_drift() {
    // Run the same reduction 50 times through the interpreter; the
    // result must be identical every time (determinism of the baseline).
    let mut first = None;
    for _ in 0..50 {
        let mut i = Interp::new();
        i.run("v = 1:1000; s = sum(v .* v);").expect("run");
        let s = i.get_scalar("s").expect("scalar");
        match first {
            None => first = Some(s),
            Some(f) => assert_eq!(f, s),
        }
    }
    assert_eq!(first, Some(333_833_500.0));
}
