//! Seeded chaos suite for the `faultline` fault-injection subsystem.
//!
//! Every test here derives its faults from a [`FaultPlan`] seed, so the
//! whole suite is deterministic: the same seed produces byte-identical
//! arrays, identical quarantine reports, and identical retry counters on
//! every run. The seed matrix is controlled by `DASSA_CHAOS_SEEDS`
//! (a count, default 4); CI runs it at 8.
//!
//! Invariants checked, per seed:
//! 1. same seed ⇒ byte-identical outcome (arrays, reports, counters);
//! 2. both §IV-B read strategies return identical arrays and identical
//!    quarantine sets under the same plan;
//! 3. no fault schedule yields silently wrong data — every span either
//!    matches the clean read or is zero-filled *and* reported;
//! 4. every retry/quarantine event increments exactly one obs metric;
//! 5. a dead rank turns collectives into `Err` after bounded retries,
//!    never a hang or a panic.

use dasgen::{write_minute_files, Scene};
use dassa::prelude::*;
use faultline::{site, FaultPlan};
use minimpi::{run_chaos, run_chaos_in_registry, CommError, RetryPolicy};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, OnceLock};

/// Route every structured log record the daemons emit during this
/// suite into a shared buffer instead of stderr: the chaos output
/// stays clean (the CI digest diff sees only digest lines), and tests
/// can still assert that operator-facing events were logged. Installed
/// once per process, never uncaptured — tests run concurrently and a
/// mid-flight uncapture would race.
fn captured_logs() -> Arc<Mutex<Vec<obs::LogRecord>>> {
    static SINK: OnceLock<Arc<Mutex<Vec<obs::LogRecord>>>> = OnceLock::new();
    Arc::clone(SINK.get_or_init(|| {
        let buffer = Arc::new(Mutex::new(Vec::new()));
        obs::logger().capture(Arc::clone(&buffer));
        buffer
    }))
}

const RANKS: usize = 3;
const FILES: usize = 6;
const CHANNELS: usize = 5;

/// The deterministic seed matrix: `DASSA_CHAOS_SEEDS` picks how many
/// seeds to sweep (CI uses 8), the seeds themselves are fixed.
fn seed_matrix() -> Vec<u64> {
    let n: u64 = std::env::var("DASSA_CHAOS_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    (0..n).map(|i| 0xDA55A + i * 7919).collect()
}

/// A plan exercising every layer: permanent I/O errors and real
/// bit-rot (both file-name keyed), read latency, transient per-file
/// failures, and comm-level message drops and delays.
fn chaos_plan(seed: u64) -> Arc<FaultPlan> {
    Arc::new(
        FaultPlan::new(seed)
            .with(site::DASF_READ_ERR, 0.25)
            .with(site::DASF_READ_CORRUPT, 0.25)
            .with(site::DASF_READ_LATENCY, 0.3)
            .with(site::PAR_READ_FILE, 0.4)
            .with(site::MINIMPI_RECV_DROP, 0.2)
            .with(site::MINIMPI_RECV_DELAY, 0.2),
    )
}

/// Does a file-name-keyed site fire for member `fi` of `vca`?
fn fires_for_member(vca: &Vca, plan: &FaultPlan, s: &str, fi: usize) -> bool {
    let name = vca.entries()[fi].path.file_name().expect("member name");
    plan.fires(s, faultline::key_of(name.as_encoded_bytes()))
}

fn dataset(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dassa-chaos-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    let scene = Scene::demo(CHANNELS, 4.0, 360.0, 3);
    write_minute_files(&scene, &dir, "170728224510", FILES).expect("generate");
    dir
}

fn load_vca(dir: &PathBuf) -> Vca {
    let catalog = FileCatalog::scan(dir).expect("scan");
    Vca::from_entries(catalog.entries()).expect("vca")
}

/// One resilient parallel read under `plan`; returns the reassembled
/// full array and the (rank-0) report, after asserting all ranks agree.
fn chaos_read(
    vca: &Vca,
    plan: &Arc<FaultPlan>,
    strategy: ReadStrategy,
) -> (arrayudf::Array2<f32>, par_read::ReadReport) {
    let (results, _) = run_chaos(RANKS, Arc::clone(plan), RetryPolicy::default(), |comm| {
        read_vca_resilient(comm, vca, strategy).expect("resilient read")
    });
    let (blocks, reports): (Vec<_>, Vec<_>) = results.into_iter().unzip();
    for r in &reports[1..] {
        assert_eq!(r, &reports[0], "all ranks must report identically");
    }
    (arrayudf::Array2::vstack(&blocks), reports[0].clone())
}

/// The quarantine set `plan` implies for `vca`, computed straight from
/// the plan (file-name keyed permanent errors and bit-rot), independent
/// of the reader under test.
fn expected_quarantine(vca: &Vca, plan: &FaultPlan) -> Vec<usize> {
    (0..vca.n_files())
        .filter(|&fi| {
            fires_for_member(vca, plan, site::DASF_READ_ERR, fi)
                || fires_for_member(vca, plan, site::DASF_READ_CORRUPT, fi)
        })
        .collect()
}

/// The per-file transient failure count `plan` implies (capped below
/// the retry budget, keyed by file index).
fn expected_transient(plan: &FaultPlan, fi: usize) -> u64 {
    if plan.fires(site::PAR_READ_FILE, fi as u64) {
        1 + plan.value_below(site::PAR_READ_FILE, fi as u64, MAX_READ_ATTEMPTS as u64 - 1)
    } else {
        0
    }
}

/// The world-total checksum mismatches `plan` implies: a rotten file
/// reports one mismatch per attempt that reaches the actual read —
/// unless `dasf.read.err` also fires, which fails the read before any
/// bytes (and hence any checksums) are touched.
fn expected_mismatches(vca: &Vca, plan: &FaultPlan) -> u64 {
    (0..vca.n_files())
        .map(|fi| {
            if fires_for_member(vca, plan, site::DASF_READ_CORRUPT, fi)
                && !fires_for_member(vca, plan, site::DASF_READ_ERR, fi)
            {
                MAX_READ_ATTEMPTS as u64 - expected_transient(plan, fi)
            } else {
                0
            }
        })
        .sum()
}

/// The world-total read retries `plan` implies: permanently bad files
/// burn the whole budget; transiently faulty files repeat
/// `1 + value_below(..)` times; both at once still cap at the budget.
fn expected_io_retries(vca: &Vca, plan: &FaultPlan, quarantined: &[usize]) -> u64 {
    (0..vca.n_files())
        .map(|fi| {
            if quarantined.contains(&fi) {
                return (MAX_READ_ATTEMPTS - 1) as u64;
            }
            expected_transient(plan, fi)
        })
        .sum()
}

#[test]
fn same_seed_is_byte_identical() {
    let dir = dataset("determinism");
    let vca = load_vca(&dir);
    for seed in seed_matrix() {
        let plan = chaos_plan(seed);
        for strategy in [ReadStrategy::CollectivePerFile, ReadStrategy::CommAvoiding] {
            let (a1, r1) = chaos_read(&vca, &plan, strategy);
            let (a2, r2) = chaos_read(&vca, &plan, strategy);
            assert_eq!(a1, a2, "seed {seed} {strategy:?}: arrays must be identical");
            assert_eq!(
                r1, r2,
                "seed {seed} {strategy:?}: reports must be identical"
            );
        }
    }
}

#[test]
fn strategies_agree_under_every_seed() {
    let dir = dataset("agreement");
    let vca = load_vca(&dir);
    for seed in seed_matrix() {
        let plan = chaos_plan(seed);
        let (coll, coll_rep) = chaos_read(&vca, &plan, ReadStrategy::CollectivePerFile);
        let (ca, ca_rep) = chaos_read(&vca, &plan, ReadStrategy::CommAvoiding);
        assert_eq!(
            coll, ca,
            "seed {seed}: strategies must return the same bytes"
        );
        assert_eq!(
            coll_rep, ca_rep,
            "seed {seed}: strategies must quarantine the same files"
        );
    }
}

#[test]
fn no_fault_schedule_yields_silently_wrong_data() {
    let dir = dataset("no-silent-corruption");
    let vca = load_vca(&dir);
    let clean = vca.read_all_f32().expect("clean serial read");
    for seed in seed_matrix() {
        let plan = chaos_plan(seed);
        let (full, report) = chaos_read(&vca, &plan, ReadStrategy::CommAvoiding);
        for fi in 0..vca.n_files() {
            let quarantined = report.quarantined.contains(&fi);
            let t0 = vca.time_offset_of(fi) as usize;
            let cols = vca.samples_of(fi) as usize;
            for ch in 0..CHANNELS {
                for c in t0..t0 + cols {
                    let got = full.get(ch, c);
                    if quarantined {
                        assert_eq!(got, 0.0, "seed {seed}: quarantined span must be zero");
                    } else {
                        assert_eq!(
                            got,
                            clean.get(ch, c),
                            "seed {seed} file {fi}: surviving span must be exact"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn quarantine_and_retries_match_the_plan_exactly() {
    let dir = dataset("counter-exactness");
    let vca = load_vca(&dir);
    for seed in seed_matrix() {
        let plan = chaos_plan(seed);
        let expected_q = expected_quarantine(&vca, &plan);
        let expected_r = expected_io_retries(&vca, &plan, &expected_q);
        let registry = Arc::new(obs::Registry::new());
        let (results, stats) = run_chaos_in_registry(
            RANKS,
            Arc::clone(&registry),
            Arc::clone(&plan),
            RetryPolicy::default(),
            |comm| read_vca_resilient(comm, &vca, ReadStrategy::CommAvoiding).expect("read"),
        );
        let report = &results[0].1;
        assert_eq!(report.quarantined, expected_q, "seed {seed}");
        assert_eq!(report.io_retries, expected_r, "seed {seed}");
        assert_eq!(
            report.checksum_mismatches,
            expected_mismatches(&vca, &plan),
            "seed {seed}: mismatch count must be derivable from the plan"
        );

        // Every retry/quarantine event increments exactly one metric:
        // the world-registry counters equal the report, with no leakage
        // between the I/O metrics and `minimpi.retries`.
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter(par_read::metric_names::QUARANTINED),
            expected_q.len() as u64,
            "seed {seed}: one increment per quarantined file"
        );
        assert_eq!(
            snap.counter(par_read::metric_names::RETRIES),
            expected_r,
            "seed {seed}: one increment per repeated read attempt"
        );
        // Comm retries come only from injected message drops, which are
        // deterministic too — re-running the same seed reproduces them.
        let (_, stats2) = run_chaos_in_registry(
            RANKS,
            Arc::new(obs::Registry::new()),
            Arc::clone(&plan),
            RetryPolicy::default(),
            |comm| read_vca_resilient(comm, &vca, ReadStrategy::CommAvoiding).expect("read"),
        );
        assert_eq!(
            stats.retries, stats2.retries,
            "seed {seed}: comm retry count must be reproducible"
        );
    }
}

#[test]
fn io_faults_never_touch_comm_counters_and_vice_versa() {
    let dir = dataset("no-double-count");
    let vca = load_vca(&dir);
    // Only I/O faults: comm retries must stay zero.
    let io_plan = Arc::new(
        FaultPlan::new(11)
            .with(site::DASF_READ_ERR, 0.5)
            .with(site::PAR_READ_FILE, 0.5),
    );
    let registry = Arc::new(obs::Registry::new());
    let (_, stats) = run_chaos_in_registry(
        RANKS,
        Arc::clone(&registry),
        Arc::clone(&io_plan),
        RetryPolicy::default(),
        |comm| read_vca_resilient(comm, &vca, ReadStrategy::CommAvoiding).expect("read"),
    );
    assert_eq!(
        stats.retries, 0,
        "I/O faults must not count as comm retries"
    );

    // Only comm faults: the read must be clean and exact.
    let comm_plan = Arc::new(FaultPlan::new(11).with(site::MINIMPI_RECV_DROP, 1.0));
    let clean = vca.read_all_f32().expect("clean serial read");
    let registry = Arc::new(obs::Registry::new());
    let (results, stats) = run_chaos_in_registry(
        RANKS,
        Arc::clone(&registry),
        comm_plan,
        RetryPolicy::default(),
        |comm| read_vca_resilient(comm, &vca, ReadStrategy::CollectivePerFile).expect("read"),
    );
    let (blocks, reports): (Vec<_>, Vec<_>) = results.into_iter().unzip();
    assert_eq!(arrayudf::Array2::vstack(&blocks), clean);
    assert!(reports.iter().all(|r| r.is_clean()));
    let snap = registry.snapshot();
    assert_eq!(snap.counter(par_read::metric_names::QUARANTINED), 0);
    assert_eq!(snap.counter(par_read::metric_names::RETRIES), 0);
    assert!(
        stats.retries > 0,
        "dropped messages must count as comm retries"
    );
}

#[test]
fn dead_rank_fails_the_read_with_an_error_not_a_hang() {
    let dir = dataset("dead-rank");
    let vca = load_vca(&dir);
    // Find a seed where, on a 2-rank world, rank 1 is dead and rank 0
    // survives.
    let plan = (0u64..)
        .map(|seed| FaultPlan::new(seed).with(site::MINIMPI_RANK_DEAD, 0.5))
        .find(|p| !p.fires(site::MINIMPI_RANK_DEAD, 0) && p.fires(site::MINIMPI_RANK_DEAD, 1))
        .expect("some seed kills exactly rank 1");
    let (results, _) = run_chaos(
        2,
        Arc::new(plan),
        RetryPolicy::bounded(2, std::time::Duration::from_millis(10)),
        |comm| read_vca_resilient(comm, &vca, ReadStrategy::CollectivePerFile),
    );
    match &results[1] {
        Err(DassaError::Comm(CommError::RankDead(1))) => {}
        other => panic!("dead rank must refuse with RankDead, got {other:?}"),
    }
    match &results[0] {
        Err(DassaError::Comm(CommError::Timeout {
            src: 1,
            attempts: 2,
        })) => {}
        other => panic!("survivor must time out after bounded retries, got {other:?}"),
    }
}

#[test]
fn bitrot_is_attributed_to_exact_files_identically_on_both_strategies() {
    // Satellite: `dasf.read.corrupt` now flips real bytes, and the
    // quarantine report must attribute the resulting checksum
    // mismatches to the exact member files — the same way under both
    // §IV-B strategies, with counts derived purely from the plan.
    let dir = dataset("bitrot-attribution");
    let vca = load_vca(&dir);
    let mut rotten_seen = 0usize;
    for seed in seed_matrix() {
        let plan = chaos_plan(seed);
        let rotten: Vec<usize> = (0..vca.n_files())
            .filter(|&fi| fires_for_member(&vca, &plan, site::DASF_READ_CORRUPT, fi))
            .collect();
        rotten_seen += rotten.len();
        let expected_q = expected_quarantine(&vca, &plan);
        let expected_m = expected_mismatches(&vca, &plan);
        let (coll, coll_rep) = chaos_read(&vca, &plan, ReadStrategy::CollectivePerFile);
        let (ca, ca_rep) = chaos_read(&vca, &plan, ReadStrategy::CommAvoiding);
        // Every rotten file is quarantined (it is in the expected set).
        for fi in &rotten {
            assert!(
                coll_rep.quarantined.contains(fi),
                "seed {seed}: rotten file {fi} must be quarantined"
            );
        }
        assert_eq!(coll_rep.quarantined, expected_q, "seed {seed}");
        assert_eq!(coll_rep.checksum_mismatches, expected_m, "seed {seed}");
        assert_eq!(
            coll_rep, ca_rep,
            "seed {seed}: both strategies must attribute identically"
        );
        assert_eq!(coll, ca, "seed {seed}: both strategies, same bytes");
    }
    assert!(
        rotten_seen > 0,
        "the seed matrix must exercise at least one rotten file"
    );
}

/// The fault plan a `dassd` chaos run installs in its workers: the
/// three dasf failure modes (hard read error, short read, bit-rot) at
/// rates that leave some member files healthy. All three sites are
/// file-name keyed, so which files fail is a pure function of the
/// seed — independent of worker scheduling.
fn dassd_chaos_plan(seed: u64) -> Arc<FaultPlan> {
    Arc::new(
        FaultPlan::new(seed)
            .with(site::DASF_READ_ERR, 0.25)
            .with(site::DASF_READ_SHORT, 0.2)
            .with(site::DASF_READ_CORRUPT, 0.25),
    )
}

/// One serial request sequence against a chaos-planned `dassd`:
/// per-member-file windowed reads, a full read, a valid eval, and a
/// compile error — every response folded into one outcome line per
/// request (`ok:<fnv digest>` or `err:<kind>`). Used both by the
/// in-process determinism test and the CI digest file.
fn dassd_chaos_outcomes(dir: &std::path::Path, seed: u64) -> Vec<String> {
    use dassa::dassd::{Client, ClientError, Server, ServerConfig};
    let _logs = captured_logs();
    let vca = load_vca(&dir.to_path_buf());
    let server = Server::start(
        dir,
        ServerConfig {
            workers: 2,
            queue_depth: 8,
            fault_plan: Some(dassd_chaos_plan(seed)),
            ..ServerConfig::default()
        },
    )
    .expect("chaos server");
    let mut client = Client::connect(server.addr()).expect("connect");
    let digest_f32 = |data: &[f32]| {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for v in data {
            for b in v.to_bits().to_le_bytes() {
                h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
            }
        }
        h
    };
    let mut outcomes = Vec::new();
    let mut record = |tag: String, result: Result<u64, ClientError>| {
        outcomes.push(match result {
            Ok(d) => format!("{tag}:ok:{d:016x}"),
            Err(ClientError::Server { kind, .. }) => format!("{tag}:err:{}", kind.name()),
            Err(ClientError::Compile(_)) => format!("{tag}:err:compile"),
            Err(other) => panic!("{tag}: connection must survive request faults, got {other}"),
        });
    };
    for fi in 0..vca.n_files() {
        let t0 = vca.time_offset_of(fi);
        let t1 = t0 + vca.samples_of(fi);
        let got = client.read_region(0..vca.channels(), t0..t1);
        record(format!("read[{fi}]"), got.map(|a| digest_f32(a.as_slice())));
    }
    record(
        "read[all]".into(),
        client.read_all().map(|a| digest_f32(a.as_slice())),
    );
    record(
        "eval".into(),
        client
            .eval("load(\"corpus\") | detrend | xcorr(master=ch[0])")
            .map(|(dims, flat)| {
                let mut h = 0xcbf2_9ce4_8422_2325u64;
                for d in &dims {
                    for b in d.to_le_bytes() {
                        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
                    }
                }
                for v in &flat {
                    for b in v.to_bits().to_le_bytes() {
                        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
                    }
                }
                h
            }),
    );
    record(
        "eval[bad]".into(),
        client.eval("load(\"corpus\") | detrnd").map(|_| 0),
    );
    // The connection — and the server — must still be healthy after
    // every injected failure.
    client
        .ping()
        .expect("server must keep serving after faults");
    drop(client);
    server.stop();
    outcomes
}

/// `dassd` under a faultline plan: every injected dasf failure (hard
/// read error, short read, corrupt page) surfaces as a *typed* error
/// response, the server keeps serving afterwards (no hang, no crash),
/// healthy files are byte-identical to a fault-free serial read (no
/// poisoned cache), and the whole outcome sequence is deterministic
/// per seed.
#[test]
fn dassd_serves_typed_errors_and_survives_every_seed() {
    let dir = dataset("dassd");
    let vca = load_vca(&dir);

    // Fault-free goldens, one digest per member window, read serially.
    let clean = vca.read_all_f32().expect("clean read");
    let digest_window = |t0: usize, t1: usize| {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for r in 0..clean.rows() {
            for c in t0..t1 {
                for b in clean.get(r, c).to_bits().to_le_bytes() {
                    h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
                }
            }
        }
        h
    };

    let mut faults_seen = 0usize;
    for seed in seed_matrix() {
        let plan = dassd_chaos_plan(seed);
        let o1 = dassd_chaos_outcomes(&dir, seed);
        let o2 = dassd_chaos_outcomes(&dir, seed);
        assert_eq!(
            o1, o2,
            "seed {seed}: outcome sequence must be deterministic"
        );

        for (fi, line) in o1.iter().take(vca.n_files()).enumerate() {
            let hard = fires_for_member(&vca, &plan, site::DASF_READ_ERR, fi);
            let short = fires_for_member(&vca, &plan, site::DASF_READ_SHORT, fi);
            let rot = fires_for_member(&vca, &plan, site::DASF_READ_CORRUPT, fi);
            if hard || short || rot {
                faults_seen += 1;
                // Hard errors mask the others (they fail before bytes
                // are read); rot surfaces as the typed corrupt kind.
                let kind = if hard {
                    "err:io"
                } else if short || rot {
                    "err:corrupt"
                } else {
                    unreachable!()
                };
                assert!(
                    line.ends_with(kind),
                    "seed {seed} file {fi}: expected {kind}, got {line}"
                );
            } else {
                let t0 = vca.time_offset_of(fi) as usize;
                let t1 = t0 + vca.samples_of(fi) as usize;
                let want = format!("read[{fi}]:ok:{:016x}", digest_window(t0, t1));
                assert_eq!(
                    line, &want,
                    "seed {seed} file {fi}: healthy file must match the fault-free read"
                );
            }
        }
        // The bad program is a compile error under every seed.
        assert_eq!(o1.last().unwrap(), "eval[bad]:err:compile");
    }
    assert!(
        faults_seen > 0,
        "the seed matrix must strike at least one member file"
    );
}

/// With `DASSA_CHAOS_DIGEST=<path>` set, write one line per
/// (seed, strategy) plus one per (seed, dassd request): a checksum of
/// the reassembled array (or the typed error outcome) plus the full
/// quarantine report. CI runs the suite twice and `diff`s the two
/// files, so nondeterminism *between processes* (which the in-process
/// assertions above can't see) also fails the gate. Without the env
/// var this test is a no-op.
#[test]
// `[0..FILES]` really is a one-stage run list, not a collect typo.
#[allow(clippy::single_range_in_vec_init)]
fn emit_outcome_digest_for_ci() {
    let Some(path) = std::env::var_os("DASSA_CHAOS_DIGEST") else {
        return;
    };
    let dir = dataset("digest");
    let vca = load_vca(&dir);
    let mut out = String::new();
    for seed in seed_matrix() {
        let plan = chaos_plan(seed);
        for strategy in [ReadStrategy::CollectivePerFile, ReadStrategy::CommAvoiding] {
            let (full, report) = chaos_read(&vca, &plan, strategy);
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for v in full.as_slice() {
                for b in v.to_bits().to_le_bytes() {
                    h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
                }
            }
            out.push_str(&format!(
                "seed={seed:#x} strategy={strategy:?} digest={h:016x} report={report:?}\n"
            ));
        }
        for line in dassd_chaos_outcomes(&dir, seed) {
            out.push_str(&format!("seed={seed:#x} dassd {line}\n"));
        }
        for line in ingest_chaos_outcomes(&format!("digest-{seed:x}"), seed, &[0..FILES]) {
            out.push_str(&format!("seed={seed:#x} ingest {line}\n"));
        }
    }
    std::fs::write(&path, out).expect("write digest");
}

/// The fault plan an ingest chaos run installs: arrival disorder
/// (torn spool renames that heal under retry, deferred discovery,
/// double delivery) on the new `ingest.*` sites, plus the two dasf
/// read failure modes so validation-time scrubbing quarantines. All
/// sites are file-name keyed: which files misbehave — and how often —
/// is a pure function of the seed.
fn ingest_chaos_plan(seed: u64) -> Arc<FaultPlan> {
    Arc::new(
        FaultPlan::new(seed)
            .with(site::INGEST_SPOOL_TORN, 0.35)
            .with(site::INGEST_ARRIVAL_DELAY, 0.35)
            .with(site::INGEST_ARRIVAL_DUPLICATE, 0.3)
            .with(site::DASF_READ_ERR, 0.15)
            .with(site::DASF_READ_CORRUPT, 0.2),
    )
}

/// One ingest chaos run, staged: for each range in `stages`, copy that
/// slice of the (sorted) source corpus into the spool and drain it
/// with `ingest::run_once` under `seed`'s plan — so `&[0..6]` is an
/// uninterrupted run and `&[0..3, 3..6]` is a stop-and-resume. Returns
/// one outcome line per stage summary, per source file's final
/// location, and per emitted window report (name + FNV digest of its
/// exact bytes).
fn ingest_chaos_outcomes(tag: &str, seed: u64, stages: &[std::ops::Range<usize>]) -> Vec<String> {
    use dassa::ingest::{run_once, IngestConfig};
    let _logs = captured_logs();
    let src = dataset(&format!("ingest-src-{tag}"));
    let mut names: Vec<String> = std::fs::read_dir(&src)
        .expect("src")
        .map(|e| e.expect("entry").file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".dasf"))
        .collect();
    names.sort();

    let spool = std::env::temp_dir().join(format!("dassa-chaos-ingest-spool-{tag}"));
    let out = std::env::temp_dir().join(format!("dassa-chaos-ingest-out-{tag}"));
    let _ = std::fs::remove_dir_all(&spool);
    let _ = std::fs::remove_dir_all(&out);
    std::fs::create_dir_all(&spool).expect("spool");

    let mut cfg = IngestConfig::new(&spool, &out);
    cfg.window_minutes = 2;
    cfg.threads = 1;
    cfg.max_attempts = 3;
    cfg.base_backoff = std::time::Duration::from_millis(1);
    cfg.poll = std::time::Duration::from_millis(1);

    // Thread-local install: validation and window reads both happen on
    // this thread (the daemon keeps faulted I/O off the evaluator).
    let _guard = faultline::PlanGuard::install(ingest_chaos_plan(seed));
    let mut lines = Vec::new();
    for stage in stages {
        for n in &names[stage.clone()] {
            std::fs::copy(src.join(n), spool.join(n)).expect("stage file");
        }
        let s = run_once(&cfg).expect("ingest run");
        lines.push(format!(
            "stage={stage:?} admitted={} late={} dup={} quar={} emitted={} skipped={} gaps={}",
            s.admitted,
            s.late,
            s.duplicate,
            s.quarantined,
            s.windows_emitted,
            s.windows_skipped,
            s.gap_samples
        ));
    }
    for n in &names {
        let loc = ["", "ingest.late", "ingest.duplicate", "ingest.quarantine"]
            .iter()
            .find(|d| spool.join(d).join(n).exists())
            .map(|d| if d.is_empty() { "spool" } else { d })
            .unwrap_or("gone");
        lines.push(format!("file={n}:{loc}"));
    }
    let mut reports: Vec<String> = std::fs::read_dir(&out)
        .expect("out")
        .map(|e| e.expect("entry").file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("window_") && n.ends_with(".json"))
        .collect();
    reports.sort();
    for r in &reports {
        let bytes = std::fs::read(out.join(r)).expect("report bytes");
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in bytes {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
        lines.push(format!("report={r}:{h:016x}"));
    }
    lines
}

/// Ingest under arrival + integrity chaos: the same seed must produce
/// the same admissions, the same retirements, the same quarantines,
/// and byte-identical window reports, every time.
#[test]
// `[0..FILES]` really is a one-stage run list, not a collect typo.
#[allow(clippy::single_range_in_vec_init)]
fn ingest_chaos_is_deterministic_per_seed() {
    let mut emitted_total = 0usize;
    let mut quarantined_total = 0usize;
    for seed in seed_matrix() {
        let a = ingest_chaos_outcomes(&format!("det-a-{seed:x}"), seed, &[0..FILES]);
        let b = ingest_chaos_outcomes(&format!("det-b-{seed:x}"), seed, &[0..FILES]);
        assert_eq!(a, b, "seed {seed}: ingest outcomes must be byte-identical");
        emitted_total += a.iter().filter(|l| l.starts_with("report=")).count();
        quarantined_total += a
            .iter()
            .filter(|l| l.ends_with(":ingest.quarantine"))
            .count();
    }
    assert!(
        emitted_total > 0,
        "the seed matrix must emit at least one window"
    );
    assert!(
        quarantined_total > 0,
        "the seed matrix must quarantine at least one file"
    );
    // The quarantines above were also logged as structured records —
    // captured, not splattered over the suite's stderr.
    let logs = captured_logs();
    let logs = logs.lock().unwrap_or_else(|p| p.into_inner());
    assert!(
        logs.iter().any(|r| {
            r.level == obs::Level::Warn
                && r.target.starts_with("ingest")
                && r.msg.contains("quarantined")
        }),
        "quarantine events must reach the structured logger"
    );
}

/// Stop-and-resume under chaos: draining the corpus in two stages
/// (checkpoint journal in between) must emit the *same window reports,
/// byte for byte* as one uninterrupted drain — no lost windows, no
/// duplicates, no drift in gap accounting.
#[test]
// `[0..FILES]` really is a one-stage run list, not a collect typo.
#[allow(clippy::single_range_in_vec_init)]
fn ingest_resume_matches_uninterrupted_run_per_seed() {
    for seed in seed_matrix() {
        let full = ingest_chaos_outcomes(&format!("resume-full-{seed:x}"), seed, &[0..FILES]);
        let staged = ingest_chaos_outcomes(
            &format!("resume-staged-{seed:x}"),
            seed,
            &[0..FILES / 2, FILES / 2..FILES],
        );
        let reports = |lines: &[String]| -> Vec<String> {
            lines
                .iter()
                .filter(|l| l.starts_with("report="))
                .cloned()
                .collect()
        };
        assert_eq!(
            reports(&full),
            reports(&staged),
            "seed {seed}: resumed union must equal the uninterrupted run"
        );
    }
}

#[test]
fn analysis_on_chaos_read_is_deterministic() {
    use dassa::prelude::*;
    let dir = dataset("end-to-end");
    let vca = load_vca(&dir);
    let plan = chaos_plan(seed_matrix()[0]);
    let haee = Haee::builder().threads(2).build();
    let analysis = Analysis::Stacking(StackingParams {
        window: 64,
        hop: 64,
        master_channel: 0,
        ..Default::default()
    });
    let mut outputs = Vec::new();
    for _ in 0..2 {
        let (full, _) = chaos_read(&vca, &plan, ReadStrategy::CommAvoiding);
        let data: Vec<f64> = full.as_slice().iter().map(|&v| v as f64).collect();
        let data = arrayudf::Array2::from_vec(full.rows(), full.cols(), data);
        let out = dasa::run(&analysis, &data, &haee).expect("analysis");
        outputs.push(out.to_dataset());
    }
    assert_eq!(outputs[0], outputs[1], "same seed ⇒ same analysis output");
}
