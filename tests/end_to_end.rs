//! End-to-end integration: generate → store → search → merge → parallel
//! read → analyse, across crates, validated against serial oracles.

use arrayudf::dist::partition;
use arrayudf::Array2;
use dasgen::{write_minute_files, Scene};
use dassa::prelude::*;
use std::path::PathBuf;

fn fresh_dataset(tag: &str, channels: usize, hz: f64, minutes: usize) -> (PathBuf, Scene) {
    let dir = std::env::temp_dir().join(format!("dassa-e2e-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    let scene = Scene::demo(channels, hz, minutes as f64 * 60.0, 0xE2E);
    write_minute_files(&scene, &dir, "170728224510", minutes).expect("generate");
    (dir, scene)
}

#[test]
fn generate_search_merge_read_pipeline() {
    let (dir, scene) = fresh_dataset("pipeline", 16, 20.0, 4);
    let catalog = FileCatalog::scan(&dir).expect("scan");
    assert_eq!(catalog.len(), 4);

    // Search both ways; select the middle two files.
    let range_hits = catalog.search_range(170728224610, 1).expect("range");
    assert_eq!(range_hits.len(), 2);
    let regex_hits = catalog
        .search_regex("1707282246.0|1707282247.0")
        .expect("regex");
    assert_eq!(
        regex_hits, range_hits,
        "both query types find the same files"
    );

    // VCA over the hits reads exactly the scene windows.
    let vca = Vca::from_entries(&range_hits).expect("vca");
    let data = vca.read_all_f32().expect("read");
    let expect = scene.render(60.0, 2 * scene.samples_for(60.0));
    assert_eq!(data, expect);

    // LAV subsetting equals direct slicing.
    let lav = Lav::full(&vca).select_channels(3..9).expect("channels");
    let sub = lav.read_f32(&vca).expect("lav read");
    assert_eq!(sub, expect.row_block(3, 9));
}

#[test]
fn parallel_readers_match_serial_for_many_geometries() {
    let (dir, _) = fresh_dataset("readers", 13, 20.0, 5);
    let catalog = FileCatalog::scan(&dir).expect("scan");
    let vca = Vca::from_entries(catalog.entries()).expect("vca");
    let serial = vca.read_all_f32().expect("serial");
    for ranks in [1usize, 2, 3, 5, 8] {
        let coll = minimpi::run(ranks, |c| read_collective_per_file(c, &vca).expect("coll"));
        let ca = minimpi::run(ranks, |c| read_comm_avoiding(c, &vca).expect("ca"));
        assert_eq!(Array2::vstack(&coll), serial, "collective, {ranks} ranks");
        assert_eq!(Array2::vstack(&ca), serial, "comm-avoiding, {ranks} ranks");
    }
}

#[test]
fn rca_and_vca_views_are_interchangeable() {
    let (dir, _) = fresh_dataset("rca-vca", 8, 20.0, 3);
    let catalog = FileCatalog::scan(&dir).expect("scan");
    let vca = Vca::from_entries(catalog.entries()).expect("vca");
    let rca_path = dir.join("merged.rca.dasf");
    create_rca(catalog.entries(), &rca_path).expect("rca");
    let (meta, rca_data) = read_rca(&rca_path).expect("read rca");
    assert_eq!(meta.channels, vca.channels());
    assert_eq!(meta.samples, vca.total_samples());
    assert_eq!(rca_data, vca.read_all_f32().expect("vca read"));
}

#[test]
fn vca_descriptor_survives_save_load_and_reads_identically() {
    let (dir, _) = fresh_dataset("descriptor", 6, 20.0, 3);
    let catalog = FileCatalog::scan(&dir).expect("scan");
    let vca = Vca::from_entries(catalog.entries()).expect("vca");
    let desc = dir.join("saved.vca.dasf");
    vca.save(&desc).expect("save");
    let reloaded = Vca::load(&desc).expect("load");
    assert_eq!(
        reloaded.read_all_f32().expect("read"),
        vca.read_all_f32().expect("read")
    );
}

#[test]
fn distributed_pipelines_equal_single_process_results() {
    let (dir, _) = fresh_dataset("dist", 12, 20.0, 2);
    let catalog = FileCatalog::scan(&dir).expect("scan");
    let vca = Vca::from_entries(catalog.entries()).expect("vca");
    let data = vca.read_all_f64().expect("read");
    let total = data.rows();

    // Local similarity.
    let ls_params = LocalSimiParams {
        half_window: 10,
        channel_offset: 1,
        search_half: 4,
        time_stride: 20,
    };
    let ls_serial = local_similarity(&data, &ls_params, &Haee::builder().threads(1).build());
    let ls_blocks = minimpi::run(3, |comm| {
        let own = partition(total, comm.size(), comm.rank());
        let local = data.row_block(own.start, own.end);
        local_similarity_dist(
            comm,
            &local,
            total,
            &ls_params,
            &Haee::builder().threads(2).build(),
        )
    });
    assert_eq!(Array2::vstack(&ls_blocks), ls_serial);

    // Interferometry, with the distributed read feeding it.
    let if_params = InterferometryParams {
        band: (0.02, 0.45),
        ..Default::default()
    };
    let if_serial =
        interferometry(&data, &if_params, &Haee::builder().threads(1).build()).expect("serial");
    let if_blocks = minimpi::run(4, |comm| {
        let local32 = read_comm_avoiding(comm, &vca).expect("read");
        let local = Array2::from_vec(
            local32.rows(),
            local32.cols(),
            local32.as_slice().iter().map(|&v| v as f64).collect(),
        );
        interferometry_dist(
            comm,
            &local,
            total,
            &if_params,
            &Haee::builder().threads(1).build(),
        )
        .expect("dist")
    });
    let gathered: Vec<f64> = if_blocks.into_iter().flatten().collect();
    assert_eq!(gathered.len(), if_serial.len());
    for (ch, (a, b)) in gathered.iter().zip(&if_serial).enumerate() {
        assert!((a - b).abs() < 1e-12, "channel {ch}: {a} vs {b}");
    }
}

#[test]
fn das_search_cli_binary_works() {
    let (dir, _) = fresh_dataset("cli", 4, 20.0, 3);
    // The binary belongs to the `dassa` package; locate it next to this
    // test executable (target/<profile>/das_search).
    let mut exe = std::env::current_exe().expect("test exe path");
    exe.pop(); // deps/
    exe.pop(); // <profile>/
    exe.push("das_search");
    if !exe.exists() {
        eprintln!(
            "skipping: {} not built (run `cargo build --workspace` first)",
            exe.display()
        );
        return;
    }
    let out = std::process::Command::new(&exe)
        .args([
            "-d",
            dir.to_str().expect("utf8 path"),
            "-s",
            "170728224510",
            "-c",
            "1",
        ])
        .output()
        .expect("run das_search");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        stdout.lines().count(),
        2,
        "-c 1 returns two files:\n{stdout}"
    );
    assert!(stdout.contains("170728224510"));
    assert!(stdout.contains("170728224610"));

    // Regex mode with VCA output.
    let vca_out = dir.join("cli.vca.dasf");
    let out = std::process::Command::new(&exe)
        .args([
            "-d",
            dir.to_str().expect("utf8 path"),
            "-e",
            "17072822461.",
            "--vca",
            vca_out.to_str().expect("utf8 path"),
        ])
        .output()
        .expect("run das_search regex");
    assert!(out.status.success());
    let vca = Vca::load(&vca_out).expect("cli-written VCA loads");
    assert_eq!(vca.n_files(), 1);
}
