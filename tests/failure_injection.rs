//! Failure injection: corrupt files, truncated payloads, bad
//! selections, and dead ranks must surface as errors — never wrong data.

use dasgen::{write_minute_files, Scene};
use dassa::prelude::*;
use std::io::{Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::time::Duration;

fn dataset(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dassa-failinj-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    let scene = Scene::demo(6, 20.0, 120.0, 3);
    write_minute_files(&scene, &dir, "170728224510", 2).expect("generate");
    dir
}

#[test]
fn scan_rejects_garbage_dasf_file() {
    let dir = dataset("garbage");
    std::fs::write(dir.join("zzz.dasf"), b"this is not a dasf file at all").expect("write");
    match FileCatalog::scan(&dir) {
        Err(DassaError::Dasf(dasf::DasfError::BadMagic)) => {}
        other => panic!("expected BadMagic, got {other:?}"),
    }
}

#[test]
fn scan_rejects_truncated_file() {
    let dir = dataset("truncated");
    let victim = std::fs::read_dir(&dir)
        .expect("dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|e| e == "dasf"))
        .expect("a dasf file");
    let bytes = std::fs::read(&victim).expect("read");
    std::fs::write(&victim, &bytes[..bytes.len() / 2]).expect("truncate");
    assert!(
        FileCatalog::scan(&dir).is_err(),
        "truncation must not pass silently"
    );
}

#[test]
fn read_detects_payload_corruption_in_offsets() {
    // Corrupt the superblock's table offset to point past EOF.
    let dir = dataset("offsets");
    let victim = std::fs::read_dir(&dir)
        .expect("dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|e| e == "dasf"))
        .expect("a dasf file");
    let mut f = std::fs::OpenOptions::new()
        .write(true)
        .open(&victim)
        .expect("open rw");
    f.seek(SeekFrom::Start(8)).expect("seek");
    f.write_all(&u64::MAX.to_le_bytes()).expect("poison offset");
    drop(f);
    // v3 catches this either as a structurally impossible offset
    // (Truncated) or as a superblock/commit-record checksum mismatch,
    // depending on which check trips first — both are hard errors.
    assert!(matches!(
        dasf::File::open(&victim),
        Err(dasf::DasfError::Truncated | dasf::DasfError::ChecksumMismatch { .. })
    ));
}

#[test]
fn vca_member_deleted_between_save_and_load() {
    let dir = dataset("deleted-member");
    let catalog = FileCatalog::scan(&dir).expect("scan");
    let vca = Vca::from_entries(catalog.entries()).expect("vca");
    let desc = dir.join("dangling.vca.dasf");
    vca.save(&desc).expect("save");
    // Remove one member file.
    std::fs::remove_file(&catalog.entries()[1].path).expect("delete member");
    assert!(
        Vca::load(&desc).is_err(),
        "dangling member must fail loudly"
    );
}

#[test]
fn vca_member_shrunk_after_construction() {
    // A member rewritten with fewer samples after the VCA was built:
    // reads that touch it must error (hyperslab out of bounds), not
    // return stale-shaped data.
    let dir = dataset("shrunk");
    let catalog = FileCatalog::scan(&dir).expect("scan");
    let vca = Vca::from_entries(catalog.entries()).expect("vca");
    let victim = &catalog.entries()[1];
    let mut w = dasf::Writer::create(&victim.path).expect("rewrite");
    w.set_attr(
        "/",
        "TimeStamp(yymmddhhmmss)",
        dasf::Value::Str("170728224610".into()),
    )
    .expect("attr");
    w.create_group("/Measurement").expect("group");
    w.write_dataset_f32("/Measurement/data", &[6, 10], &[0.0; 60])
        .expect("small data");
    w.finish().expect("finish");
    assert!(
        vca.read_all_f32().is_err(),
        "shrunken member must fail the read"
    );
}

#[test]
fn bad_selections_error_not_panic() {
    let dir = dataset("selection");
    let catalog = FileCatalog::scan(&dir).expect("scan");
    let vca = Vca::from_entries(catalog.entries()).expect("vca");
    assert!(matches!(
        vca.read_region_f32(0..99, 0..10),
        Err(DassaError::BadSelection(_))
    ));
    assert!(matches!(
        vca.read_region_f32(0..1, 0..u64::MAX),
        Err(DassaError::BadSelection(_))
    ));
    assert!(matches!(
        catalog.search_range(999999999999, 0),
        Err(DassaError::BadTimestamp(_)) | Err(DassaError::BadSelection(_))
    ));
}

#[test]
fn dead_rank_surfaces_as_timeout_not_hang() {
    // Rank 1 "dies" (never sends); rank 0's timed receive reports it.
    let out = minimpi::run(2, |comm| {
        if comm.rank() == 0 {
            comm.recv_timeout::<u64>(1, 42, Duration::from_millis(50))
        } else {
            Ok(0)
        }
    });
    assert_eq!(out[0], Err(minimpi::RecvError::Timeout));
}

#[test]
fn rank_panic_propagates_to_caller() {
    let result = std::panic::catch_unwind(|| {
        minimpi::run(2, |comm| {
            if comm.rank() == 1 {
                panic!("simulated rank failure");
            }
        });
    });
    assert!(result.is_err(), "a dead rank must not be silently ignored");
}
