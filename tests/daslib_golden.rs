//! Golden-value regression tests for the DasLib kernels (Table II).
//!
//! Three layers of defence against silent numerical drift:
//! 1. **Oracle agreement** — each native kernel must match the same
//!    operation run through the `mlab` interpreter (exercising the
//!    interpreter's argument plumbing and the kernel together);
//! 2. **Analytic identities** — properties that hold in exact
//!    arithmetic (detrended ramps vanish, filtfilt is zero-phase,
//!    interpolation is exact at knots);
//! 3. **Pinned goldens** — checksums and spot values of each kernel on
//!    a fixed probe signal, frozen at the values the kernels produced
//!    when this suite was written. A legitimate algorithm change must
//!    update these constants *consciously*.
//!
//! All tolerances live in [`tol`] — one place to reason about how tight
//! the pins are.

use dsp::FilterBand;
use mlab::{Interp, Value};

/// Every tolerance used by this suite.
mod tol {
    /// Native kernel vs the `mlab` interpreter oracle.
    pub const ORACLE: f64 = 1e-12;
    /// Analytic identities (exact up to rounding accumulation).
    pub const ANALYTIC: f64 = 1e-8;
    /// Pinned golden values (same algorithm, any IEEE-754 double
    /// platform; loose enough for reassociation by future compilers).
    pub const GOLDEN: f64 = 1e-9;
    /// filtfilt zero-phase symmetry. Not an exact identity: the
    /// reflect-padding that suppresses startup transients is only
    /// approximately symmetric, leaving ~4e-6 edge asymmetry (measured
    /// 4.4e-6 at the edges, 5.7e-7 deep interior for the golden filter).
    pub const FILTFILT_SYMMETRY: f64 = 1e-5;
    /// resample DC preservation. Bounded by the anti-imaging FIR's
    /// passband ripple, ~2.3e-3 absolute on a 2.5 DC input (~0.1%
    /// relative) — a property of the fixed filter design, not an edge
    /// transient.
    pub const RESAMPLE_DC: f64 = 1e-2;
}

/// The fixed probe signal all goldens are pinned against: two
/// incommensurate tones plus a linear trend.
fn probe(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let t = i as f64;
            (0.07 * t).sin() + 0.4 * (0.23 * t + 1.1).cos() + 0.01 * t
        })
        .collect()
}

fn assert_close(what: &str, got: &[f64], want: &[f64], tolerance: f64) {
    assert_eq!(got.len(), want.len(), "{what}: length");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert!(
            (g - w).abs() <= tolerance,
            "{what}[{i}]: got {g}, want {w} (tol {tolerance})"
        );
    }
}

/// Run `script` with `x` bound, returning variable `out` as a row.
fn oracle(x: &[f64], script: &str, out: &str) -> Vec<f64> {
    let mut interp = Interp::new();
    interp.set("x", Value::row(x.to_vec()));
    interp.run(script).expect("oracle script");
    match interp.get(out).expect(out) {
        Value::Matrix { data, .. } => data.clone(),
        Value::Num(v) => vec![*v],
        other => panic!("unexpected oracle value {other:?}"),
    }
}

// ---------------------------------------------------------------- detrend

#[test]
fn detrend_matches_oracle() {
    let x = probe(200);
    let want = oracle(&x, "y = detrend(x);", "y");
    assert_close("detrend", &dsp::detrend(&x), &want, tol::ORACLE);
}

#[test]
fn detrend_annihilates_lines() {
    // A pure line is its own least-squares fit: detrending leaves ~0.
    let line: Vec<f64> = (0..300).map(|i| 3.25 - 0.75 * i as f64).collect();
    for (i, v) in dsp::detrend(&line).iter().enumerate() {
        assert!(v.abs() < tol::ANALYTIC, "residual {v} at {i}");
    }
    // And the residual of anything has zero mean.
    let d = dsp::detrend(&probe(256));
    let mean = d.iter().sum::<f64>() / d.len() as f64;
    assert!(mean.abs() < tol::ANALYTIC, "mean {mean}");
}

#[test]
fn detrend_golden() {
    let d = dsp::detrend(&probe(128));
    golden_signature(
        "detrend",
        &d,
        6.957_653_915_295_15e1,
        &[
            (0, -7.821_494_416_619_39e-3),
            (64, -1.557_392_056_594_811e0),
            (127, 5.046_319_981_868_999e-1),
        ],
    );
}

// ------------------------------------------------------ butter + filtfilt

/// The fixed filter all filtering goldens use: 4th-order Butterworth
/// bandpass over (0.05, 0.45) of Nyquist.
fn golden_filter() -> (Vec<f64>, Vec<f64>) {
    dsp::butter(4, FilterBand::Bandpass(0.05, 0.45))
}

#[test]
fn butter_filtfilt_matches_oracle() {
    let x = probe(200);
    let (b, a) = golden_filter();
    let want = oracle(
        &x,
        "[b, a] = butter(4, [0.05 0.45]); y = filtfilt(b, a, x);",
        "y",
    );
    assert_close("filtfilt", &dsp::filtfilt(&b, &a, &x), &want, tol::ORACLE);
}

#[test]
fn butter_coefficients_golden() {
    let (b, a) = golden_filter();
    let want_b = [
        0.046_582_906_636_443_65,
        0.0,
        -0.186_331_626_545_774_6,
        0.0,
        0.279_497_439_818_661_9,
        0.0,
        -0.186_331_626_545_774_6,
        0.0,
        0.046_582_906_636_443_65,
    ];
    let want_a = [
        1.0,
        -4.179_704_463_951_913,
        7.677_547_403_589_494,
        -8.506_814_082_456_277,
        6.529_898_257_914_022,
        -3.544_249_773_212_235,
        1.258_841_153_578_204,
        -0.264_963_862_648_782_2,
        0.030_118_875_043_169_235,
    ];
    assert_close("butter b", &b, &want_b, tol::GOLDEN);
    assert_close("butter a", &a, &want_a, tol::GOLDEN);
}

#[test]
fn filtfilt_is_zero_phase() {
    // filtfilt of a time-symmetric signal stays time-symmetric — the
    // whole point of the forward-backward pass (no group delay).
    let n = 257;
    let x: Vec<f64> = (0..n)
        .map(|i| {
            let t = (i as f64 - (n - 1) as f64 / 2.0).abs();
            (-t * t / 900.0).exp()
        })
        .collect();
    let (b, a) = golden_filter();
    let y = dsp::filtfilt(&b, &a, &x);
    for i in 0..n / 2 {
        let asym = (y[i] - y[n - 1 - i]).abs();
        assert!(asym < tol::FILTFILT_SYMMETRY, "asymmetry {asym} at {i}");
    }
}

#[test]
fn filtfilt_golden() {
    let (b, a) = golden_filter();
    let y = dsp::filtfilt(&b, &a, &probe(128));
    golden_signature(
        "filtfilt",
        &y,
        1.009_218_874_106_103e1,
        &[
            (0, -2.046_199_835_918_581e-2),
            (64, -3.835_300_920_145_384e-1),
            (127, -5.720_643_956_843_591e-2),
        ],
    );
}

// --------------------------------------------------------------- resample

#[test]
fn resample_matches_oracle() {
    let x = probe(200);
    let want = oracle(&x, "y = resample(x, 2, 3);", "y");
    assert_close("resample", &dsp::resample(&x, 2, 3), &want, tol::ORACLE);
}

#[test]
fn resample_identity_and_dc() {
    let x = probe(150);
    assert_close("resample 1:1", &dsp::resample(&x, 1, 1), &x, tol::ANALYTIC);
    // Rate conversion preserves DC up to the anti-imaging filter's
    // passband ripple (see `tol::RESAMPLE_DC`).
    let dc = vec![2.5; 400];
    let y = dsp::resample(&dc, 3, 2);
    for (i, v) in y.iter().enumerate().skip(30).take(y.len() - 60) {
        assert!((v - 2.5).abs() < tol::RESAMPLE_DC, "DC drift {v} at {i}");
    }
}

#[test]
fn resample_golden() {
    let y = dsp::resample(&probe(128), 2, 3);
    assert_eq!(y.len(), 86, "output length ⌈128·2/3⌉");
    golden_signature(
        "resample",
        &y,
        1.151_476_770_486_518e2,
        &[
            (0, 1.507_694_780_108_733e-1),
            (43, -7.257_636_953_399_225e-1),
            (85, 9.810_952_058_321_636e-1),
        ],
    );
}

// ---------------------------------------------------------------- interp1

#[test]
fn interp1_matches_oracle() {
    let x0: Vec<f64> = (0..16).map(|i| i as f64).collect();
    let y0: Vec<f64> = x0.iter().map(|&v| (0.5 * v).sin()).collect();
    let xq: Vec<f64> = (0..31).map(|i| i as f64 * 0.5).collect();
    let mut interp = Interp::new();
    interp.set("x0", Value::row(x0.clone()));
    interp.set("y0", Value::row(y0.clone()));
    interp.set("xq", Value::row(xq.clone()));
    interp.run("y = interp1(x0, y0, xq);").expect("script");
    let want = match interp.get("y").expect("y") {
        Value::Matrix { data, .. } => data.clone(),
        other => panic!("{other:?}"),
    };
    assert_close("interp1", &dsp::interp1(&x0, &y0, &xq), &want, tol::ORACLE);
}

#[test]
fn interp1_exact_at_knots_and_linear_between() {
    let x0 = [0.0, 1.0, 4.0, 6.0];
    let y0 = [10.0, -2.0, 7.0, 7.0];
    // At the knots: exact.
    assert_close("knots", &dsp::interp1(&x0, &y0, &x0), &y0, tol::ANALYTIC);
    // Between knots: the chord.
    let q = dsp::interp1(&x0, &y0, &[0.5, 2.5, 5.0]);
    assert_close("chords", &q, &[4.0, 2.5, 7.0], tol::ANALYTIC);
}

#[test]
fn interp1_golden() {
    let x0: Vec<f64> = (0..16).map(|i| i as f64).collect();
    let y0: Vec<f64> = x0.iter().map(|&v| (0.5 * v).sin()).collect();
    let xq: Vec<f64> = (0..31).map(|i| i as f64 * 0.5).collect();
    let y = dsp::interp1(&x0, &y0, &xq);
    golden_signature(
        "interp1",
        &y,
        1.436_492_891_350_379e1,
        &[
            (0, 0.0),
            (15, -5.537_928_614_987_74e-1),
            (30, 9.379_999_767_747_389e-1),
        ],
    );
}

// ------------------------------------------------------------------ shared

/// Assert a kernel output's pinned signature: its energy (Σv²) and a
/// few spot values. Catches both global drift and localized changes.
fn golden_signature(what: &str, v: &[f64], sumsq: f64, spots: &[(usize, f64)]) {
    let got_sumsq: f64 = v.iter().map(|e| e * e).sum();
    assert!(
        (got_sumsq - sumsq).abs() <= tol::GOLDEN * sumsq.abs().max(1.0),
        "{what}: energy drifted, got {got_sumsq:.15e}, pinned {sumsq:.15e}"
    );
    for &(i, want) in spots {
        assert!(
            (v[i] - want).abs() <= tol::GOLDEN,
            "{what}[{i}]: got {:.15e}, pinned {want:.15e}",
            v[i]
        );
    }
}
