#!/usr/bin/env bash
# CI gate for DASSA-rs. Run from the repo root; fails fast.
#
#   ./ci.sh          # tier-1 + lints + chaos matrix
#   ./ci.sh --quick  # lints only (skip the release build + tests)
set -euo pipefail
cd "$(dirname "$0")"

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [[ $quick -eq 0 ]]; then
    echo "==> tier-1: cargo build --release"
    cargo build --release
    echo "==> tier-1: cargo test -q"
    cargo test -q

    # Chaos matrix: the seeded fault-injection suite over 8 seeds, run
    # twice with outcome digests. Any nondeterminism — a fault plan
    # whose outcome differs between two identically-seeded runs, within
    # a process or across the two passes — fails the gate.
    echo "==> chaos: seeded fault matrix (8 seeds, two passes)"
    digest_dir="$(mktemp -d)"
    trap 'rm -rf "$digest_dir"' EXIT
    DASSA_CHAOS_SEEDS=8 DASSA_CHAOS_DIGEST="$digest_dir/pass1" \
        cargo test -q -p bench --test chaos
    DASSA_CHAOS_SEEDS=8 DASSA_CHAOS_DIGEST="$digest_dir/pass2" \
        cargo test -q -p bench --test chaos
    if ! diff -u "$digest_dir/pass1" "$digest_dir/pass2"; then
        echo "chaos: same seeds produced different outcomes across runs" >&2
        exit 1
    fi
fi

echo "==> CI green"
