#!/usr/bin/env bash
# CI gate for DASSA-rs. Run from the repo root; fails fast.
#
#   ./ci.sh          # tier-1 + lints
#   ./ci.sh --quick  # lints only (skip the release build + tests)
set -euo pipefail
cd "$(dirname "$0")"

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [[ $quick -eq 0 ]]; then
    echo "==> tier-1: cargo build --release"
    cargo build --release
    echo "==> tier-1: cargo test -q"
    cargo test -q
fi

echo "==> CI green"
