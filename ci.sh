#!/usr/bin/env bash
# CI gate for DASSA-rs. Run from the repo root; fails fast.
#
#   ./ci.sh          # tier-1 + lints + chaos matrix
#   ./ci.sh --quick  # lints only (skip the release build + tests)
set -euo pipefail
cd "$(dirname "$0")"

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [[ $quick -eq 0 ]]; then
    echo "==> tier-1: cargo build --release"
    cargo build --release
    echo "==> tier-1: cargo test -q"
    cargo test -q

    # Chaos matrix: the seeded fault-injection suite over 8 seeds, run
    # twice with outcome digests. Any nondeterminism — a fault plan
    # whose outcome differs between two identically-seeded runs, within
    # a process or across the two passes — fails the gate.
    echo "==> chaos: seeded fault matrix (8 seeds, two passes)"
    digest_dir="$(mktemp -d)"
    trap 'rm -rf "$digest_dir"' EXIT
    DASSA_CHAOS_SEEDS=8 DASSA_CHAOS_DIGEST="$digest_dir/pass1" \
        cargo test -q -p bench --test chaos
    DASSA_CHAOS_SEEDS=8 DASSA_CHAOS_DIGEST="$digest_dir/pass2" \
        cargo test -q -p bench --test chaos
    if ! diff -u "$digest_dir/pass1" "$digest_dir/pass2"; then
        echo "chaos: same seeds produced different outcomes across runs" >&2
        exit 1
    fi

    # Integrity scrub: generate a small corpus, damage two files the
    # two ways that matter (bit-rot vs torn write), and check das_fsck
    # classifies every file correctly with a nonzero exit.
    echo "==> scrub: das_fsck over a damaged corpus"
    scrub_dir="$(mktemp -d)"
    trap 'rm -rf "$digest_dir" "$scrub_dir"' EXIT
    target/release/das_gen -d "$scrub_dir" -c 4 -r 20 -m 6 >/dev/null
    members=("$scrub_dir"/*.dasf)
    [[ ${#members[@]} -eq 6 ]] || { echo "scrub: expected 6 members" >&2; exit 1; }
    # Bit-rot: flip payload bytes in the first member.
    printf '\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff' |
        dd of="${members[0]}" bs=1 seek=64 conv=notrunc status=none
    # Torn write: chop the tail off the second member.
    truncate -s -20 "${members[1]}"
    fsck_json="$scrub_dir/fsck.json"
    if target/release/das_fsck --json "$scrub_dir" >"$fsck_json"; then
        echo "scrub: das_fsck exited 0 on a damaged corpus" >&2
        exit 1
    fi
    for want in '"scanned":6' '"clean":4' '"corrupt":1' '"torn":1' '"errors":0'; do
        grep -qF "$want" "$fsck_json" || {
            echo "scrub: missing $want in das_fsck report:" >&2
            cat "$fsck_json" >&2
            exit 1
        }
    done
    grep -qF "\"path\":\"${members[0]}\",\"status\":\"corrupt\"" "$fsck_json" || {
        echo "scrub: bit-rot not attributed to ${members[0]}" >&2
        cat "$fsck_json" >&2
        exit 1
    }
    grep -qF "\"path\":\"${members[1]}\",\"status\":\"torn\"" "$fsck_json" || {
        echo "scrub: truncation not attributed to ${members[1]}" >&2
        cat "$fsck_json" >&2
        exit 1
    }
fi

echo "==> CI green"
