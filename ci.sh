#!/usr/bin/env bash
# CI gate for DASSA-rs. Run from the repo root; fails fast.
#
#   ./ci.sh          # tier-1 + lints + chaos matrix
#   ./ci.sh --quick  # lints only (skip the release build + tests)
set -euo pipefail
cd "$(dirname "$0")"

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [[ $quick -eq 0 ]]; then
    echo "==> tier-1: cargo build --release"
    cargo build --release
    echo "==> tier-1: cargo test -q"
    cargo test -q

    # Chaos matrix: the seeded fault-injection suite over 8 seeds, run
    # twice with outcome digests. Any nondeterminism — a fault plan
    # whose outcome differs between two identically-seeded runs, within
    # a process or across the two passes — fails the gate.
    echo "==> chaos: seeded fault matrix (8 seeds, two passes)"
    digest_dir="$(mktemp -d)"
    trap 'rm -rf "$digest_dir"' EXIT
    DASSA_CHAOS_SEEDS=8 DASSA_CHAOS_DIGEST="$digest_dir/pass1" \
        cargo test -q -p bench --test chaos
    DASSA_CHAOS_SEEDS=8 DASSA_CHAOS_DIGEST="$digest_dir/pass2" \
        cargo test -q -p bench --test chaos
    if ! diff -u "$digest_dir/pass1" "$digest_dir/pass2"; then
        echo "chaos: same seeds produced different outcomes across runs" >&2
        exit 1
    fi
    # …and against the committed baseline, so a refactor that changes
    # outcomes deterministically (both passes agree, but differently
    # than before) still fails until the baseline is refreshed.
    if [[ -f results/CHAOS_digest.txt ]]; then
        if ! diff -u results/CHAOS_digest.txt "$digest_dir/pass1"; then
            echo "chaos: outcomes drifted from results/CHAOS_digest.txt" >&2
            echo "chaos: refresh the baseline only if the drift is intentional" >&2
            exit 1
        fi
    else
        mkdir -p results
        cp "$digest_dir/pass1" results/CHAOS_digest.txt
        echo "    recorded new chaos baseline results/CHAOS_digest.txt"
    fi

    # Integrity scrub: generate a small corpus, damage two files the
    # two ways that matter (bit-rot vs torn write), and check das_fsck
    # classifies every file correctly with a nonzero exit.
    echo "==> scrub: das_fsck over a damaged corpus"
    scrub_dir="$(mktemp -d)"
    trap 'rm -rf "$digest_dir" "$scrub_dir"' EXIT
    target/release/das_gen -d "$scrub_dir" -c 4 -r 20 -m 6 >/dev/null
    members=("$scrub_dir"/*.dasf)
    [[ ${#members[@]} -eq 6 ]] || { echo "scrub: expected 6 members" >&2; exit 1; }
    # Bit-rot: flip payload bytes in the first member.
    printf '\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff' |
        dd of="${members[0]}" bs=1 seek=64 conv=notrunc status=none
    # Torn write: chop the tail off the second member.
    truncate -s -20 "${members[1]}"
    fsck_json="$scrub_dir/fsck.json"
    if target/release/das_fsck --json "$scrub_dir" >"$fsck_json"; then
        echo "scrub: das_fsck exited 0 on a damaged corpus" >&2
        exit 1
    fi
    for want in '"scanned":6' '"clean":4' '"corrupt":1' '"torn":1' '"errors":0'; do
        grep -qF "$want" "$fsck_json" || {
            echo "scrub: missing $want in das_fsck report:" >&2
            cat "$fsck_json" >&2
            exit 1
        }
    done
    grep -qF "\"path\":\"${members[0]}\",\"status\":\"corrupt\"" "$fsck_json" || {
        echo "scrub: bit-rot not attributed to ${members[0]}" >&2
        cat "$fsck_json" >&2
        exit 1
    }
    grep -qF "\"path\":\"${members[1]}\",\"status\":\"torn\"" "$fsck_json" || {
        echo "scrub: truncation not attributed to ${members[1]}" >&2
        cat "$fsck_json" >&2
        exit 1
    }

    # Compression gate: one corpus per codec from the same scene.
    # shuffle-lz must actually shrink synthetic DAS noise on disk, the
    # pipeline must produce byte-identical output from the raw and the
    # lossless-compressed corpus, and fsck must still classify a
    # damaged compressed corpus (checksums cover the *stored* bytes).
    echo "==> codec: per-codec corpora + lossless byte-identity + damaged scrub"
    codec_dir="$(mktemp -d)"
    trap 'rm -rf "$digest_dir" "$scrub_dir" "$codec_dir"' EXIT
    for codec in raw shuffle-lz quant:0.001; do
        target/release/das_gen -d "$codec_dir/${codec%%:*}" -c 8 -r 50 -m 4 \
            --codec "$codec" >/dev/null
    done
    raw_bytes=$(du -sb "$codec_dir/raw" | cut -f1)
    lz_bytes=$(du -sb "$codec_dir/shuffle-lz" | cut -f1)
    if [[ "$lz_bytes" -ge "$raw_bytes" ]]; then
        echo "codec: shuffle-lz did not shrink the corpus ($lz_bytes >= $raw_bytes)" >&2
        exit 1
    fi
    compress_ratio=$(target/release/das_fsck --json "$codec_dir/shuffle-lz" |
        grep -oE '"compress_ratio":"[0-9.]+"' | head -1 | grep -oE '[0-9.]+')
    echo "    raw=$raw_bytes lz=$lz_bytes bytes on disk (ratio $compress_ratio)"
    target/release/das_pipeline -d "$codec_dir/raw" -a interferometry \
        -o "$codec_dir/out_raw.dasf" >/dev/null 2>&1
    target/release/das_pipeline -d "$codec_dir/shuffle-lz" -a interferometry \
        -o "$codec_dir/out_lz.dasf" --metrics="$codec_dir/m_lz.json" >/dev/null 2>&1
    if ! cmp "$codec_dir/out_raw.dasf" "$codec_dir/out_lz.dasf"; then
        echo "codec: pipeline output differs between raw and shuffle-lz corpora" >&2
        exit 1
    fi
    decode_raw=$(grep -oE '"dasf\.codec\.bytes_raw":[0-9]+' "$codec_dir/m_lz.json" |
        head -1 | cut -d: -f2)
    decode_ns=$(grep -oE '"dasf\.codec\.decode_ns":\{"count":[0-9]+,"sum":[0-9]+' \
        "$codec_dir/m_lz.json" | grep -oE '[0-9]+$')
    if [[ -z "${decode_raw:-}" || "$decode_raw" -le 0 || -z "${decode_ns:-}" || "$decode_ns" -le 0 ]]; then
        echo "codec: pipeline read recorded no decode traffic" >&2
        exit 1
    fi
    decode_mbps=$(awk -v b="$decode_raw" -v ns="$decode_ns" \
        'BEGIN { printf "%.1f", b * 1000.0 / ns }')
    echo "    lossless byte-identical; decoded $decode_raw bytes at $decode_mbps MB/s"
    # Damage the compressed corpus the same two ways as the raw scrub.
    lz_members=("$codec_dir/shuffle-lz"/*.dasf)
    printf '\xff\xff\xff\xff\xff\xff\xff\xff' |
        dd of="${lz_members[0]}" bs=1 seek=64 conv=notrunc status=none
    truncate -s -20 "${lz_members[1]}"
    codec_json="$codec_dir/fsck.json"
    if target/release/das_fsck --json "$codec_dir/shuffle-lz" >"$codec_json"; then
        echo "codec: das_fsck exited 0 on a damaged compressed corpus" >&2
        exit 1
    fi
    for want in '"scanned":4' '"clean":2' '"corrupt":1' '"torn":1'; do
        grep -qF "$want" "$codec_json" || {
            echo "codec: missing $want in das_fsck report:" >&2
            cat "$codec_json" >&2
            exit 1
        }
    done
    grep -qF "\"path\":\"${lz_members[0]}\",\"status\":\"corrupt\"" "$codec_json" || {
        echo "codec: bit-rot in compressed corpus not attributed" >&2
        cat "$codec_json" >&2
        exit 1
    }
    echo "    damaged compressed corpus still classifies corrupt/torn/clean"

    # Timeline + cluster metrics: run the pipeline under a 4-rank comm
    # world with tracing on. das_trace must parse both artifacts (it
    # exits nonzero otherwise), and the documents must carry the fields
    # Perfetto and the cluster parser rely on.
    echo "==> trace: das_pipeline --ranks 4 --trace/--metrics round-trip"
    trace_dir="$(mktemp -d)"
    trap 'rm -rf "$digest_dir" "$scrub_dir" "$codec_dir" "$trace_dir"' EXIT
    target/release/das_gen -d "$trace_dir" -c 8 -r 20 -m 6 >/dev/null
    target/release/das_pipeline -d "$trace_dir" -a localsim --ranks 4 \
        --trace="$trace_dir/trace.json" --metrics="$trace_dir/m.json" \
        >/dev/null 2>&1
    target/release/das_trace "$trace_dir/trace.json" \
        --metrics "$trace_dir/m.json" >/dev/null
    for want in '"ph":' '"ts":' '"pid":' '"tid":' '"name":' '"dropped":0'; do
        grep -qF "$want" "$trace_dir/trace.json" || {
            echo "trace: missing $want in trace.json" >&2
            exit 1
        }
    done
    for want in '"counters":' '"histograms":' \
        '"cluster":{"ranks":{"0":' '"3":{"counters":'; do
        grep -qF "$want" "$trace_dir/m.json" || {
            echo "trace: missing $want in metrics json" >&2
            exit 1
        }
    done

    # Planner gate: the 4-rank read must reuse pooled buffers, and its
    # fresh-allocation footprint must stay near the recorded baseline.
    # The counter moves a little with thread timing (which rank's read
    # lands first decides which acquisitions recycle), so the gate is
    # 1.5x + 64 KiB — loose enough for scheduling jitter, tight enough
    # that losing pooling outright (≈2x allocations) fails.
    echo "==> planner: pool reuse + dasf.alloc.bytes regression gate"
    pool_hits=$(grep -oE '"pool\.hit":[0-9]+' "$trace_dir/m.json" | head -1 | cut -d: -f2)
    alloc_bytes=$(grep -oE '"dasf\.alloc\.bytes":[0-9]+' "$trace_dir/m.json" | head -1 | cut -d: -f2)
    echo "    pool.hit=${pool_hits:-0} dasf.alloc.bytes=${alloc_bytes:-0}"
    if [[ -z "${pool_hits:-}" || "$pool_hits" -le 0 ]]; then
        echo "planner: pipeline read never hit the buffer pool" >&2
        exit 1
    fi
    baseline_alloc=$(grep -oE '"pipeline_alloc_bytes":[0-9]+' \
        results/BENCH_pipeline.json 2>/dev/null | head -1 | cut -d: -f2 || true)
    if [[ -n "${baseline_alloc:-}" ]]; then
        budget=$((baseline_alloc + baseline_alloc / 2 + 65536))
        if [[ "$alloc_bytes" -gt "$budget" ]]; then
            echo "planner: dasf.alloc.bytes regressed: $alloc_bytes > budget $budget (baseline $baseline_alloc)" >&2
            exit 1
        fi
        echo "    within budget $budget (baseline $baseline_alloc)"
    else
        echo "    no pipeline_alloc_bytes baseline yet; will record this run's value"
    fi

    # Perf trajectory: the quick experiment binaries emit per-run JSON
    # (wall time + obs counters); consolidate them into one document a
    # dashboard can diff across commits.
    echo "==> bench: perf trajectory (results/BENCH_pipeline.json)"
    bench_dir="$(mktemp -d)"
    trap 'rm -rf "$digest_dir" "$scrub_dir" "$codec_dir" "$trace_dir" "$bench_dir"' EXIT
    for exp in exp_fig6 exp_fig9 exp_table1 exp_tuner; do
        DASSA_RESULTS="$bench_dir" "target/release/$exp" --json >/dev/null
    done
    mkdir -p results
    {
        printf '{"generated_unix_ns":%s,"pipeline_alloc_bytes":%s,"compress_ratio":%s,"decode_mb_per_sec":%s,"experiments":[' \
            "$(date +%s%N)" "${alloc_bytes:-0}" "${compress_ratio:-0}" "${decode_mbps:-0}"
        first=1
        for f in "$bench_dir"/*.json; do
            [[ $first -eq 1 ]] || printf ','
            first=0
            cat "$f"
        done
        printf ']}'
    } >results/BENCH_pipeline.json
    grep -qF '"wall_ms":' results/BENCH_pipeline.json || {
        echo "bench: BENCH_pipeline.json has no wall_ms entries" >&2
        exit 1
    }
    echo "    $(wc -c <results/BENCH_pipeline.json) bytes, $(grep -oF '"experiment":' results/BENCH_pipeline.json | wc -l) experiments"

    # dasl gate: the example .das program, compiled to bytecode and run
    # through the VM, must be byte-identical to the hand-wired pipeline
    # it describes — and the bytecode must actually fuse the adjacent
    # element-wise stages (dasl.fused_stages > 0 in the metrics).
    echo "==> dasl: --program vs hand-wired byte-identity + fusion gate"
    dasl_dir="$(mktemp -d)"
    trap 'rm -rf "$digest_dir" "$scrub_dir" "$codec_dir" "$trace_dir" "$bench_dir" "$dasl_dir"' EXIT
    target/release/das_gen -d "$dasl_dir/corpus" -c 8 -r 500 -m 2 >/dev/null
    target/release/das_pipeline --program examples/interferometry.das \
        -d "$dasl_dir/corpus" --metrics="$dasl_dir/m.json" \
        -o "$dasl_dir/prog.dasf" >/dev/null 2>&1
    target/release/das_pipeline -d "$dasl_dir/corpus" -a interferometry \
        -o "$dasl_dir/hand.dasf" >/dev/null 2>&1
    if ! cmp "$dasl_dir/prog.dasf" "$dasl_dir/hand.dasf"; then
        echo "dasl: program output diverged from the hand-wired pipeline" >&2
        exit 1
    fi
    grep -qE '"dasl\.fused_stages":[1-9]' "$dasl_dir/m.json" || {
        echo "dasl: no fused stages recorded in metrics:" >&2
        grep -oF '"dasl.fused_stages"' "$dasl_dir/m.json" >&2 || true
        exit 1
    }
    target/release/das_pipeline --program examples/detect.das \
        -d "$dasl_dir/corpus" >/dev/null 2>&1 || {
        echo "dasl: examples/detect.das failed to run" >&2
        exit 1
    }
    echo "    byte-identical, $(grep -oE '"dasl\.fused_stages":[0-9]+' "$dasl_dir/m.json" | cut -d: -f2) stages fused"

    # dassd gate: stand the data server up over a generated corpus, run
    # a query and an overload burst against it, then check the shutdown
    # metrics prove the chunk cache, the admission control, and the
    # latency histograms all did their jobs.
    echo "==> dassd: serve/query smoke + overload + metrics gate"
    dassd_dir="$(mktemp -d)"
    trap 'rm -rf "$digest_dir" "$scrub_dir" "$codec_dir" "$trace_dir" "$bench_dir" "$dasl_dir" "$dassd_dir"' EXIT
    target/release/das_gen -d "$dassd_dir/corpus" -c 8 -r 50 -m 3 >/dev/null
    target/release/das_serve -d "$dassd_dir/corpus" --workers 2 --queue 0 \
        --metrics="$dassd_dir/m.json" >"$dassd_dir/serve.log" 2>&1 &
    serve_pid=$!
    for _ in $(seq 1 100); do
        grep -q '^dassd listening on ' "$dassd_dir/serve.log" && break
        sleep 0.1
    done
    addr="$(sed -n 's/^dassd listening on //p' "$dassd_dir/serve.log" | head -1)"
    if [[ -z "$addr" ]]; then
        echo "dassd: server never announced its address" >&2
        cat "$dassd_dir/serve.log" >&2
        exit 1
    fi
    target/release/das_query --addr "$addr" \
        --eval 'load("corpus") | detrend | xcorr(master=ch[0])' >/dev/null
    burst_out="$(target/release/das_query --addr "$addr" --read-all --burst 12)"
    echo "    $burst_out"
    [[ "$burst_out" == *"err=0"* ]] || {
        echo "dassd: overload burst saw transport errors (want ok+busy only)" >&2
        exit 1
    }
    target/release/das_query --addr "$addr" --shutdown >/dev/null
    if ! wait "$serve_pid"; then
        echo "dassd: das_serve exited nonzero" >&2
        cat "$dassd_dir/serve.log" >&2
        exit 1
    fi
    hits=$(grep -oE '"cache\.hit":[0-9]+' "$dassd_dir/m.json" | head -1 | cut -d: -f2)
    busy=$(grep -oE '"dassd\.busy":[0-9]+' "$dassd_dir/m.json" | head -1 | cut -d: -f2)
    p99=$(grep -oE '"dassd\.read\.ns":\{[^[]*"p99":[0-9]+' "$dassd_dir/m.json" |
        grep -oE '[0-9]+$' || true)
    echo "    cache.hit=${hits:-0} dassd.busy=${busy:-0} read.p99ns=${p99:-0}"
    if [[ -z "${hits:-}" || "$hits" -le 0 ]]; then
        echo "dassd: overlapping reads never hit the chunk cache" >&2
        exit 1
    fi
    if [[ -z "${busy:-}" || "$busy" -le 0 ]]; then
        echo "dassd: the overload burst never tripped admission control" >&2
        exit 1
    fi
    if [[ -z "${p99:-}" || "$p99" -le 0 ]]; then
        echo "dassd: the read latency histogram is empty" >&2
        exit 1
    fi

    # Ingest gate: trickle a corpus (one member bit-rotted) into a
    # spool under an arrival-fault plan, and prove three things with
    # the real binary: damaged files quarantine while the rest recover
    # (windows still emit), a kill -9 mid-run plus a resume re-emits
    # nothing, and the union of reports from the interrupted run is
    # byte-identical to an uninterrupted drain.
    echo "==> ingest: spool drain under faults + kill/resume gate"
    ingest_dir="$(mktemp -d)"
    trap 'rm -rf "$digest_dir" "$scrub_dir" "$codec_dir" "$trace_dir" "$bench_dir" "$dasl_dir" "$dassd_dir" "$ingest_dir"' EXIT
    target/release/das_gen -d "$ingest_dir/corpus" -c 6 -r 20 -m 8 >/dev/null
    minute_files=("$ingest_dir/corpus"/*.dasf)
    [[ ${#minute_files[@]} -eq 8 ]] || { echo "ingest: expected 8 members" >&2; exit 1; }
    # Bit-rot one member: validation must quarantine it, not crash.
    printf '\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff' |
        dd of="${minute_files[2]}" bs=1 seek=64 conv=notrunc status=none
    rotten="$(basename "${minute_files[2]}")"
    plan='seed=7,ingest.spool.torn=0.4,ingest.arrival.delay=0.4,ingest.arrival.duplicate=0.4'

    # Run A: uninterrupted drain of the full spool.
    mkdir -p "$ingest_dir/spoolA"
    cp "$ingest_dir/corpus"/*.dasf "$ingest_dir/spoolA/"
    target/release/das_ingest --spool "$ingest_dir/spoolA" --out "$ingest_dir/outA" \
        --once --window 2 --backoff-ms 1 --poll-ms 1 \
        --fault-plan "$plan" --metrics="$ingest_dir/mA.json" 2>"$ingest_dir/ingestA.log"
    [[ -f "$ingest_dir/spoolA/ingest.quarantine/$rotten" ]] || {
        echo "ingest: bit-rotted $rotten was not quarantined" >&2
        cat "$ingest_dir/ingestA.log" >&2
        exit 1
    }
    emitted=$(grep -oE '"ingest\.windows_emitted":[0-9]+' "$ingest_dir/mA.json" | head -1 | cut -d: -f2)
    admitted=$(grep -oE '"ingest\.admitted":[0-9]+' "$ingest_dir/mA.json" | head -1 | cut -d: -f2)
    echo "    run A: admitted=${admitted:-0} windows_emitted=${emitted:-0} ($rotten quarantined)"
    if [[ -z "${emitted:-}" || "$emitted" -le 0 ]]; then
        echo "ingest: faulted drain emitted no windows" >&2
        cat "$ingest_dir/ingestA.log" >&2
        exit 1
    fi

    # Run B: stage half the corpus, run the always-on loop until the
    # first report lands, kill -9, stage the rest, resume with a drain.
    mkdir -p "$ingest_dir/spoolB"
    cp "${minute_files[@]:0:4}" "$ingest_dir/spoolB/"
    target/release/das_ingest --spool "$ingest_dir/spoolB" --out "$ingest_dir/outB" \
        --window 2 --backoff-ms 1 --poll-ms 10 \
        --fault-plan "$plan" >"$ingest_dir/ingestB.log" 2>&1 &
    ingest_pid=$!
    for _ in $(seq 1 200); do
        compgen -G "$ingest_dir/outB/window_*.json" >/dev/null && break
        sleep 0.1
    done
    compgen -G "$ingest_dir/outB/window_*.json" >/dev/null || {
        echo "ingest: always-on loop never emitted a first window" >&2
        cat "$ingest_dir/ingestB.log" >&2
        exit 1
    }
    kill -9 "$ingest_pid" 2>/dev/null || true
    wait "$ingest_pid" 2>/dev/null || true
    # Simulate the worst crash window: the report landed but the
    # checkpoint never committed. Resume must re-derive the frontier,
    # notice the report already on disk, and skip it — not re-emit.
    pre_report="$(ls "$ingest_dir"/outB/window_*.json | head -1)"
    pre_inode="$(stat -c %i "$pre_report")"
    rm -f "$ingest_dir/outB/checkpoint.json"
    cp "${minute_files[@]:4}" "$ingest_dir/spoolB/"
    target/release/das_ingest --spool "$ingest_dir/spoolB" --out "$ingest_dir/outB" \
        --once --window 2 --backoff-ms 1 --poll-ms 1 \
        --fault-plan "$plan" --metrics="$ingest_dir/mB.json" 2>>"$ingest_dir/ingestB.log"
    skipped=$(grep -oE '"ingest\.windows_skipped":[0-9]+' "$ingest_dir/mB.json" | head -1 | cut -d: -f2)
    echo "    run B: resumed after kill -9 + lost checkpoint, windows_skipped=${skipped:-0}"
    if [[ -z "${skipped:-}" || "$skipped" -le 0 ]]; then
        echo "ingest: resume re-evaluated windows already emitted before the kill" >&2
        cat "$ingest_dir/ingestB.log" >&2
        exit 1
    fi
    if [[ "$(stat -c %i "$pre_report")" != "$pre_inode" ]]; then
        echo "ingest: resume rewrote $(basename "$pre_report") (inode changed — duplicate emission)" >&2
        exit 1
    fi
    # The report unions must match exactly — same window set, same bytes.
    a_reports=$(cd "$ingest_dir/outA" && ls window_*.json)
    b_reports=$(cd "$ingest_dir/outB" && ls window_*.json)
    if [[ "$a_reports" != "$b_reports" ]]; then
        echo "ingest: interrupted run emitted a different window set" >&2
        diff <(echo "$a_reports") <(echo "$b_reports") >&2 || true
        exit 1
    fi
    for r in $a_reports; do
        cmp "$ingest_dir/outA/$r" "$ingest_dir/outB/$r" || {
            echo "ingest: $r differs between interrupted and uninterrupted runs" >&2
            exit 1
        }
    done
    echo "    report union byte-identical across kill/resume ($(echo "$a_reports" | wc -l) windows)"

    # Telemetry gate: liveness probes, windowed rates, and the panic
    # flight recorder. Three claims, each checked with the real
    # binaries: Health answers with a nonzero uptime; a request burst
    # shows up as a nonzero *windowed rate* in MetricsSeries (das_top
    # derives req/s from snapshot deltas, not cumulative counters); and
    # an injected panic produces a well-formed flight record.
    echo "==> telemetry: health + rate series + flight recorder gate"
    tele_dir="$(mktemp -d)"
    trap 'rm -rf "$digest_dir" "$scrub_dir" "$codec_dir" "$trace_dir" "$bench_dir" "$dasl_dir" "$dassd_dir" "$ingest_dir" "$tele_dir"' EXIT
    target/release/das_gen -d "$tele_dir/corpus" -c 8 -r 50 -m 3 >/dev/null
    target/release/das_serve -d "$tele_dir/corpus" --workers 2 --queue 4 \
        >"$tele_dir/serve.log" 2>/dev/null &
    tele_pid=$!
    for _ in $(seq 1 100); do
        grep -q '^dassd listening on ' "$tele_dir/serve.log" && break
        sleep 0.1
    done
    tele_addr="$(sed -n 's/^dassd listening on //p' "$tele_dir/serve.log" | head -1)"
    [[ -n "$tele_addr" ]] || { echo "telemetry: server never announced" >&2; exit 1; }
    sleep 0.3
    health="$(target/release/das_query --addr "$tele_addr" --health)"
    echo "    $health"
    uptime=$(grep -oE 'uptime_ms=[0-9]+' <<<"$health" | head -1 | cut -d= -f2)
    if [[ -z "${uptime:-}" || "$uptime" -le 0 ]]; then
        echo "telemetry: Health reported no uptime" >&2
        exit 1
    fi
    grep -qE 'component=dassd version=[0-9]' <<<"$health" || {
        echo "telemetry: Health is not self-describing" >&2
        exit 1
    }
    # Poll, burst, poll: the second frame's peak windowed rate must be
    # nonzero — cumulative counters would not move a *rate* without a
    # fresh delta window covering the burst.
    target/release/das_top --addr "$tele_addr" --once >/dev/null
    target/release/das_query --addr "$tele_addr" --read-all --burst 8 >/dev/null
    top_line="$(target/release/das_top --addr "$tele_addr" --once | tail -1)"
    echo "    $top_line"
    peak=$(grep -oE 'req_per_sec_peak=[0-9]+\.[0-9]+' <<<"$top_line" | cut -d= -f2)
    if [[ -z "${peak:-}" || "$peak" == "0.000" ]]; then
        echo "telemetry: burst not visible as a windowed request rate" >&2
        exit 1
    fi
    target/release/das_query --addr "$tele_addr" --shutdown >/dev/null
    wait "$tele_pid" || { echo "telemetry: das_serve exited nonzero" >&2; exit 1; }

    # Ingest answers the same probes on its local socket, and SIGTERM
    # shuts the loop down cleanly, still emitting the metrics snapshot.
    mkdir -p "$tele_dir/spool"
    cp "$tele_dir/corpus"/*.dasf "$tele_dir/spool/"
    target/release/das_ingest --spool "$tele_dir/spool" --out "$tele_dir/win" \
        --window 1 --poll-ms 20 --probe-addr 127.0.0.1:0 \
        --metrics="$tele_dir/ingest_m.json" >"$tele_dir/ingest.log" 2>/dev/null &
    probe_pid=$!
    for _ in $(seq 1 100); do
        grep -q '^das_ingest probe listening on ' "$tele_dir/ingest.log" && break
        sleep 0.1
    done
    probe_addr="$(sed -n 's/^das_ingest probe listening on //p' "$tele_dir/ingest.log" | head -1)"
    [[ -n "$probe_addr" ]] || { echo "telemetry: ingest probe never announced" >&2; exit 1; }
    probe_health="$(target/release/das_query --addr "$probe_addr" --health)"
    echo "    $probe_health"
    grep -q 'component=das_ingest' <<<"$probe_health" || {
        echo "telemetry: ingest probe Health misidentified itself" >&2
        exit 1
    }
    kill -TERM "$probe_pid"
    wait "$probe_pid" || { echo "telemetry: SIGTERM was not a clean shutdown" >&2; exit 1; }
    grep -qF '"component":"das_ingest"' "$tele_dir/ingest_m.json" || {
        echo "telemetry: no metrics snapshot after SIGTERM" >&2
        exit 1
    }

    # Injected panic in a child thread: the process must die nonzero
    # and leave a parseable flight record carrying the metrics
    # snapshot, the log tail, and the trace tail.
    if target/release/das_serve -d "$tele_dir/corpus" \
        --flight "$tele_dir/flight.json" --inject-panic-ms 300 \
        >/dev/null 2>"$tele_dir/panic.log"; then
        echo "telemetry: injected panic exited 0" >&2
        exit 1
    fi
    [[ -f "$tele_dir/flight.json" ]] || {
        echo "telemetry: no flight record after injected panic" >&2
        cat "$tele_dir/panic.log" >&2
        exit 1
    }
    for want in '"component":"dassd"' '"reason":"panic at ' \
        '"metrics":' '"log_tail":' '"trace_tail":'; do
        grep -qF "$want" "$tele_dir/flight.json" || {
            echo "telemetry: flight record missing $want:" >&2
            cat "$tele_dir/flight.json" >&2
            exit 1
        }
    done
    echo "    uptime_ms=$uptime, burst peak=$peak req/s, flight record well-formed"
fi

echo "==> CI green"
